//! Run all five rewriting engines on the same circuit and compare.
//!
//! Run with: `cargo run --release --example compare_methods [gates]`

use dacpara::{run_engine, Engine, RewriteConfig};
use dacpara_aig::AigRead;
use dacpara_circuits::{mtm, MtmParams};
use dacpara_equiv::{random_sim_check, SimOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gates: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4_000);
    let golden = mtm(&MtmParams {
        inputs: 64,
        gates,
        outputs: 24,
        seed: 7,
    });
    println!(
        "benchmark: MtM-style, {} ANDs, depth {}\n",
        golden.num_ands(),
        golden.depth()
    );
    println!(
        "{:<14} {:>8} {:>9} {:>7} {:>8} {:>8} {:>8}  equiv",
        "engine", "time(s)", "area red", "delay", "repl", "aborts", "waste%"
    );

    for engine in Engine::ALL {
        let cfg = match engine {
            Engine::AbcRewrite => RewriteConfig::rewrite_op(),
            Engine::Dac22 | Engine::Tcad23 => RewriteConfig::drw_op().with_threads(2),
            _ => RewriteConfig::rewrite_op().with_threads(2),
        };
        let mut aig = golden.clone();
        let stats = run_engine(&mut aig, engine, &cfg)?;
        let equiv = match random_sim_check(&golden, &aig, 16, 99) {
            SimOutcome::NoDifferenceFound => "pass",
            SimOutcome::Counterexample(_) => "FAIL",
        };
        println!(
            "{:<14} {:>8.3} {:>9} {:>7} {:>8} {:>8} {:>8.2}  {}",
            stats.engine,
            stats.time.as_secs_f64(),
            stats.area_reduction(),
            stats.delay_after,
            stats.replacements,
            stats.spec.aborts,
            stats.spec.wasted_fraction() * 100.0,
            equiv
        );
    }
    Ok(())
}
