//! Explore the generated NPN structure library: per-class structure counts
//! and sizes, and what the bounded-enumeration refinement buys on top of
//! the decomposition strategies.
//!
//! Run with: `cargo run --release --example library_explorer`

use dacpara_npn::{ClassId, ClassRegistry};
use dacpara_nst::{NpnLibrary, RefineParams};

fn main() {
    let reg = ClassRegistry::global();
    let base = NpnLibrary::global();
    println!(
        "structure library: {} classes, {} structures total",
        base.num_classes(),
        base.num_structures()
    );

    // Size histogram of the best structure per class.
    let mut histogram = std::collections::BTreeMap::<usize, usize>::new();
    for id in 0..reg.len() as ClassId {
        *histogram.entry(base.min_size(id)).or_insert(0) += 1;
    }
    println!("\nbest-structure size histogram (gates -> classes):");
    for (size, count) in &histogram {
        println!(
            "  {size:>2} gates: {count:>3} classes  {}",
            "#".repeat(*count / 2 + 1)
        );
    }

    // What refinement improves.
    println!("\nrunning the bounded-enumeration refinement sweep ...");
    let refined = NpnLibrary::build_refined(&RefineParams::default());
    let mut wins = Vec::new();
    for id in 0..reg.len() as ClassId {
        let (b, r) = (base.min_size(id), refined.min_size(id));
        if r < b {
            wins.push((id, b, r));
        }
    }
    println!(
        "refinement improved {} of {} classes:",
        wins.len(),
        reg.len()
    );
    for (id, b, r) in wins.iter().take(15) {
        println!(
            "  class {id:>3} (rep {}): {b} -> {r} gates",
            reg.representative(*id)
        );
    }
    if wins.len() > 15 {
        println!("  ... and {} more", wins.len() - 15);
    }

    // A few well-known functions.
    println!("\nfamiliar functions:");
    for (name, tt) in [
        ("maj(a,b,c)", dacpara_npn::Tt4::from_raw(0xE8E8)),
        ("a^b^c^d", dacpara_npn::Tt4::from_raw(0x6996)),
        ("mux(a;b,c)", dacpara_npn::Tt4::from_raw(0xD8D8)),
        ("and4", dacpara_npn::Tt4::from_raw(0x8000)),
    ] {
        let id = reg.class_of(tt);
        println!(
            "  {name:<12} class {id:>3}: best {} gates ({} structures)",
            refined.min_size(id),
            refined.structures(id).len()
        );
    }
}
