//! A realistic synthesis mini-flow: generate an arithmetic datapath,
//! rewrite it serially and in parallel, verify both, export AIGER.
//!
//! Run with: `cargo run --release --example synthesis_flow`

use dacpara::{rewrite_dacpara, rewrite_serial, RewriteConfig};
use dacpara_aig::{aiger, AigRead};
use dacpara_circuits::arith;
use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 10x10 array multiplier — the `mult` benchmark family of the paper.
    let golden = arith::multiplier(10);
    println!(
        "multiplier(10): {} inputs, {} outputs, {} AND gates, depth {}",
        golden.num_inputs(),
        golden.num_outputs(),
        golden.num_ands(),
        golden.depth()
    );

    // Serial baseline (ABC `rewrite`).
    let mut serial = golden.clone();
    let s = rewrite_serial(&mut serial, &RewriteConfig::rewrite_op())?;
    println!("serial : {s}");

    // DACPara with two threads.
    let mut parallel = golden.clone();
    let p = rewrite_dacpara(&mut parallel, &RewriteConfig::rewrite_op().with_threads(2))?;
    println!("dacpara: {p}");

    // Both must preserve the multiplier's function.
    for (name, aig) in [("serial", &serial), ("dacpara", &parallel)] {
        match check_equivalence(&golden, aig, &CecConfig::default()) {
            CecResult::Equivalent => println!("{name}: equivalence PASS"),
            CecResult::Undecided => println!("{name}: simulation PASS (SAT budget out)"),
            CecResult::Inequivalent(_) => {
                return Err(format!("{name} broke the multiplier!").into())
            }
        }
    }

    // Export the optimized netlist.
    let out = std::env::temp_dir().join("mult10_rewritten.aag");
    std::fs::write(&out, aiger::to_string(&parallel))?;
    println!("wrote optimized AIGER to {}", out.display());
    Ok(())
}
