//! The paper's Fig. 3 scenario, executed on the real machinery:
//!
//! A node's best replacement is *stored* (as DACPara's `prepInfo` does
//! between the evaluation and replacement stages), then a transitive-fanin
//! rewrite deletes some of the stored cut's leaves and recycles their slot
//! IDs for new nodes with different logic. The replacement stage must
//! notice — via generation stamps, re-enumeration with leaf matching, and
//! the NPN-class check — instead of applying a now-wrong structure.
//!
//! Run with: `cargo run --example cut_invalidation`

use dacpara::validity::verify_cut;
use dacpara::{evaluate_node, EvalContext, RewriteConfig};
use dacpara_aig::{Aig, AigRead};
use dacpara_cut::{CutConfig, CutStore};
use dacpara_npn::ClassRegistry;
use dacpara_nst::NpnLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Build the scene: a wasteful majority cone feeding a consumer.
    let mut aig = Aig::new();
    let a = aig.add_input();
    let b = aig.add_input();
    let c = aig.add_input();
    let d = aig.add_input();
    let or = aig.add_or(b, c);
    let an = aig.add_and(b, c);
    let root = aig.add_mux(a, or, an); // maj(a,b,c), 5 gates instead of 4
    let n2 = aig.add_and(root, d); // the consumer whose cut we will store
    aig.add_output(n2);
    aig.check()?;
    println!(
        "graph: {} ANDs; consumer n2 = {:?}",
        aig.num_ands(),
        n2.node()
    );

    // ---- "Stage 2": evaluate n2 and store its best candidate (prepInfo).
    let ctx = EvalContext::new(&RewriteConfig {
        num_classes: 222,
        use_zeros: true, // accept zero-gain so the demo reliably stores one
        preserve_level: false,
        ..RewriteConfig::rewrite_op()
    });
    let store = CutStore::new(aig.slot_count() * 2, CutConfig::unlimited());
    let cuts = store.cuts(&aig, n2.node());
    println!("n2 has {} cuts; e.g. leaves of the deepest:", cuts.len());
    let deep = cuts.iter().max_by_key(|c| c.len()).expect("cuts exist");
    println!("  {:?} (tt = {})", deep.leaves(), deep.tt());
    let Some(stored) = evaluate_node(&aig, n2.node(), &cuts, &ctx) else {
        println!("(no stored candidate for n2 — nothing to invalidate)");
        return Ok(());
    };
    println!(
        "stored prepInfo for n2: leaves {:?}, gens {:?}, class {}, gain {}",
        stored.leaves, stored.leaf_gens, stored.class, stored.gain
    );

    // ---- Meanwhile, another thread rewrites the majority cone: the five
    // mux gates collapse to the 4-gate majority, deleting `or`/`an`/...
    let root_cuts = store.cuts(&aig, root.node());
    let cand = evaluate_node(&aig, root.node(), &root_cuts, &ctx)
        .expect("the wasteful majority must be improvable");
    let new_root = dacpara::build_replacement(&mut aig, &cand, NpnLibrary::global())?;
    aig.replace(root.node(), new_root);
    aig.check()?;
    println!(
        "rewrote the majority cone: now {} ANDs; freed slots recycled: {}",
        aig.num_ands(),
        aig.slot_count()
    );

    // ---- "Stage 3": validate the stored cut on the latest AIG (§4.4).
    let fresh = stored
        .leaves
        .iter()
        .zip(&stored.leaf_gens)
        .map(|(&l, &g)| {
            let alive = aig.is_alive(l);
            let same_gen = alive && aig.generation(l) == g;
            println!(
                "  leaf {:?}: alive = {}, generation {} (stored {})",
                l,
                alive,
                if alive { aig.generation(l) } else { 0 },
                g
            );
            same_gen
        })
        // collect first: every leaf must be printed, `all` would short-circuit
        .collect::<Vec<bool>>()
        .into_iter()
        .all(|ok| ok);

    if fresh {
        println!("leaves untouched: Theorem 1 applies, the stored cut is still valid.");
    } else {
        println!("stored cut is STALE — running the re-validation protocol:");
        match verify_cut(&aig, n2.node(), &stored.leaves) {
            None => {
                println!("  -> the leaf set no longer cuts n2: candidate dropped");
            }
            Some((_, tt)) => {
                let reg = ClassRegistry::global();
                if tt == stored.tt {
                    println!("  -> same function after all: candidate may be re-evaluated");
                } else if reg.class_of(tt) == stored.class {
                    println!(
                        "  -> function changed ({} -> {}) but the NPN class matches: \
                         the stored structure is still usable after a transform refresh",
                        stored.tt, tt
                    );
                } else {
                    println!(
                        "  -> function changed ({} -> {}) and the class differs: \
                         applying the stored structure would corrupt logic; dropped",
                        stored.tt, tt
                    );
                }
            }
        }
    }
    println!("(this is exactly the decision tree of the paper's §4.4 / Fig. 3)");
    Ok(())
}
