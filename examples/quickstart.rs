//! Quickstart: build an AIG, run DACPara on it, inspect the results.
//!
//! This walks the workflow of the paper's Fig. 1: the graph is divided
//! into level worklists and rewritten in three parallel stages.
//!
//! Run with: `cargo run --example quickstart`

use dacpara::{rewrite_dacpara, RewriteConfig};
use dacpara_aig::{Aig, AigRead};
use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small circuit: a redundant 5-input majority-ish cone.
    let mut aig = Aig::new();
    let inputs: Vec<_> = (0..5).map(|_| aig.add_input()).collect();
    let mut acc = inputs[0];
    for w in inputs.windows(3) {
        // Deliberately wasteful: mux-based majorities leave room for the
        // rewriter (the optimal majority needs only 4 AND gates).
        let or = aig.add_or(w[1], w[2]);
        let and = aig.add_and(w[1], w[2]);
        let maj = aig.add_mux(w[0], or, and);
        acc = aig.add_xor(acc, maj);
    }
    aig.add_output(acc);
    aig.check()?;
    let golden = aig.clone();
    println!(
        "before: {} AND gates, depth {}",
        aig.num_ands(),
        aig.depth()
    );

    // 2. Rewrite with DACPara (2 threads, ABC-`rewrite`-style configuration).
    let cfg = RewriteConfig::rewrite_op().with_threads(2);
    let stats = rewrite_dacpara(&mut aig, &cfg)?;
    println!(
        "after:  {} AND gates, depth {} ({} replacements, {} level worklists)",
        stats.area_after, stats.delay_after, stats.replacements, stats.worklists
    );
    println!("stats:  {stats}");

    // 3. The rewritten circuit must be functionally identical.
    match check_equivalence(&golden, &aig, &CecConfig::default()) {
        CecResult::Equivalent => println!("equivalence check: PASS"),
        other => return Err(format!("equivalence check failed: {other:?}").into()),
    }
    Ok(())
}
