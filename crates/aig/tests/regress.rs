//! Regression-style tests of AIG surgery corner cases that the rewriting
//! engines rely on.

use dacpara_aig::{Aig, AigRead, Lit, NodeId};

fn inputs(aig: &mut Aig, n: usize) -> Vec<Lit> {
    (0..n).map(|_| aig.add_input()).collect()
}

#[test]
fn replace_cascades_through_three_merge_levels() {
    // Three layers of structure that all collapse once the bottom pair
    // merges: x1/x2 duplicate after replacing b with a, then y1/y2, then z.
    let mut aig = Aig::new();
    let ins = inputs(&mut aig, 3);
    let (a, b, c) = (ins[0], ins[1], ins[2]);
    let x1 = aig.add_and(a, c);
    let x2 = aig.add_and(b, c);
    let y1 = aig.add_and(x1, !c);
    let y2 = aig.add_and(x2, !c);
    let z = aig.add_xor(y1, y2);
    aig.add_output(z);
    aig.replace(b.node(), a);
    aig.check().unwrap();
    // x1 == x2 -> y1 == y2 -> xor folds to const false.
    assert_eq!(aig.outputs()[0], Lit::FALSE);
    aig.cleanup();
    assert_eq!(aig.num_ands(), 0);
}

#[test]
fn replace_handles_node_feeding_multiple_outputs() {
    let mut aig = Aig::new();
    let ins = inputs(&mut aig, 2);
    let ab = aig.add_and(ins[0], ins[1]);
    aig.add_output(ab);
    aig.add_output(!ab);
    aig.add_output(ab);
    aig.replace(ab.node(), ins[0]);
    aig.check().unwrap();
    assert_eq!(aig.outputs(), &[ins[0], !ins[0], ins[0]]);
}

#[test]
fn replace_when_target_is_in_the_old_cone() {
    // new root literal points into the TFI of the replaced node: the cone
    // above it must be freed, the shared part kept.
    let mut aig = Aig::new();
    let ins = inputs(&mut aig, 3);
    let ab = aig.add_and(ins[0], ins[1]);
    let abc = aig.add_and(ab, ins[2]);
    aig.add_output(abc);
    aig.replace(abc.node(), ab);
    aig.check().unwrap();
    assert_eq!(aig.num_ands(), 1);
    assert_eq!(aig.outputs()[0], ab);
}

#[test]
fn generations_strictly_increase_per_slot_event() {
    let mut aig = Aig::new();
    let ins = inputs(&mut aig, 3);
    let ab = aig.add_and(ins[0], ins[1]);
    let abc = aig.add_and(ab, ins[2]);
    aig.add_output(abc);
    let slot = ab.node();
    let g0 = aig.generation(slot);
    // Fanin rewrite of abc (via replacing ab) bumps abc's gen; deleting ab
    // bumps ab's slot gen; reallocation bumps again.
    let g_abc0 = aig.generation(abc.node());
    aig.replace(slot, ins[0]);
    assert!(aig.generation(slot) > g0, "deletion bumps");
    assert!(aig.generation(abc.node()) > g_abc0, "fanin rewrite bumps");
    let fresh = aig.add_and(!ins[0], ins[1]);
    assert_eq!(fresh.node(), slot, "LIFO slot reuse");
    assert!(aig.generation(slot) > g0 + 1, "reallocation bumps again");
}

#[test]
fn cleanup_is_idempotent_and_preserves_reachable_logic() {
    let mut aig = Aig::new();
    let ins = inputs(&mut aig, 4);
    let keep = aig.add_and(ins[0], ins[1]);
    // Dangling pyramid.
    let d1 = aig.add_and(ins[2], ins[3]);
    let d2 = aig.add_and(d1, ins[0]);
    let _d3 = aig.add_and(d2, !ins[1]);
    aig.add_output(keep);
    let removed = aig.cleanup();
    assert_eq!(removed, 3);
    assert_eq!(aig.cleanup(), 0);
    assert_eq!(aig.num_ands(), 1);
    aig.check().unwrap();
}

#[test]
fn depth_of_constant_only_outputs_is_zero() {
    let mut aig = Aig::new();
    let _ = inputs(&mut aig, 1);
    aig.add_output(Lit::TRUE);
    assert_eq!(aig.depth(), 0);
}

#[test]
fn slot_ids_survive_many_churn_rounds() {
    // Build/delete churn must keep the free list and generations sane.
    let mut aig = Aig::new();
    let ins = inputs(&mut aig, 4);
    let anchor = aig.add_and(ins[0], ins[1]);
    aig.add_output(anchor);
    for round in 0..50u32 {
        let x = aig.add_and(ins[(round as usize) % 4], !ins[(round as usize + 1) % 4]);
        let y = aig.add_and(x, ins[(round as usize + 2) % 4]);
        aig.add_output(y);
        // Remove it again by replacing with the anchor.
        aig.replace(y.node(), anchor);
        if aig.is_and(x.node()) && AigRead::refs(&aig, x.node()) == 0 {
            aig.cleanup();
        }
        aig.check().unwrap();
    }
    // Only the anchor and the 51 outputs remain.
    assert_eq!(aig.num_ands(), 1);
    assert_eq!(aig.num_outputs(), 51);
}

#[test]
fn fanout_lists_track_duplicated_edges_transiently() {
    // A node whose two fanins end up on the same node mid-cascade must
    // resolve cleanly (covered by `replace`, asserted via check()).
    let mut aig = Aig::new();
    let ins = inputs(&mut aig, 3);
    let x = aig.add_and(ins[0], ins[1]);
    let y = aig.add_and(ins[0], ins[2]);
    let top = aig.add_and(x, y);
    aig.add_output(top);
    // Replacing ins[2] by ins[1] makes y == x, so top folds to x.
    aig.replace(ins[2].node(), ins[1]);
    aig.check().unwrap();
    assert_eq!(aig.outputs()[0], x);
    assert_eq!(aig.num_ands(), 1);
}

#[test]
fn transitive_fanout_respects_deletion() {
    let mut aig = Aig::new();
    let ins = inputs(&mut aig, 2);
    let x = aig.add_and(ins[0], ins[1]);
    let y = aig.add_and(x, !ins[0]);
    aig.add_output(y);
    let tfo_before = dacpara_aig::transitive_fanout_ids(&aig, ins[0].node());
    assert_eq!(tfo_before.len(), 2);
    aig.replace(y.node(), x);
    let tfo_after = dacpara_aig::transitive_fanout_ids(&aig, ins[0].node());
    assert_eq!(tfo_after, vec![x.node()]);
    let _ = NodeId::CONST0;
}
