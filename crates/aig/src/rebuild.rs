//! Copy-with-edit rebuilding of an AIG into a fresh strash-canonical graph.
//!
//! The fuzzing subsystem (mutation engine and delta-debugging shrinker) never
//! edits a graph in place: every mutation is expressed as a [`RebuildPlan`] —
//! a batch of per-input, per-node and per-output edits — and [`RebuildPlan::apply`]
//! replays the source graph through the strash-canonical [`Aig`] builder with
//! those edits substituted in. Because the result is produced by `add_and`,
//! it is acyclic, folded and hashed by construction; a plan can therefore
//! never produce a structurally invalid graph, only a rejected one
//! ([`AigError::InvariantViolation`] when an edit references a node that is
//! not yet available at the point it is needed).
//!
//! # Example
//!
//! ```
//! use dacpara_aig::{Aig, AigRead, Lit, RebuildPlan};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let ab = aig.add_and(a, b);
//! aig.add_output(ab);
//!
//! // Bypass the AND to its left fanin: the output becomes just `a`.
//! let mut plan = RebuildPlan::new();
//! plan.replace_node(ab.node(), a);
//! let out = plan.apply(&aig).unwrap();
//! assert_eq!(out.num_ands(), 0);
//! assert_eq!(out.outputs()[0], out.inputs()[0].lit());
//! ```

use std::collections::HashMap;

use crate::topo::topo_ands;
use crate::{Aig, AigError, AigRead, Lit, NodeId};

/// What happens to one primary input during a rebuild.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum InputEdit {
    /// Alias this input to the literal of another input (by position).
    MergeInto(usize),
    /// Tie this input to a constant.
    Const(bool),
}

/// What happens to one AND node during a rebuild.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum NodeEdit {
    /// Replace the node by a literal over *source-graph* ids. The referenced
    /// node must already be mapped when this node is reached in topological
    /// order (an input, a constant, or an earlier AND).
    ReplaceWith(Lit),
    /// Keep the node but override its fanin edges (source-graph literals;
    /// `None` keeps the original edge). The same ordering constraint applies.
    Refanin(Option<Lit>, Option<Lit>),
}

/// A batch of structural edits applied while copying an AIG.
///
/// Empty plans are useful too: [`RebuildPlan::apply`] with no edits is a
/// compacting copy (dead slots dropped, ids densified, strashing re-run),
/// exposed directly as [`compact`].
#[derive(Clone, Debug, Default)]
pub struct RebuildPlan {
    input_edits: HashMap<usize, InputEdit>,
    node_edits: HashMap<NodeId, NodeEdit>,
    dropped_outputs: Vec<usize>,
    flipped_outputs: Vec<usize>,
}

impl RebuildPlan {
    /// Creates an empty plan (a pure compacting copy).
    pub fn new() -> Self {
        RebuildPlan::default()
    }

    /// True when the plan contains no edits at all.
    pub fn is_empty(&self) -> bool {
        self.input_edits.is_empty()
            && self.node_edits.is_empty()
            && self.dropped_outputs.is_empty()
            && self.flipped_outputs.is_empty()
    }

    /// Merges input `from` into input `into` (both by position): every edge
    /// into `from` is redirected to `into`'s literal. The merged input is
    /// still created so the interface keeps its arity.
    pub fn merge_input(&mut self, from: usize, into: usize) -> &mut Self {
        debug_assert_ne!(from, into, "cannot merge an input into itself");
        self.input_edits.insert(from, InputEdit::MergeInto(into));
        self
    }

    /// Ties input `pos` to a constant value. The input is still created so
    /// the interface keeps its arity.
    pub fn tie_input(&mut self, pos: usize, value: bool) -> &mut Self {
        self.input_edits.insert(pos, InputEdit::Const(value));
        self
    }

    /// Replaces AND node `n` by `with`, a literal over source-graph ids.
    /// `with` must be a constant, an input, or an AND that precedes `n`
    /// topologically — otherwise [`RebuildPlan::apply`] rejects the plan.
    pub fn replace_node(&mut self, n: NodeId, with: Lit) -> &mut Self {
        self.node_edits.insert(n, NodeEdit::ReplaceWith(with));
        self
    }

    /// Overrides the fanin edges of AND node `n` (source-graph literals;
    /// `None` keeps the original edge). The same topological-ordering
    /// constraint as [`RebuildPlan::replace_node`] applies to the new edges.
    pub fn refanin(&mut self, n: NodeId, left: Option<Lit>, right: Option<Lit>) -> &mut Self {
        self.node_edits.insert(n, NodeEdit::Refanin(left, right));
        self
    }

    /// Drops the output at position `pos` from the rebuilt graph.
    pub fn drop_output(&mut self, pos: usize) -> &mut Self {
        self.dropped_outputs.push(pos);
        self
    }

    /// Complements the output at position `pos` (used by oracle-soundness
    /// tests to manufacture a guaranteed-inequivalent graph).
    pub fn flip_output(&mut self, pos: usize) -> &mut Self {
        self.flipped_outputs.push(pos);
        self
    }

    /// Replays `view` through a fresh strash-canonical builder with this
    /// plan's edits substituted in.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::InvariantViolation`] when an edit references an
    /// input position or output position out of range, or a node literal
    /// that is not yet mapped at the point it is needed (which would have
    /// required a cycle), or an input merge chain that loops.
    pub fn apply<V: AigRead + ?Sized>(&self, view: &V) -> Result<Aig, AigError> {
        let src_inputs = view.input_ids();
        let src_outputs = view.output_lits();
        for (&pos, edit) in &self.input_edits {
            let ok = pos < src_inputs.len()
                && match *edit {
                    InputEdit::MergeInto(into) => into < src_inputs.len(),
                    InputEdit::Const(_) => true,
                };
            if !ok {
                return Err(AigError::InvariantViolation(format!(
                    "rebuild plan edits input {pos} of a {}-input graph",
                    src_inputs.len()
                )));
            }
        }
        for &pos in self.dropped_outputs.iter().chain(&self.flipped_outputs) {
            if pos >= src_outputs.len() {
                return Err(AigError::InvariantViolation(format!(
                    "rebuild plan edits output {pos} of a {}-output graph",
                    src_outputs.len()
                )));
            }
        }

        let mut out = Aig::with_capacity(src_inputs.len() + view.num_ands());
        // map[old slot] = Some(literal in `out`), filled in topological order.
        let mut map: Vec<Option<Lit>> = vec![None; view.slot_count()];
        map[NodeId::CONST0.index()] = Some(Lit::FALSE);

        // Inputs first: create every input to preserve arity, then resolve
        // merge chains (merge targets may themselves be merged).
        let fresh: Vec<Lit> = src_inputs.iter().map(|_| out.add_input()).collect();
        for (pos, &old) in src_inputs.iter().enumerate() {
            let mut at = pos;
            let mut hops = 0usize;
            let lit = loop {
                match self.input_edits.get(&at) {
                    None => break fresh[at],
                    Some(&InputEdit::Const(v)) => break Lit::FALSE.xor(v),
                    Some(&InputEdit::MergeInto(into)) => {
                        at = into;
                        hops += 1;
                        if hops > src_inputs.len() {
                            return Err(AigError::InvariantViolation(format!(
                                "rebuild plan input-merge chain loops at input {pos}"
                            )));
                        }
                    }
                }
            };
            map[old.index()] = Some(lit);
        }

        let translate = |map: &[Option<Lit>], old: Lit| -> Result<Lit, AigError> {
            map[old.node().index()]
                .map(|l| l.xor(old.is_complement()))
                .ok_or_else(|| {
                    AigError::InvariantViolation(format!(
                        "rebuild plan references {old} before it is available \
                         (forward reference would create a cycle)"
                    ))
                })
        };

        for n in topo_ands(view) {
            let lit = match self.node_edits.get(&n) {
                Some(&NodeEdit::ReplaceWith(with)) => translate(&map, with)?,
                Some(&NodeEdit::Refanin(l, r)) => {
                    let [fa, fb] = view.fanins(n);
                    let la = translate(&map, l.unwrap_or(fa))?;
                    let lb = translate(&map, r.unwrap_or(fb))?;
                    out.add_and(la, lb)
                }
                None => {
                    let [fa, fb] = view.fanins(n);
                    let la = translate(&map, fa)?;
                    let lb = translate(&map, fb)?;
                    out.add_and(la, lb)
                }
            };
            map[n.index()] = Some(lit);
        }

        for (pos, &po) in src_outputs.iter().enumerate() {
            if self.dropped_outputs.contains(&pos) {
                continue;
            }
            let mut lit = translate(&map, po)?;
            if self.flipped_outputs.contains(&pos) {
                lit = !lit;
            }
            out.add_output(lit);
        }
        out.cleanup();
        Ok(out)
    }
}

/// Compacting copy: drops dead slots, densifies ids and re-runs strashing.
/// Equivalent to applying an empty [`RebuildPlan`].
pub fn compact<V: AigRead + ?Sized>(view: &V) -> Aig {
    RebuildPlan::new()
        .apply(view)
        .expect("empty plan cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let abc = aig.add_and(ab, c);
        let x = aig.add_xor(ab, c);
        aig.add_output(abc);
        aig.add_output(x);
        aig
    }

    #[test]
    fn empty_plan_is_identity_copy() {
        let aig = sample();
        let out = compact(&aig);
        assert_eq!(out.num_inputs(), aig.num_inputs());
        assert_eq!(out.num_outputs(), aig.num_outputs());
        assert_eq!(out.num_ands(), aig.num_ands());
        out.check().unwrap();
    }

    #[test]
    fn tie_input_simplifies() {
        let aig = sample();
        let mut plan = RebuildPlan::new();
        plan.tie_input(2, false);
        let out = plan.apply(&aig).unwrap();
        // abc = ab & 0 = 0, x = ab ^ 0 = ab.
        assert_eq!(out.outputs()[0], Lit::FALSE);
        assert_eq!(out.num_ands(), 1);
        assert_eq!(out.num_inputs(), 3, "arity preserved");
        out.check().unwrap();
    }

    #[test]
    fn merge_inputs_chains() {
        let aig = sample();
        let mut plan = RebuildPlan::new();
        plan.merge_input(1, 0);
        let out = plan.apply(&aig).unwrap();
        // ab collapses to a, so abc = a & c (1 AND) and x = a XOR c (3 ANDs).
        assert_eq!(out.num_ands(), 4);
        out.check().unwrap();
    }

    #[test]
    fn merge_loop_is_rejected() {
        let aig = sample();
        let mut plan = RebuildPlan::new();
        plan.merge_input(0, 1).merge_input(1, 0);
        assert!(matches!(
            plan.apply(&aig),
            Err(AigError::InvariantViolation(_))
        ));
    }

    #[test]
    fn forward_reference_is_rejected() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let abc = aig.add_and(ab, c);
        aig.add_output(abc);
        let mut plan = RebuildPlan::new();
        // ab := abc is a forward reference (abc comes later in topo order).
        plan.replace_node(ab.node(), abc);
        assert!(matches!(
            plan.apply(&aig),
            Err(AigError::InvariantViolation(_))
        ));
    }

    #[test]
    fn drop_and_flip_outputs() {
        let aig = sample();
        let mut plan = RebuildPlan::new();
        plan.drop_output(0).flip_output(1);
        let out = plan.apply(&aig).unwrap();
        assert_eq!(out.num_outputs(), 1);
        out.check().unwrap();
    }

    #[test]
    fn out_of_range_edits_rejected() {
        let aig = sample();
        let mut plan = RebuildPlan::new();
        plan.drop_output(9);
        assert!(plan.apply(&aig).is_err());
        let mut plan = RebuildPlan::new();
        plan.tie_input(7, true);
        assert!(plan.apply(&aig).is_err());
    }

    #[test]
    fn refanin_overrides_edges() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let abc = aig.add_and(ab, c);
        aig.add_output(abc);
        // Fanins are stored sorted: [c, ab]. Override the `c` edge with `!c`
        // so abc becomes ab & !c.
        assert_eq!(aig.fanins(abc.node()), [c, ab]);
        let mut plan = RebuildPlan::new();
        plan.refanin(abc.node(), Some(!c), None);
        let out = plan.apply(&aig).unwrap();
        assert_eq!(out.num_ands(), 2);
        out.check().unwrap();
    }
}
