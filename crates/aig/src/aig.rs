use std::collections::HashMap;

use crate::node::Node;
use crate::topo::is_in_tfi;
use crate::{AigRead, Lit, NodeId, NodeKind};

/// A single-threaded And-Inverter Graph.
///
/// The graph is kept *strash-canonical* at all times: no two live AND nodes
/// have the same (sorted) fanin pair, no AND node has a constant fanin, and
/// the two fanins of an AND always point at distinct nodes. [`Aig::add_and`]
/// performs the standard one-level folding and structural-hash lookup, and
/// [`Aig::replace`] re-establishes canonicity after a DAG-aware rewrite by
/// cascading merges through the fanout cone.
///
/// Deleted node slots are recycled (with a bumped generation counter) exactly
/// like ABC's node manager, which is what makes the stored-cut invalidation
/// scenario of the paper's Fig. 3 reproducible.
///
/// # Example
///
/// ```
/// use dacpara_aig::{Aig, AigRead};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let c = aig.add_input();
/// let ab = aig.add_and(a, b);
/// let abc = aig.add_and(ab, c);
/// aig.add_output(abc);
/// assert_eq!(aig.num_ands(), 2);
/// assert_eq!(aig.depth(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    fanouts: Vec<Vec<NodeId>>,
    inputs: Vec<NodeId>,
    outputs: Vec<Lit>,
    strash: HashMap<(Lit, Lit), NodeId>,
    free: Vec<NodeId>,
    num_ands: usize,
    /// Nodes whose fanins changed and that must be re-hashed (possibly
    /// merging into an equal node). Drained before `replace` returns.
    rehash: Vec<NodeId>,
    /// Parallel to `nodes`: true while the node sits in `rehash`.
    queued: Vec<bool>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant-false node.
    pub fn new() -> Self {
        let mut aig = Aig {
            nodes: Vec::new(),
            fanouts: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
            free: Vec::new(),
            num_ands: 0,
            rehash: Vec::new(),
            queued: Vec::new(),
        };
        let c0 = aig.alloc_slot();
        debug_assert_eq!(c0, NodeId::CONST0);
        aig.nodes[0].kind = NodeKind::Const0;
        aig
    }

    /// Creates an empty AIG with room reserved for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut aig = Aig::new();
        aig.nodes.reserve(n);
        aig.fanouts.reserve(n);
        aig.queued.reserve(n);
        aig
    }

    fn alloc_slot(&mut self) -> NodeId {
        if let Some(id) = self.free.pop() {
            let gen = self.nodes[id.index()].gen;
            self.nodes[id.index()] = Node::free();
            self.nodes[id.index()].gen = gen.wrapping_add(1);
            debug_assert!(self.fanouts[id.index()].is_empty());
            id
        } else {
            let id = NodeId::new(self.nodes.len() as u32);
            self.nodes.push(Node::free());
            self.fanouts.push(Vec::new());
            self.queued.push(false);
            id
        }
    }

    /// Adds a primary input and returns its (positive) literal.
    pub fn add_input(&mut self) -> Lit {
        let id = self.alloc_slot();
        self.nodes[id.index()].kind = NodeKind::Input;
        self.inputs.push(id);
        id.lit()
    }

    /// One-level constant/identity folding for a sorted literal pair.
    ///
    /// Returns the literal the AND collapses to, if any. Requires `a <= b`.
    #[inline]
    pub fn fold_and(a: Lit, b: Lit) -> Option<Lit> {
        debug_assert!(a <= b);
        if a == Lit::FALSE {
            Some(Lit::FALSE)
        } else if a == Lit::TRUE {
            Some(b)
        } else if a == b {
            Some(a)
        } else if a.node() == b.node() {
            // a AND !a
            Some(Lit::FALSE)
        } else {
            None
        }
    }

    /// Returns the literal of an AND gate over `a` and `b`, folding
    /// constants, reusing a structurally identical node when one exists, and
    /// creating a fresh node otherwise.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either operand points at a dead node.
    pub fn add_and(&mut self, a: Lit, b: Lit) -> Lit {
        debug_assert!(self.is_alive(a.node()), "fanin {a:?} is dead");
        debug_assert!(self.is_alive(b.node()), "fanin {b:?} is dead");
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(l) = Self::fold_and(a, b) {
            return l;
        }
        if let Some(&n) = self.strash.get(&(a, b)) {
            return n.lit();
        }
        let id = self.alloc_slot();
        let level = 1 + self.nodes[a.node().index()]
            .level
            .max(self.nodes[b.node().index()].level);
        {
            let node = &mut self.nodes[id.index()];
            node.kind = NodeKind::And;
            node.fanin = [a, b];
            node.level = level;
        }
        for l in [a, b] {
            self.fanouts[l.node().index()].push(id);
            self.nodes[l.node().index()].refs += 1;
        }
        self.strash.insert((a, b), id);
        self.num_ands += 1;
        id.lit()
    }

    /// Convenience: OR via De Morgan.
    pub fn add_or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.add_and(!a, !b)
    }

    /// Convenience: XOR built from three AND gates.
    pub fn add_xor(&mut self, a: Lit, b: Lit) -> Lit {
        let ab = self.add_and(a, !b);
        let ba = self.add_and(!a, b);
        self.add_or(ab, ba)
    }

    /// Convenience: 2:1 multiplexer `if s then t else e`.
    pub fn add_mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let st = self.add_and(s, t);
        let se = self.add_and(!s, e);
        self.add_or(st, se)
    }

    /// Convenience: 3-input majority.
    pub fn add_maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.add_and(a, b);
        let ac = self.add_and(a, c);
        let bc = self.add_and(b, c);
        let t = self.add_or(ab, ac);
        self.add_or(t, bc)
    }

    /// Registers `lit` as a primary output.
    pub fn add_output(&mut self, lit: Lit) {
        debug_assert!(self.is_alive(lit.node()));
        self.outputs.push(lit);
        let n = &mut self.nodes[lit.node().index()];
        n.refs += 1;
        n.po_refs += 1;
    }

    /// Primary inputs in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output literals in creation order.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of live nodes of any kind (constant, inputs, ANDs).
    pub fn num_nodes(&self) -> usize {
        1 + self.inputs.len() + self.num_ands
    }

    /// Fanout node ids of `n` (one entry per fanout edge).
    pub fn fanouts(&self, n: NodeId) -> &[NodeId] {
        &self.fanouts[n.index()]
    }

    /// Iterator over the ids of all live AND nodes, in slot order.
    pub fn and_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|&(_i, n)| n.kind == NodeKind::And)
            .map(|(i, _n)| NodeId::new(i as u32))
    }

    /// Replaces every use of node `old` by the literal `new` (complemented
    /// uses of `old` become complemented uses of `new`), then deletes `old`
    /// and whatever part of its fanin cone becomes dangling.
    ///
    /// Structural canonicity is restored by cascading: a fanout whose fanin
    /// pair folds to a constant/identity or collides with an existing node is
    /// itself replaced, recursively. This mirrors `Abc_AigReplace`.
    ///
    /// If `new.node() == old` the call is a no-op. The node behind `new` is
    /// kept alive even if it ends up unreferenced (use [`Aig::cleanup`]).
    ///
    /// # Panics
    ///
    /// Panics if `old` is not a live AND or input node, if `new` points at a
    /// dead node, or (debug builds) if the replacement would create a cycle,
    /// i.e. `old` lies in the transitive fanin of `new`.
    pub fn replace(&mut self, old: NodeId, new: Lit) {
        assert!(
            matches!(self.kind(old), NodeKind::And | NodeKind::Input),
            "replace target {old:?} is not a live AND or input"
        );
        assert!(
            self.is_alive(new.node()),
            "replacement literal {new:?} is dead"
        );
        if new.node() == old {
            return;
        }
        debug_assert!(
            !is_in_tfi(self, new.node(), old),
            "replacing {old:?} with {new:?} would create a cycle"
        );
        // Pin `new` so cascaded deletions cannot reclaim it.
        self.nodes[new.node().index()].refs += 1;
        self.move_fanout_edges(old, new);
        if self.nodes[old.index()].refs == 0 && self.nodes[old.index()].kind == NodeKind::And {
            self.delete_cone(old);
        }
        self.drain_rehash();
        self.nodes[new.node().index()].refs -= 1;
    }

    /// Moves every fanout edge and primary-output edge of `o` onto `t`
    /// (preserving edge phases), queueing the touched fanouts for re-hashing.
    fn move_fanout_edges(&mut self, o: NodeId, t: Lit) {
        debug_assert_ne!(o, t.node());
        while let Some(&f) = self.fanouts[o.index()].last() {
            // Detach one `f -> o` edge.
            self.fanouts[o.index()].pop();
            self.nodes[o.index()].refs -= 1;
            self.strash_remove_if_owner(f);
            let node = &mut self.nodes[f.index()];
            let i = if node.fanin[0].node() == o { 0 } else { 1 };
            debug_assert_eq!(node.fanin[i].node(), o);
            node.fanin[i] = t.xor(node.fanin[i].is_complement());
            if node.fanin[0] > node.fanin[1] {
                node.fanin.swap(0, 1);
            }
            node.gen = node.gen.wrapping_add(1);
            // Attach the edge to `t`.
            self.fanouts[t.node().index()].push(f);
            self.nodes[t.node().index()].refs += 1;
            if !self.queued[f.index()] {
                self.queued[f.index()] = true;
                self.rehash.push(f);
            }
        }
        if self.nodes[o.index()].po_refs > 0 {
            let moved = self.nodes[o.index()].po_refs;
            for po in &mut self.outputs {
                if po.node() == o {
                    *po = t.xor(po.is_complement());
                }
            }
            let on = &mut self.nodes[o.index()];
            on.refs -= moved;
            on.po_refs = 0;
            let tn = &mut self.nodes[t.node().index()];
            tn.refs += moved;
            tn.po_refs += moved;
        }
    }

    /// Drains the re-hash queue: each entry either folds, merges into a
    /// structurally identical node, or is inserted back into the hash table
    /// with a refreshed level.
    fn drain_rehash(&mut self) {
        while let Some(f) = self.rehash.pop() {
            self.queued[f.index()] = false;
            if self.nodes[f.index()].kind != NodeKind::And {
                continue; // became dangling and was reclaimed meanwhile
            }
            let [a, b] = self.nodes[f.index()].fanin;
            if let Some(t) = Self::fold_and(a, b) {
                self.nodes[t.node().index()].refs += 1;
                self.move_fanout_edges(f, t);
                debug_assert_eq!(self.nodes[f.index()].refs, 0);
                self.delete_cone(f);
                self.nodes[t.node().index()].refs -= 1;
            } else if let Some(&g) = self.strash.get(&(a, b)) {
                debug_assert_ne!(g, f);
                self.nodes[g.index()].refs += 1;
                self.move_fanout_edges(f, g.lit());
                debug_assert_eq!(self.nodes[f.index()].refs, 0);
                self.delete_cone(f);
                self.nodes[g.index()].refs -= 1;
            } else {
                self.strash.insert((a, b), f);
                self.propagate_levels_from(f);
            }
        }
    }

    /// Removes `f`'s structural-hash entry if `f` currently owns one.
    fn strash_remove_if_owner(&mut self, f: NodeId) {
        let key = {
            let n = &self.nodes[f.index()];
            (n.fanin[0], n.fanin[1])
        };
        if self.strash.get(&key) == Some(&f) {
            self.strash.remove(&key);
        }
    }

    /// Deletes the dangling node `root` (refs == 0) and, transitively, every
    /// fanin that becomes dangling.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `root` is referenced or is not an AND.
    pub(crate) fn delete_cone(&mut self, root: NodeId) {
        debug_assert_eq!(self.nodes[root.index()].refs, 0);
        debug_assert_eq!(self.nodes[root.index()].kind, NodeKind::And);
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            self.strash_remove_if_owner(n);
            let [a, b] = self.nodes[n.index()].fanin;
            for l in [a, b] {
                let v = l.node();
                let pos = self.fanouts[v.index()]
                    .iter()
                    .position(|&x| x == n)
                    .expect("fanout lists out of sync");
                self.fanouts[v.index()].swap_remove(pos);
                let vn = &mut self.nodes[v.index()];
                vn.refs -= 1;
                if vn.refs == 0 && vn.kind == NodeKind::And {
                    stack.push(v);
                }
            }
            debug_assert!(self.fanouts[n.index()].is_empty());
            let node = &mut self.nodes[n.index()];
            let gen = node.gen;
            *node = Node::free();
            node.gen = gen.wrapping_add(1);
            self.free.push(n);
            self.num_ands -= 1;
        }
    }

    /// Removes every dangling AND node (refs == 0). Returns how many nodes
    /// were reclaimed.
    pub fn cleanup(&mut self) -> usize {
        let before = self.num_ands;
        let roots: Vec<NodeId> = self
            .and_ids()
            .filter(|n| self.nodes[n.index()].refs == 0)
            .collect();
        for r in roots {
            // A previous deletion may have already cascaded into `r`.
            if self.nodes[r.index()].kind == NodeKind::And && self.nodes[r.index()].refs == 0 {
                self.delete_cone(r);
            }
        }
        before - self.num_ands
    }

    /// Recomputes `level` for `start` and propagates changes upward through
    /// its transitive fanout.
    fn propagate_levels_from(&mut self, start: NodeId) {
        let mut worklist = vec![start];
        while let Some(n) = worklist.pop() {
            if self.nodes[n.index()].kind != NodeKind::And {
                continue;
            }
            let [a, b] = self.nodes[n.index()].fanin;
            let new_level = 1 + self.nodes[a.node().index()]
                .level
                .max(self.nodes[b.node().index()].level);
            if new_level != self.nodes[n.index()].level {
                self.nodes[n.index()].level = new_level;
                worklist.extend_from_slice(&self.fanouts[n.index()]);
            }
        }
    }

    /// Recomputes all levels from scratch (inputs at level 0).
    pub fn recompute_levels(&mut self) {
        for n in crate::topo::topo_ands(self) {
            let [a, b] = self.nodes[n.index()].fanin;
            self.nodes[n.index()].level = 1 + self.nodes[a.node().index()]
                .level
                .max(self.nodes[b.node().index()].level);
        }
    }

    /// Total number of node slots ever allocated (live + free).
    pub fn slot_count(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.index()]
    }

    pub(crate) fn strash_map(&self) -> &HashMap<(Lit, Lit), NodeId> {
        &self.strash
    }
}

impl AigRead for Aig {
    fn slot_count(&self) -> usize {
        self.nodes.len()
    }

    fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    fn fanins(&self, n: NodeId) -> [Lit; 2] {
        debug_assert_eq!(self.nodes[n.index()].kind, NodeKind::And);
        self.nodes[n.index()].fanin
    }

    fn refs(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].refs
    }

    fn generation(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].gen
    }

    fn level(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].level
    }

    fn find_and(&self, f0: Lit, f1: Lit) -> Option<NodeId> {
        let key = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
        self.strash.get(&key).copied()
    }

    fn input_ids(&self) -> Vec<NodeId> {
        self.inputs.clone()
    }

    fn output_lits(&self) -> Vec<Lit> {
        self.outputs.clone()
    }

    fn num_ands(&self) -> usize {
        self.num_ands
    }

    fn fanout_ids(&self, n: NodeId) -> Vec<NodeId> {
        self.fanouts[n.index()].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_input_aig() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        (aig, a, b)
    }

    #[test]
    fn folding_rules() {
        let (mut aig, a, _) = two_input_aig();
        assert_eq!(aig.add_and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.add_and(a, Lit::TRUE), a);
        assert_eq!(aig.add_and(a, a), a);
        assert_eq!(aig.add_and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_reuses_nodes() {
        let (mut aig, a, b) = two_input_aig();
        let x = aig.add_and(a, b);
        let y = aig.add_and(b, a);
        assert_eq!(x, y);
        let z = aig.add_and(!a, b);
        assert_ne!(x, z);
        assert_eq!(aig.num_ands(), 2);
    }

    #[test]
    fn replace_transfers_fanouts_and_outputs() {
        let (mut aig, a, b) = two_input_aig();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let top = aig.add_and(ab, c);
        aig.add_output(top);
        aig.add_output(!ab);
        // Replace ab by just `a` (as if rewriting found b redundant).
        aig.replace(ab.node(), a);
        aig.check().unwrap();
        assert_eq!(aig.num_ands(), 1); // only AND(a, c) remains
        assert_eq!(aig.outputs()[1], !a);
        let [f0, f1] = aig.fanins(aig.outputs()[0].node());
        assert!(f0 == a || f1 == a);
    }

    #[test]
    fn replace_merges_structural_duplicates() {
        let (mut aig, a, b) = two_input_aig();
        let c = aig.add_input();
        let ac = aig.add_and(a, c);
        let bc = aig.add_and(b, c);
        let top = aig.add_and(ac, bc);
        aig.add_output(top);
        aig.add_output(ac);
        // Replacing b by a makes bc a duplicate of ac; the cascade must merge
        // them, which folds `top = AND(ac, ac)` to `ac`.
        aig.replace(b.node(), a);
        aig.check().unwrap();
        assert_eq!(aig.num_ands(), 1);
        assert_eq!(aig.outputs()[0], aig.outputs()[1]);
    }

    #[test]
    fn replace_with_constant_cascades_folds() {
        let (mut aig, a, b) = two_input_aig();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let abc = aig.add_and(ab, c);
        aig.add_output(abc);
        aig.replace(ab.node(), Lit::TRUE);
        aig.check().unwrap();
        assert_eq!(aig.num_ands(), 0);
        assert_eq!(aig.outputs()[0], c);
    }

    #[test]
    fn replace_to_false_kills_cone() {
        let (mut aig, a, b) = two_input_aig();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let abc = aig.add_and(ab, c);
        aig.add_output(abc);
        aig.replace(ab.node(), Lit::FALSE);
        aig.check().unwrap();
        assert_eq!(aig.num_ands(), 0);
        assert_eq!(aig.outputs()[0], Lit::FALSE);
    }

    #[test]
    fn slot_recycling_bumps_generation() {
        let (mut aig, a, b) = two_input_aig();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        let id = ab.node();
        let gen0 = aig.generation(id);
        aig.replace(id, a);
        assert!(!aig.is_alive(id));
        assert!(aig.generation(id) > gen0);
        // New node reuses the freed slot.
        let fresh = aig.add_and(!a, !b);
        assert_eq!(fresh.node(), id);
        assert!(aig.generation(id) > gen0);
    }

    #[test]
    fn cleanup_removes_dangling() {
        let (mut aig, a, b) = two_input_aig();
        let ab = aig.add_and(a, b);
        let _dangling = aig.add_and(!a, b);
        aig.add_output(ab);
        assert_eq!(aig.cleanup(), 1);
        assert_eq!(aig.num_ands(), 1);
        aig.check().unwrap();
    }

    #[test]
    fn levels_track_depth() {
        let (mut aig, a, b) = two_input_aig();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let abc = aig.add_and(ab, c);
        aig.add_output(abc);
        assert_eq!(aig.depth(), 2);
        aig.replace(abc.node(), ab);
        assert_eq!(aig.depth(), 1);
    }

    #[test]
    fn xor_mux_maj_helpers() {
        let (mut aig, a, b) = two_input_aig();
        let c = aig.add_input();
        let x = aig.add_xor(a, b);
        let m = aig.add_mux(a, b, c);
        let j = aig.add_maj(a, b, c);
        aig.add_output(x);
        aig.add_output(m);
        aig.add_output(j);
        aig.check().unwrap();
        assert!(aig.num_ands() >= 3);
    }
}
