//! BLIF (Berkeley Logic Interchange Format) writing and reading.
//!
//! The writer emits one `.names` table per AND gate (two-input cover with
//! complemented inputs expressed in the cube), plus buffer/inverter tables
//! for the outputs — the canonical AIG-in-BLIF convention, accepted by ABC
//! and friends. The reader handles the same structural subset: `.names`
//! tables of at most two inputs whose cover is a single cube (or the
//! constant tables), which is exactly what this writer and ABC's
//! `write_blif` after `strash` produce.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use crate::{Aig, AigError, AigRead, Lit, NodeId};

/// Writes the graph as structural BLIF.
///
/// # Errors
///
/// Returns [`AigError::Io`] if the writer fails.
///
/// # Example
///
/// ```
/// use dacpara_aig::{blif, Aig};
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let ab = aig.add_and(a, !b);
/// aig.add_output(ab);
/// let text = blif::to_string(&aig, "tiny");
/// assert!(text.contains(".model tiny"));
/// assert!(text.contains(".names"));
/// ```
pub fn write<W: Write>(aig: &Aig, model: &str, mut writer: W) -> Result<(), AigError> {
    let order = crate::topo::topo_ands(aig);
    writeln!(writer, ".model {model}")?;

    let input_name = |k: usize| format!("pi{k}");
    let output_name = |k: usize| format!("po{k}");
    let mut name_of: HashMap<NodeId, String> = HashMap::new();
    for (k, &i) in aig.inputs().iter().enumerate() {
        name_of.insert(i, input_name(k));
    }
    for (k, &n) in order.iter().enumerate() {
        name_of.insert(n, format!("n{k}"));
    }

    write!(writer, ".inputs")?;
    for k in 0..aig.num_inputs() {
        write!(writer, " {}", input_name(k))?;
    }
    writeln!(writer)?;
    write!(writer, ".outputs")?;
    for k in 0..aig.num_outputs() {
        write!(writer, " {}", output_name(k))?;
    }
    writeln!(writer)?;

    // Constant-zero driver, only if some output needs it.
    let const_needed = aig.outputs().iter().any(|po| po.node() == NodeId::CONST0);
    if const_needed {
        writeln!(writer, ".names const0")?;
        // Empty cover = constant 0.
    }
    let signal = |l: Lit, name_of: &HashMap<NodeId, String>| -> String {
        if l.node() == NodeId::CONST0 {
            "const0".to_string()
        } else {
            name_of[&l.node()].clone()
        }
    };

    for &n in &order {
        let [a, b] = aig.fanins(n);
        writeln!(
            writer,
            ".names {} {} {}",
            signal(a, &name_of),
            signal(b, &name_of),
            name_of[&n]
        )?;
        writeln!(
            writer,
            "{}{} 1",
            if a.is_complement() { '0' } else { '1' },
            if b.is_complement() { '0' } else { '1' }
        )?;
    }

    for (k, &po) in aig.outputs().iter().enumerate() {
        writeln!(writer, ".names {} {}", signal(po, &name_of), output_name(k))?;
        writeln!(writer, "{} 1", if po.is_complement() { '0' } else { '1' })?;
    }
    writeln!(writer, ".end")?;
    Ok(())
}

/// Serializes to a `String` (convenience over [`write()`]).
pub fn to_string(aig: &Aig, model: &str) -> String {
    let mut buf = Vec::new();
    write(aig, model, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("blif output is ascii")
}

/// Parses the structural-AIG subset of BLIF produced by [`write()`].
///
/// Supported tables: zero-input constants, one-input buffers/inverters, and
/// two-input single-cube AND-like tables. `.latch`, multi-cube covers and
/// hierarchical `.subckt` are rejected.
///
/// # Errors
///
/// Returns [`AigError::ParseAiger`] (reused for all netlist parsing) on
/// unsupported or malformed input.
pub fn read<R: BufRead>(mut reader: R) -> Result<Aig, AigError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse(&text)
}

/// Parses from a string; see [`read`].
pub fn parse(text: &str) -> Result<Aig, AigError> {
    let bad = |msg: String| AigError::ParseAiger(msg);

    // First pass: tokenize into statements (handle `\` continuations).
    let mut statements: Vec<Vec<String>> = Vec::new();
    let mut pending = String::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(stripped) = line.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        pending.push_str(line);
        let tokens: Vec<String> = pending.split_whitespace().map(String::from).collect();
        pending.clear();
        statements.push(tokens);
    }

    // Gather structure: inputs, outputs, and .names tables with covers.
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    struct Table {
        ins: Vec<String>,
        out: String,
        cover: Vec<(String, char)>,
    }
    let mut tables: Vec<Table> = Vec::new();
    let mut i = 0;
    while i < statements.len() {
        let st = &statements[i];
        match st[0].as_str() {
            ".model" | ".end" => i += 1,
            ".inputs" => {
                inputs.extend(st[1..].iter().cloned());
                i += 1;
            }
            ".outputs" => {
                outputs.extend(st[1..].iter().cloned());
                i += 1;
            }
            ".names" => {
                if st.len() < 2 {
                    return Err(bad(".names needs at least an output".into()));
                }
                let out = st[st.len() - 1].clone();
                let ins = st[1..st.len() - 1].to_vec();
                let mut cover = Vec::new();
                i += 1;
                while i < statements.len() && !statements[i][0].starts_with('.') {
                    let row = &statements[i];
                    let (pattern, value) = match row.len() {
                        1 => (String::new(), row[0].chars().next().unwrap_or('1')),
                        2 => (row[0].clone(), row[1].chars().next().unwrap_or('1')),
                        _ => return Err(bad(format!("bad cover row {row:?}"))),
                    };
                    cover.push((pattern, value));
                    i += 1;
                }
                tables.push(Table { ins, out, cover });
            }
            ".latch" => return Err(bad("latches are not supported".into())),
            ".subckt" => return Err(bad("hierarchy is not supported".into())),
            other => return Err(bad(format!("unsupported directive `{other}`"))),
        }
    }

    // Build: topological resolution over the tables.
    let mut aig = Aig::new();
    let mut sig: HashMap<String, Lit> = HashMap::new();
    for name in &inputs {
        let l = aig.add_input();
        sig.insert(name.clone(), l);
    }

    let mut remaining: Vec<Table> = tables;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|t| {
            if !t.ins.iter().all(|n| sig.contains_key(n)) {
                return true; // not ready yet
            }
            let lit = build_table(&mut aig, t.ins.as_slice(), &t.cover, &sig);
            match lit {
                Ok(l) => {
                    sig.insert(t.out.clone(), l);
                    false
                }
                Err(_) => true, // surfaced below as an unresolved table
            }
        });
        if remaining.len() == before {
            // No progress: either a combinational loop or an unsupported table.
            let t = &remaining[0];
            return Err(bad(format!(
                "cannot resolve table for `{}` (unsupported cover or cycle)",
                t.out
            )));
        }
    }

    for name in &outputs {
        let l = *sig
            .get(name)
            .ok_or_else(|| bad(format!("undriven output `{name}`")))?;
        aig.add_output(l);
    }
    Ok(aig)
}

fn build_table(
    aig: &mut Aig,
    ins: &[String],
    cover: &[(String, char)],
    sig: &HashMap<String, Lit>,
) -> Result<Lit, AigError> {
    let bad = |msg: &str| AigError::ParseAiger(msg.to_string());
    match (ins.len(), cover.len()) {
        (0, 0) => Ok(Lit::FALSE),
        (0, 1) => Ok(if cover[0].1 == '1' {
            Lit::TRUE
        } else {
            Lit::FALSE
        }),
        (1, 1) => {
            let (pattern, value) = &cover[0];
            let base = sig[&ins[0]];
            let lit = match pattern.as_str() {
                "1" => base,
                "0" => !base,
                _ => return Err(bad("unsupported one-input cover")),
            };
            Ok(if *value == '1' { lit } else { !lit })
        }
        (2, 1) => {
            let (pattern, value) = &cover[0];
            if pattern.len() != 2 {
                return Err(bad("two-input cover needs two pattern bits"));
            }
            let mut lits = Vec::with_capacity(2);
            for (k, c) in pattern.chars().enumerate() {
                let base = sig[&ins[k]];
                lits.push(match c {
                    '1' => base,
                    '0' => !base,
                    _ => return Err(bad("don't-cares are not supported")),
                });
            }
            let and = aig.add_and(lits[0], lits[1]);
            Ok(if *value == '1' { and } else { !and })
        }
        _ => Err(bad(
            "only single-cube tables of up to two inputs are supported",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let x = aig.add_xor(a, b);
        let m = aig.add_mux(c, x, !a);
        aig.add_output(m);
        aig.add_output(!x);
        aig
    }

    /// Minimal single-pattern simulator (the full one lives in the equiv
    /// crate, which this crate cannot depend on).
    fn sim(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; aig.slot_count()];
        for (&i, &v) in aig.inputs().iter().zip(inputs) {
            values[i.index()] = v;
        }
        let val = |l: Lit, values: &[bool]| values[l.node().index()] ^ l.is_complement();
        for n in crate::topo::topo_ands(aig) {
            let [a, b] = aig.fanins(n);
            values[n.index()] = val(a, &values) & val(b, &values);
        }
        aig.outputs().iter().map(|&po| val(po, &values)).collect()
    }

    #[test]
    fn roundtrip_preserves_structure_and_function() {
        let aig = sample();
        let text = to_string(&aig, "sample");
        let back = parse(&text).unwrap();
        back.check().unwrap();
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        assert_eq!(back.num_ands(), aig.num_ands());
        // Function check by exhaustive simulation over the 3 inputs.
        for m in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|k| m >> k & 1 != 0).collect();
            assert_eq!(sim(&aig, &ins), sim(&back, &ins), "pattern {m:03b}");
        }
    }

    #[test]
    fn constant_outputs_are_expressible() {
        let mut aig = Aig::new();
        let _ = aig.add_input();
        aig.add_output(Lit::FALSE);
        aig.add_output(Lit::TRUE);
        let text = to_string(&aig, "consts");
        let back = parse(&text).unwrap();
        assert_eq!(back.outputs()[0], Lit::FALSE);
        assert_eq!(back.outputs()[1], Lit::TRUE);
    }

    #[test]
    fn rejects_latches_and_hierarchy() {
        assert!(parse(".model x\n.latch a b 0\n.end\n").is_err());
        assert!(parse(".model x\n.subckt sub a=b\n.end\n").is_err());
    }

    #[test]
    fn rejects_wide_tables() {
        let text = ".model x\n.inputs a b c\n.outputs y\n.names a b c y\n111 1\n.end\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn handles_line_continuations_and_comments() {
        let text = ".model x # a comment\n.inputs \\\na b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let aig = parse(text).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_ands(), 1);
    }
}
