use std::fmt;

/// Errors reported by AIG construction, validation and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigError {
    /// The structural invariant checker found a violation.
    InvariantViolation(String),
    /// A fixed-capacity (concurrent) AIG ran out of node slots.
    CapacityExhausted {
        /// Number of slots the arena was created with.
        capacity: usize,
    },
    /// An AIGER file could not be parsed.
    ParseAiger(String),
    /// An I/O error occurred while reading or writing a file.
    Io(String),
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::InvariantViolation(msg) => write!(f, "aig invariant violation: {msg}"),
            AigError::CapacityExhausted { capacity } => write!(
                f,
                "concurrent aig arena exhausted its {capacity} node slots; \
                 rebuild it with a larger headroom factor"
            ),
            AigError::ParseAiger(msg) => write!(f, "invalid aiger input: {msg}"),
            AigError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for AigError {}

impl From<std::io::Error> for AigError {
    fn from(e: std::io::Error) -> Self {
        AigError::Io(e.to_string())
    }
}
