use std::fmt;

/// Errors reported by AIG construction, validation and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigError {
    /// The structural invariant checker found a violation.
    InvariantViolation(String),
    /// A fixed-capacity (concurrent) AIG ran out of node slots.
    CapacityExhausted {
        /// Number of slots the arena was created with.
        capacity: usize,
    },
    /// A headroom factor outside `[1.0, ∞)` (or a non-finite one) was
    /// supplied to a fixed-capacity arena constructor.
    InvalidHeadroom {
        /// Human-readable rendering of the offending factor.
        headroom: String,
    },
    /// The requested arena capacity does not fit the packed node-id space
    /// (or overflows `usize` during sizing).
    CapacityOverflow {
        /// Number of live nodes the capacity was computed from.
        live: usize,
    },
    /// A rewriting worker panicked; the panic was contained at the operator
    /// boundary and converted into this error instead of unwinding through
    /// the scheduler.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An AIGER file could not be parsed.
    ParseAiger(String),
    /// An I/O error occurred while reading or writing a file.
    Io(String),
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::InvariantViolation(msg) => write!(f, "aig invariant violation: {msg}"),
            AigError::CapacityExhausted { capacity } => write!(
                f,
                "concurrent aig arena exhausted its {capacity} node slots; \
                 rebuild it with a larger headroom factor"
            ),
            AigError::InvalidHeadroom { headroom } => write!(
                f,
                "arena headroom factor must be a finite value >= 1.0, got {headroom}"
            ),
            AigError::CapacityOverflow { live } => write!(
                f,
                "required arena capacity for {live} live nodes does not fit \
                 the node-id space"
            ),
            AigError::WorkerPanicked { message } => {
                write!(f, "a rewriting worker panicked: {message}")
            }
            AigError::ParseAiger(msg) => write!(f, "invalid aiger input: {msg}"),
            AigError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for AigError {}

impl From<std::io::Error> for AigError {
    fn from(e: std::io::Error) -> Self {
        AigError::Io(e.to_string())
    }
}
