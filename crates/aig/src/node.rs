use crate::Lit;

/// The kind of an AIG node slot.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// The slot is currently unused (its previous occupant was deleted).
    Free,
    /// The constant-false node (always node 0).
    Const0,
    /// A primary input.
    Input,
    /// A two-input AND gate.
    And,
}

impl NodeKind {
    /// Whether the slot holds a live node.
    #[inline]
    pub fn is_alive(self) -> bool {
        self != NodeKind::Free
    }

    #[inline]
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            NodeKind::Free => 0,
            NodeKind::Const0 => 1,
            NodeKind::Input => 2,
            NodeKind::And => 3,
        }
    }

    #[inline]
    pub(crate) fn from_u8(v: u8) -> NodeKind {
        match v {
            0 => NodeKind::Free,
            1 => NodeKind::Const0,
            2 => NodeKind::Input,
            3 => NodeKind::And,
            _ => unreachable!("invalid node kind tag"),
        }
    }
}

/// Node storage for the single-threaded [`crate::Aig`].
#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub kind: NodeKind,
    /// Fanin literals; meaningful only for `And` nodes, where they are kept
    /// sorted (`fanin[0] <= fanin[1]`) and point at distinct live nodes.
    pub fanin: [Lit; 2],
    /// Logic depth: 0 for inputs/constants, `1 + max(fanin levels)` for ANDs.
    pub level: u32,
    /// Number of references: one per fanout AND node plus one per primary
    /// output edge pointing at this node.
    pub refs: u32,
    /// Number of primary-output edges pointing at this node (a subset of
    /// `refs`); lets `replace` skip the output scan for non-output nodes.
    pub po_refs: u32,
    /// Generation counter, bumped whenever the slot is allocated, the node's
    /// fanins change, or the node is deleted. Stored cuts record leaf
    /// generations so staleness is detectable.
    pub gen: u32,
}

impl Node {
    pub(crate) fn free() -> Node {
        Node {
            kind: NodeKind::Free,
            fanin: [Lit::FALSE; 2],
            level: 0,
            refs: 0,
            po_refs: 0,
            gen: 0,
        }
    }
}
