//! ASCII AIGER (`aag`) reading and writing.
//!
//! Only the combinational subset is supported (no latches), which is all the
//! paper's benchmarks need. Reading goes through [`crate::Aig::add_and`], so
//! redundant gates in the file are folded/strashed away; writing renumbers
//! live nodes compactly in topological order.

use std::io::{BufRead, Write};

use crate::{Aig, AigError, AigRead, Lit, NodeId};

/// Parses an ASCII AIGER document into an [`Aig`].
///
/// # Errors
///
/// Returns [`AigError::ParseAiger`] on malformed input or if the file
/// declares latches, and [`AigError::Io`] on read failures.
///
/// # Example
///
/// ```
/// use dacpara_aig::aiger;
/// let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
/// let aig = aiger::read(text.as_bytes())?;
/// assert_eq!(aig.num_inputs(), 2);
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub fn read<R: BufRead>(mut reader: R) -> Result<Aig, AigError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse(&text)
}

/// Parses an ASCII AIGER document from a string.
///
/// # Errors
///
/// See [`read`].
pub fn parse(text: &str) -> Result<Aig, AigError> {
    let bad = |msg: &str| AigError::ParseAiger(msg.to_string());
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| bad("missing header"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("aag") {
        return Err(bad("expected `aag` header (binary `aig` is unsupported)"));
    }
    let mut nums = [0usize; 5];
    for slot in &mut nums {
        *slot = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("header needs five integers M I L O A"))?;
    }
    let [m, i, l, o, a] = nums;
    if l != 0 {
        return Err(bad("latches are not supported"));
    }
    if m < i + a {
        return Err(bad("M must be at least I + A"));
    }

    let mut aig = Aig::with_capacity(m + 1);
    // map from AIGER variable index to our literal
    let mut map: Vec<Option<Lit>> = vec![None; m + 1];
    map[0] = Some(Lit::FALSE);

    let parse_lit = |tok: &str, map: &[Option<Lit>]| -> Result<Lit, AigError> {
        let raw: u32 = tok
            .parse()
            .map_err(|_| AigError::ParseAiger(format!("bad literal `{tok}`")))?;
        let var = (raw >> 1) as usize;
        let lit = map
            .get(var)
            .copied()
            .flatten()
            .ok_or_else(|| AigError::ParseAiger(format!("undefined variable {var}")))?;
        Ok(lit.xor(raw & 1 == 1))
    };

    for k in 0..i {
        let line = lines.next().ok_or_else(|| bad("missing input line"))?;
        let raw: u32 = line.trim().parse().map_err(|_| bad("bad input literal"))?;
        if raw & 1 == 1 || raw == 0 {
            return Err(bad("input literal must be positive and even"));
        }
        let var = (raw >> 1) as usize;
        if var > m || map[var].is_some() {
            return Err(AigError::ParseAiger(format!(
                "input {k} redefines variable {var}"
            )));
        }
        map[var] = Some(aig.add_input());
    }

    let output_lines: Vec<&str> = (0..o)
        .map(|_| lines.next().ok_or_else(|| bad("missing output line")))
        .collect::<Result<_, _>>()?;

    for _ in 0..a {
        let line = lines.next().ok_or_else(|| bad("missing AND line"))?;
        let mut toks = line.split_whitespace();
        let lhs: u32 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad AND lhs"))?;
        if lhs & 1 == 1 {
            return Err(bad("AND lhs must be even"));
        }
        let var = (lhs >> 1) as usize;
        if var > m || map[var].is_some() {
            return Err(AigError::ParseAiger(format!(
                "AND redefines variable {var}"
            )));
        }
        let r0 = toks.next().ok_or_else(|| bad("missing AND rhs0"))?;
        let r1 = toks.next().ok_or_else(|| bad("missing AND rhs1"))?;
        let f0 = parse_lit(r0, &map)?;
        let f1 = parse_lit(r1, &map)?;
        map[var] = Some(aig.add_and(f0, f1));
    }

    for line in output_lines {
        let lit = parse_lit(line.trim(), &map)?;
        aig.add_output(lit);
    }

    Ok(aig)
}

/// Serializes the graph as an ASCII AIGER document.
///
/// Live nodes are renumbered compactly (inputs first, then ANDs in
/// topological order), so a write/read round trip yields an isomorphic graph.
///
/// # Errors
///
/// Returns [`AigError::Io`] if the writer fails.
pub fn write<W: Write>(aig: &Aig, mut writer: W) -> Result<(), AigError> {
    let order = crate::topo::topo_ands(aig);
    let i = aig.num_inputs();
    let a = order.len();
    let m = i + a;

    let mut var_of: Vec<u32> = vec![0; aig.slot_count()];
    for (k, &inp) in aig.inputs().iter().enumerate() {
        var_of[inp.index()] = (k + 1) as u32;
    }
    for (k, &n) in order.iter().enumerate() {
        var_of[n.index()] = (i + k + 1) as u32;
    }
    let emit = |l: Lit| -> u32 {
        if l.node() == NodeId::CONST0 {
            l.is_complement() as u32
        } else {
            var_of[l.node().index()] << 1 | l.is_complement() as u32
        }
    };

    writeln!(writer, "aag {m} {i} 0 {} {a}", aig.num_outputs())?;
    for k in 0..i {
        writeln!(writer, "{}", (k + 1) << 1)?;
    }
    for &po in aig.outputs() {
        writeln!(writer, "{}", emit(po))?;
    }
    for &n in &order {
        let [f0, f1] = aig.fanins(n);
        writeln!(
            writer,
            "{} {} {}",
            var_of[n.index()] << 1,
            emit(f0),
            emit(f1)
        )?;
    }
    Ok(())
}

/// Serializes the graph to a `String` (convenience over [`write()`]).
pub fn to_string(aig: &Aig) -> String {
    let mut buf = Vec::new();
    write(aig, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("aiger output is ascii")
}

/// Serializes the graph in the *binary* AIGER format (`aig` header): ANDs
/// are stored as two LEB128-style delta-encoded literals, making large
/// netlists roughly 4–8x smaller than the ASCII form.
///
/// # Errors
///
/// Returns [`AigError::Io`] if the writer fails.
pub fn write_binary<W: Write>(aig: &Aig, mut writer: W) -> Result<(), AigError> {
    let order = crate::topo::topo_ands(aig);
    let i = aig.num_inputs();
    let a = order.len();
    let m = i + a;

    let mut var_of: Vec<u32> = vec![0; aig.slot_count()];
    for (k, &inp) in aig.inputs().iter().enumerate() {
        var_of[inp.index()] = (k + 1) as u32;
    }
    for (k, &n) in order.iter().enumerate() {
        var_of[n.index()] = (i + k + 1) as u32;
    }
    let emit = |l: Lit| -> u32 {
        if l.node() == NodeId::CONST0 {
            l.is_complement() as u32
        } else {
            var_of[l.node().index()] << 1 | l.is_complement() as u32
        }
    };

    writeln!(writer, "aig {m} {i} 0 {} {a}", aig.num_outputs())?;
    // Binary format: inputs are implicit (variables 1..=I).
    for &po in aig.outputs() {
        writeln!(writer, "{}", emit(po))?;
    }
    for (k, &n) in order.iter().enumerate() {
        let lhs = ((i + k + 1) << 1) as u32;
        let [f0, f1] = aig.fanins(n);
        let (mut r0, mut r1) = (emit(f0), emit(f1));
        if r0 < r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        debug_assert!(
            lhs > r0 && r0 >= r1,
            "binary aiger needs lhs > rhs0 >= rhs1"
        );
        write_delta(&mut writer, lhs - r0)?;
        write_delta(&mut writer, r0 - r1)?;
    }
    Ok(())
}

fn write_delta<W: Write>(writer: &mut W, mut delta: u32) -> Result<(), AigError> {
    let mut bytes = [0u8; 5];
    let mut len = 0;
    loop {
        let mut byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta != 0 {
            byte |= 0x80;
        }
        bytes[len] = byte;
        len += 1;
        if delta == 0 {
            break;
        }
    }
    writer.write_all(&bytes[..len])?;
    Ok(())
}

/// Parses the binary AIGER format.
///
/// # Errors
///
/// Returns [`AigError::ParseAiger`] on malformed input (including declared
/// latches) and [`AigError::Io`] on read failures.
pub fn read_binary<R: BufRead>(mut reader: R) -> Result<Aig, AigError> {
    let bad = |msg: &str| AigError::ParseAiger(msg.to_string());
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("aig") {
        return Err(bad("expected `aig` header"));
    }
    let mut nums = [0usize; 5];
    for slot in &mut nums {
        *slot = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("header needs five integers M I L O A"))?;
    }
    let [m, i, l, o, a] = nums;
    if l != 0 {
        return Err(bad("latches are not supported"));
    }
    if m != i + a {
        return Err(bad("binary aiger requires M = I + A"));
    }

    let mut aig = Aig::with_capacity(m + 1);
    let mut lits: Vec<Lit> = Vec::with_capacity(m + 1);
    lits.push(Lit::FALSE);
    for _ in 0..i {
        lits.push(aig.add_input());
    }

    let mut outputs_raw = Vec::with_capacity(o);
    for _ in 0..o {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let raw: u32 = line.trim().parse().map_err(|_| bad("bad output literal"))?;
        outputs_raw.push(raw);
    }

    for k in 0..a {
        let lhs = ((i + k + 1) << 1) as u32;
        let d0 = read_delta(&mut reader)?;
        let d1 = read_delta(&mut reader)?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| bad("delta0 exceeds lhs"))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| bad("delta1 exceeds rhs0"))?;
        let get = |raw: u32| -> Result<Lit, AigError> {
            let var = (raw >> 1) as usize;
            let lit = lits
                .get(var)
                .copied()
                .ok_or_else(|| AigError::ParseAiger(format!("undefined variable {var}")))?;
            Ok(lit.xor(raw & 1 == 1))
        };
        let f0 = get(r0)?;
        let f1 = get(r1)?;
        lits.push(aig.add_and(f0, f1));
    }

    for raw in outputs_raw {
        let var = (raw >> 1) as usize;
        let lit = lits
            .get(var)
            .copied()
            .ok_or_else(|| AigError::ParseAiger(format!("undefined output variable {var}")))?;
        aig.add_output(lit.xor(raw & 1 == 1));
    }
    Ok(aig)
}

fn read_delta<R: BufRead>(reader: &mut R) -> Result<u32, AigError> {
    let mut value = 0u32;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if shift >= 35 {
            return Err(AigError::ParseAiger("delta encoding overflow".into()));
        }
        value |= ((byte[0] & 0x7F) as u32) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let x = aig.add_xor(a, b);
        let y = aig.add_mux(c, x, a);
        aig.add_output(y);
        aig.add_output(!x);
        aig
    }

    #[test]
    fn roundtrip_preserves_shape() {
        let aig = sample();
        let text = to_string(&aig);
        let back = parse(&text).unwrap();
        back.check().unwrap();
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        assert_eq!(back.num_ands(), aig.num_ands());
        assert_eq!(to_string(&back), text);
    }

    #[test]
    fn parses_constant_outputs() {
        let aig = parse("aag 1 1 0 2 0\n2\n0\n1\n").unwrap();
        assert_eq!(aig.outputs()[0], Lit::FALSE);
        assert_eq!(aig.outputs()[1], Lit::TRUE);
    }

    #[test]
    fn rejects_latches() {
        assert!(matches!(
            parse("aag 1 0 1 0 0\n2 0\n"),
            Err(AigError::ParseAiger(_))
        ));
    }

    #[test]
    fn rejects_undefined_variable() {
        assert!(parse("aag 3 1 0 1 1\n2\n6\n6 2 8\n").is_err());
    }

    #[test]
    fn binary_roundtrip_preserves_function() {
        let aig = sample();
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        back.check().unwrap();
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        assert_eq!(back.num_ands(), aig.num_ands());
        // Same canonical ASCII form => isomorphic.
        assert_eq!(to_string(&back), to_string(&aig));
    }

    #[test]
    fn binary_is_smaller_than_ascii() {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..16).map(|_| aig.add_input()).collect();
        let mut acc = ins[0];
        for w in ins.windows(2) {
            let x = aig.add_xor(w[0], w[1]);
            acc = aig.add_and(acc, x);
        }
        aig.add_output(acc);
        let ascii = to_string(&aig).len();
        let mut bin = Vec::new();
        write_binary(&aig, &mut bin).unwrap();
        assert!(
            bin.len() * 2 < ascii,
            "binary {} vs ascii {ascii}",
            bin.len()
        );
    }

    #[test]
    fn binary_rejects_bad_header() {
        assert!(read_binary(&b"aag 1 1 0 0 0\n"[..]).is_err());
        assert!(read_binary(&b"aig 3 1 0 0 1\n"[..]).is_err()); // M != I+A
    }

    #[test]
    fn folds_redundant_gates_on_read() {
        // AND(x, x) collapses to x during construction.
        let aig = parse("aag 2 1 0 1 1\n2\n4\n4 2 2\n").unwrap();
        assert_eq!(aig.num_ands(), 0);
    }
}
