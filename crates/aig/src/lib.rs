#![warn(missing_docs)]
//! And-Inverter Graph (AIG) infrastructure for the DACPara reproduction.
//!
//! An AIG is a directed acyclic graph whose internal nodes are two-input AND
//! gates and whose edges carry an optional complement (inverter) attribute.
//! This crate provides:
//!
//! * [`Lit`] / [`NodeId`] — complement-carrying edge literals and node handles,
//! * [`Aig`] — a single-threaded AIG with structural hashing, fanout lists,
//!   reference counts, node-slot recycling with generation counters, DAG-aware
//!   node replacement ([`Aig::replace`]), level tracking and an invariant
//!   checker ([`Aig::check`]),
//! * [`concurrent::ConcurrentAig`] — a fixed-capacity variant whose node
//!   fields are readable without locks (atomics) and whose mutations follow
//!   the Galois-style lock discipline used by the parallel rewriting engines,
//! * [`AigRead`] — the read-only view trait shared by both representations so
//!   that cut enumeration and rewriting evaluation are written once,
//! * MFFC computation on a thread-local scratch ([`mffc`]),
//! * AIGER reading and writing, ASCII and binary (see the [`aiger`]
//!   module), plus a structural BLIF writer/reader (the [`blif`] module).
//!
//! # Example
//!
//! ```
//! use dacpara_aig::{Aig, AigRead};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let ab = aig.add_and(a, b);
//! aig.add_output(!ab); // a NAND b
//! assert_eq!(aig.num_ands(), 1);
//! aig.check().expect("structurally sound");
//! ```

mod aig;
pub mod aiger;
pub mod blif;
mod check;
pub mod concurrent;
mod error;
pub mod export;
mod lit;
pub mod mffc;
mod node;
mod rebuild;
mod topo;
mod view;

pub use aig::Aig;
pub use check::same_interface;
pub use error::AigError;
pub use lit::{Lit, NodeId};
pub use node::NodeKind;
pub use rebuild::{compact, RebuildPlan};
pub use topo::{topo_ands, transitive_fanin, transitive_fanout_ids};
pub use view::AigRead;
