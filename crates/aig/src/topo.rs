//! Topological traversals over any [`AigRead`] view.

use std::collections::HashSet;

use crate::{AigRead, NodeId, NodeKind};

/// All live AND nodes in topological (fanin-before-fanout) order.
///
/// Dangling nodes (unreachable from the outputs) are included so that a
/// subsequent level recomputation covers every live slot.
pub fn topo_ands<V: AigRead + ?Sized>(view: &V) -> Vec<NodeId> {
    let n = view.slot_count();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack: Vec<(NodeId, bool)> = Vec::new();
    for i in 0..n {
        let root = NodeId::new(i as u32);
        if view.kind(root) != NodeKind::And || visited[i] {
            continue;
        }
        stack.push((root, false));
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            if visited[node.index()] {
                continue;
            }
            visited[node.index()] = true;
            stack.push((node, true));
            for l in view.fanins(node) {
                let v = l.node();
                if view.kind(v) == NodeKind::And && !visited[v.index()] {
                    stack.push((v, false));
                }
            }
        }
    }
    order
}

/// Whether `target` lies in the transitive fanin of `source` (inclusive:
/// returns `true` when `source == target`).
pub fn is_in_tfi<V: AigRead + ?Sized>(view: &V, source: NodeId, target: NodeId) -> bool {
    if source == target {
        return true;
    }
    let mut seen = HashSet::new();
    let mut stack = vec![source];
    while let Some(n) = stack.pop() {
        if n == target {
            return true;
        }
        if view.kind(n) != NodeKind::And || !seen.insert(n) {
            continue;
        }
        for l in view.fanins(n) {
            stack.push(l.node());
        }
    }
    false
}

/// The set of nodes in the transitive fanin of `roots` (inclusive of the
/// roots, exclusive of nothing else — constants and inputs are included when
/// reached).
pub fn transitive_fanin<V: AigRead + ?Sized>(view: &V, roots: &[NodeId]) -> HashSet<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if view.kind(n) == NodeKind::And {
            for l in view.fanins(n) {
                stack.push(l.node());
            }
        }
    }
    seen
}

/// The ids of every node in the transitive fanout of `n` (exclusive of `n`).
pub fn transitive_fanout_ids<V: AigRead + ?Sized>(view: &V, n: NodeId) -> Vec<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut out = Vec::new();
    let mut stack = view.fanout_ids(n);
    while let Some(f) = stack.pop() {
        if !seen.insert(f) {
            continue;
        }
        out.push(f);
        stack.extend(view.fanout_ids(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aig;

    #[test]
    fn topo_orders_fanins_first() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        let top = aig.add_and(ab, a);
        aig.add_output(top);
        let order = topo_ands(&aig);
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(ab.node()) < pos(top.node()));
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn tfi_detection() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        let top = aig.add_and(ab, a);
        aig.add_output(top);
        assert!(is_in_tfi(&aig, top.node(), ab.node()));
        assert!(is_in_tfi(&aig, top.node(), a.node()));
        assert!(!is_in_tfi(&aig, ab.node(), top.node()));
        assert!(is_in_tfi(&aig, ab.node(), ab.node()));
    }

    #[test]
    fn fanout_cone() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        let top = aig.add_and(ab, a);
        aig.add_output(top);
        let tfo = transitive_fanout_ids(&aig, a.node());
        assert!(tfo.contains(&ab.node()));
        assert!(tfo.contains(&top.node()));
        assert_eq!(tfo.len(), 2);
    }
}
