//! One-way exporters: structural Verilog and Graphviz DOT.
//!
//! Both formats are write-only conveniences — Verilog for handing optimized
//! netlists to downstream tools, DOT for eyeballing small graphs.

use std::io::Write;

use crate::{Aig, AigError, AigRead, Lit, NodeId};

/// Writes the graph as a structural Verilog module (one `assign` per AND,
/// inverters folded into the expressions).
///
/// # Errors
///
/// Returns [`AigError::Io`] if the writer fails.
///
/// # Example
///
/// ```
/// use dacpara_aig::{export, Aig};
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let ab = aig.add_and(a, !b);
/// aig.add_output(!ab);
/// let v = export::verilog_to_string(&aig, "tiny");
/// assert!(v.contains("module tiny"));
/// assert!(v.contains("assign"));
/// ```
pub fn write_verilog<W: Write>(aig: &Aig, module: &str, mut writer: W) -> Result<(), AigError> {
    let order = crate::topo::topo_ands(aig);
    let mut name: Vec<String> = vec![String::new(); aig.slot_count()];
    for (k, &i) in aig.inputs().iter().enumerate() {
        name[i.index()] = format!("pi{k}");
    }
    for (k, &n) in order.iter().enumerate() {
        name[n.index()] = format!("n{k}");
    }
    let expr = |l: Lit, name: &[String]| -> String {
        if l.node() == NodeId::CONST0 {
            return if l.is_complement() { "1'b1" } else { "1'b0" }.to_string();
        }
        let base = &name[l.node().index()];
        if l.is_complement() {
            format!("~{base}")
        } else {
            base.clone()
        }
    };

    write!(writer, "module {module}(")?;
    let mut ports: Vec<String> = (0..aig.num_inputs()).map(|k| format!("pi{k}")).collect();
    ports.extend((0..aig.num_outputs()).map(|k| format!("po{k}")));
    writeln!(writer, "{});", ports.join(", "))?;
    for k in 0..aig.num_inputs() {
        writeln!(writer, "  input pi{k};")?;
    }
    for k in 0..aig.num_outputs() {
        writeln!(writer, "  output po{k};")?;
    }
    for &n in &order {
        writeln!(writer, "  wire {};", name[n.index()])?;
    }
    for &n in &order {
        let [a, b] = aig.fanins(n);
        writeln!(
            writer,
            "  assign {} = {} & {};",
            name[n.index()],
            expr(a, &name),
            expr(b, &name)
        )?;
    }
    for (k, &po) in aig.outputs().iter().enumerate() {
        writeln!(writer, "  assign po{k} = {};", expr(po, &name))?;
    }
    writeln!(writer, "endmodule")?;
    Ok(())
}

/// Serializes to a Verilog `String` (convenience over [`write_verilog`]).
pub fn verilog_to_string(aig: &Aig, module: &str) -> String {
    let mut buf = Vec::new();
    write_verilog(aig, module, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("verilog output is ascii")
}

/// Writes the graph as Graphviz DOT (dashed edges are complemented).
///
/// # Errors
///
/// Returns [`AigError::Io`] if the writer fails.
pub fn write_dot<W: Write>(aig: &Aig, mut writer: W) -> Result<(), AigError> {
    writeln!(writer, "digraph aig {{")?;
    writeln!(writer, "  rankdir=BT;")?;
    for (k, &i) in aig.inputs().iter().enumerate() {
        writeln!(writer, "  n{} [label=\"pi{k}\", shape=triangle];", i.raw())?;
    }
    for n in crate::topo::topo_ands(aig) {
        writeln!(writer, "  n{} [label=\"&\", shape=circle];", n.raw())?;
        for l in aig.fanins(n) {
            writeln!(
                writer,
                "  n{} -> n{}{};",
                l.node().raw(),
                n.raw(),
                if l.is_complement() {
                    " [style=dashed]"
                } else {
                    ""
                }
            )?;
        }
    }
    for (k, &po) in aig.outputs().iter().enumerate() {
        writeln!(writer, "  po{k} [shape=invtriangle];")?;
        writeln!(
            writer,
            "  n{} -> po{k}{};",
            po.node().raw(),
            if po.is_complement() {
                " [style=dashed]"
            } else {
                ""
            }
        )?;
    }
    writeln!(writer, "}}")?;
    Ok(())
}

/// Serializes to a DOT `String` (convenience over [`write_dot`]).
pub fn dot_to_string(aig: &Aig) -> String {
    let mut buf = Vec::new();
    write_dot(aig, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("dot output is ascii")
}

/// Aggregate structural statistics of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AigStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of live AND gates.
    pub ands: usize,
    /// Logic depth.
    pub depth: u32,
    /// Largest fanout of any node.
    pub max_fanout: usize,
    /// Number of nodes with fanout of at least 16 (the "high-fanout" nodes
    /// the paper blames for ICCAD'18's conflicts).
    pub high_fanout_nodes: usize,
}

/// Computes [`AigStats`].
pub fn stats(aig: &Aig) -> AigStats {
    let mut max_fanout = 0;
    let mut high = 0;
    for i in 0..aig.slot_count() as u32 {
        let n = NodeId::new(i);
        if aig.is_alive(n) {
            let f = aig.fanouts(n).len();
            max_fanout = max_fanout.max(f);
            if f >= 16 {
                high += 1;
            }
        }
    }
    AigStats {
        inputs: aig.num_inputs(),
        outputs: aig.num_outputs(),
        ands: aig.num_ands(),
        depth: aig.depth(),
        max_fanout,
        high_fanout_nodes: high,
    }
}

impl std::fmt::Display for AigStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} PIs, {} POs, {} ANDs, depth {}, max fanout {} ({} high-fanout nodes)",
            self.inputs,
            self.outputs,
            self.ands,
            self.depth,
            self.max_fanout,
            self.high_fanout_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.add_xor(a, b);
        aig.add_output(x);
        aig.add_output(!x);
        aig
    }

    #[test]
    fn verilog_mentions_every_port_and_gate() {
        let aig = sample();
        let v = verilog_to_string(&aig, "xor2");
        assert!(v.contains("module xor2"));
        assert!(v.contains("input pi0;"));
        assert!(v.contains("input pi1;"));
        assert!(v.contains("output po0;"));
        assert!(v.contains("output po1;"));
        assert_eq!(
            v.matches("assign").count(),
            aig.num_ands() + aig.num_outputs()
        );
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn verilog_handles_constant_outputs() {
        let mut aig = Aig::new();
        let _ = aig.add_input();
        aig.add_output(Lit::TRUE);
        let v = verilog_to_string(&aig, "c");
        assert!(v.contains("assign po0 = 1'b1;"));
    }

    #[test]
    fn dot_marks_complemented_edges() {
        let aig = sample();
        let d = dot_to_string(&aig);
        assert!(d.starts_with("digraph aig {"));
        assert!(d.contains("style=dashed"));
        assert!(d.contains("shape=triangle"));
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn stats_count_structure() {
        let aig = sample();
        let s = stats(&aig);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.ands, 3);
        assert_eq!(s.depth, 2);
        assert!(s.max_fanout >= 2);
        let display = s.to_string();
        assert!(display.contains("3 ANDs"));
    }
}
