use std::fmt;

/// Handle to a node slot inside an AIG.
///
/// Node `0` is always the constant-false node. Slot handles are stable for
/// the lifetime of a node; deleted slots are recycled with a bumped
/// generation counter (see [`crate::AigRead::generation`]), which is how the
/// rewriting engines detect that a stored cut has been invalidated by ID
/// reuse (Fig. 3 of the paper).
///
/// # Example
///
/// ```
/// use dacpara_aig::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false node present in every AIG.
    pub const CONST0: NodeId = NodeId(0);

    /// Creates a handle from a raw slot index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Raw slot index, usable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw slot index as `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The positive (non-complemented) literal pointing at this node.
    #[inline]
    pub const fn lit(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for u32 {
    fn from(n: NodeId) -> u32 {
        n.0
    }
}

/// An AIG edge literal: a node handle plus a complement (inverter) bit.
///
/// Encoded ABC/AIGER style as `2 * node + complement`, so [`Lit::FALSE`] is
/// `0` and [`Lit::TRUE`] is `1`. Negation is the `!` operator.
///
/// # Example
///
/// ```
/// use dacpara_aig::{Lit, NodeId};
/// let x = NodeId::new(5).lit();
/// assert!(!x.is_complement());
/// assert!((!x).is_complement());
/// assert_eq!(!!x, x);
/// assert_eq!(!Lit::FALSE, Lit::TRUE);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (non-complemented edge to node 0).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (complemented edge to node 0).
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node handle and a complement flag.
    #[inline]
    pub const fn new(node: NodeId, complement: bool) -> Self {
        Lit(node.0 << 1 | complement as u32)
    }

    /// Decodes a raw AIGER-style literal value (`2 * node + complement`).
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }

    /// The raw AIGER-style encoding of this literal.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The node this literal points at.
    #[inline]
    pub const fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge carries an inverter.
    #[inline]
    pub const fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// This literal with its complement bit XORed with `c`.
    ///
    /// Useful when substituting one literal for another while preserving the
    /// phase of the original edge.
    #[inline]
    #[must_use]
    pub const fn xor(self, c: bool) -> Self {
        Lit(self.0 ^ c as u32)
    }

    /// The non-complemented literal on the same node.
    #[inline]
    #[must_use]
    pub const fn regular(self) -> Self {
        Lit(self.0 & !1)
    }

    /// Whether this is one of the two constant literals.
    #[inline]
    pub const fn is_const(self) -> bool {
        self.0 <= 1
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<NodeId> for Lit {
    fn from(n: NodeId) -> Lit {
        n.lit()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.0 >> 1)
        } else {
            write!(f, "n{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        for raw in 0..64u32 {
            let l = Lit::from_raw(raw);
            assert_eq!(l.raw(), raw);
            assert_eq!(Lit::new(l.node(), l.is_complement()), l);
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Lit::FALSE.node(), NodeId::CONST0);
        assert_eq!(Lit::TRUE.node(), NodeId::CONST0);
        assert!(Lit::TRUE.is_complement());
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
        assert!(!NodeId::new(1).lit().is_const());
    }

    #[test]
    fn negation_involution() {
        let l = Lit::new(NodeId::new(7), true);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).node(), l.node());
    }

    #[test]
    fn xor_preserves_node() {
        let l = Lit::new(NodeId::new(9), false);
        assert_eq!(l.xor(true), !l);
        assert_eq!(l.xor(false), l);
        assert_eq!((!l).regular(), l);
    }

    #[test]
    fn ordering_groups_by_node() {
        let a = NodeId::new(3).lit();
        let b = NodeId::new(4).lit();
        assert!(a < !a);
        assert!(!a < b);
    }
}
