//! A fixed-capacity AIG whose node fields can be read without locks.
//!
//! [`ConcurrentAig`] backs the parallel rewriting engines. Its design
//! follows the paper's requirements:
//!
//! * **Lock-free reads everywhere** — every node field is an atomic, and the
//!   per-node fanout lists sit behind lightweight reader/writer locks, so
//!   the evaluation stage (§4.3 of the paper, >90% of the runtime) runs with
//!   *no exclusive locks at all*.
//! * **Decentralized structural hashing** — [`ConcurrentAig::find_and`]
//!   scans the fanout list of one fanin instead of probing a global hash
//!   table, the scheme adopted from ICCAD'18.
//! * **Galois-style mutation discipline** — mutating calls
//!   ([`ConcurrentAig::add_and_locked`], [`ConcurrentAig::replace_locked`])
//!   expect the caller to hold the engine's exclusive per-node locks over
//!   every node they touch. The structure itself stays memory-safe without
//!   them (all state is atomic or lock-guarded), but logical consistency —
//!   reference counts, canonicity — relies on the discipline.
//! * **Slot recycling with generations** — like the serial [`Aig`], freed
//!   slots are reused and their generation counter bumped, reproducing the
//!   stored-cut invalidation of Fig. 3.
//!
//! Replacements performed in parallel do not cascade structural merges (that
//! would require locking an unbounded fanout frontier mid-mutation).
//! Instead, fanouts whose fanin pair may have become foldable or duplicated
//! are queued, and [`ConcurrentAig::canonicalize`] — called serially at the
//! engine's synchronization points (between level worklists) — restores full
//! strash canonicity. The graph is functionally correct at every instant
//! either way.

use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};

use parking_lot::{Mutex, RwLock};

use crate::{Aig, AigError, AigRead, Lit, NodeId, NodeKind};

const ORD_LOAD: Ordering = Ordering::Acquire;
const ORD_STORE: Ordering = Ordering::Release;

/// Denominator of the rational headroom factor used for capacity sizing.
const HEADROOM_DENOM: usize = 1024;

/// Flat slack added on top of the scaled capacity: keeps tiny graphs
/// rewritable even at `headroom = 1.0` (replacements transiently allocate
/// before the old cone is freed).
const SLACK_SLOTS: usize = 64;

/// Largest addressable capacity: literals pack `(index << 1) | complement`
/// into a `u32`.
const MAX_CAPACITY: usize = (u32::MAX >> 1) as usize;

/// Atomic per-node storage.
struct CNode {
    fanin0: AtomicU32,
    fanin1: AtomicU32,
    refs: AtomicU32,
    po_refs: AtomicU32,
    gen: AtomicU32,
    level: AtomicU32,
    kind: AtomicU8,
    /// Bit 0: queued for canonicalization.
    flags: AtomicU8,
}

impl CNode {
    fn free() -> CNode {
        CNode {
            fanin0: AtomicU32::new(0),
            fanin1: AtomicU32::new(0),
            refs: AtomicU32::new(0),
            po_refs: AtomicU32::new(0),
            gen: AtomicU32::new(0),
            level: AtomicU32::new(0),
            kind: AtomicU8::new(NodeKind::Free.to_u8()),
            flags: AtomicU8::new(0),
        }
    }
}

/// Shared-memory AIG for the parallel rewriting engines.
///
/// Create one from a serial graph with [`ConcurrentAig::from_aig`], run a
/// parallel pass against it, then convert back with
/// [`ConcurrentAig::to_aig`].
///
/// # Example
///
/// ```
/// use dacpara_aig::{Aig, AigRead, concurrent::ConcurrentAig};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let ab = aig.add_and(a, b);
/// aig.add_output(ab);
/// let shared = ConcurrentAig::from_aig(&aig, 1.5).unwrap();
/// assert_eq!(shared.num_ands(), 1);
/// let back = shared.to_aig();
/// assert_eq!(back.num_ands(), 1);
/// ```
pub struct ConcurrentAig {
    nodes: Box<[CNode]>,
    fanouts: Box<[RwLock<Vec<NodeId>>]>,
    inputs: Vec<NodeId>,
    outputs: Mutex<Vec<Lit>>,
    free: Mutex<Vec<NodeId>>,
    pending: Mutex<Vec<NodeId>>,
    num_ands: AtomicUsize,
    next_fresh: AtomicUsize,
}

impl ConcurrentAig {
    /// Builds a concurrent copy of `aig` with `headroom >= 1.0` times its
    /// slot count reserved (rewriting transiently allocates new nodes before
    /// deleting the old cone, so some slack is required).
    ///
    /// Live nodes are renumbered compactly: constant, inputs, then ANDs in
    /// topological order.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::InvalidHeadroom`] when `headroom` is non-finite
    /// or below `1.0`, and [`AigError::CapacityOverflow`] when the scaled
    /// capacity does not fit the node-id space.
    pub fn from_aig(aig: &Aig, headroom: f64) -> Result<ConcurrentAig, AigError> {
        let capacity = Self::required_capacity(aig, headroom)?;
        let nodes: Box<[CNode]> = (0..capacity).map(|_| CNode::free()).collect();
        let fanouts: Box<[RwLock<Vec<NodeId>>]> =
            (0..capacity).map(|_| RwLock::new(Vec::new())).collect();
        let mut shared = ConcurrentAig {
            nodes,
            fanouts,
            inputs: Vec::new(),
            outputs: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            pending: Mutex::new(Vec::new()),
            num_ands: AtomicUsize::new(0),
            next_fresh: AtomicUsize::new(0),
        };
        shared.populate(aig);
        Ok(shared)
    }

    fn required_capacity(aig: &Aig, headroom: f64) -> Result<usize, AigError> {
        let live = 1 + aig.num_inputs() + aig.num_ands();
        Self::scale_capacity(live, headroom)
    }

    /// Computes the arena capacity for `live` nodes under a headroom
    /// factor, entirely in checked integer math: the factor is quantized
    /// once to [`HEADROOM_DENOM`]ths (rounding up), then scaled with
    /// `checked_mul` so a huge factor or node count errors out instead of
    /// silently wrapping through an `f64 as usize` cast.
    pub fn scale_capacity(live: usize, headroom: f64) -> Result<usize, AigError> {
        if !headroom.is_finite() || headroom < 1.0 {
            return Err(AigError::InvalidHeadroom {
                headroom: format!("{headroom}"),
            });
        }
        let num = (headroom * HEADROOM_DENOM as f64).ceil();
        // Saturate the quantized numerator so absurd factors fail through
        // checked_mul below rather than wrapping in the float-to-int cast.
        let num = if num >= usize::MAX as f64 {
            usize::MAX
        } else {
            num as usize
        };
        let capacity = live
            .checked_mul(num)
            .map(|scaled| scaled / HEADROOM_DENOM)
            .and_then(|scaled| scaled.checked_add(SLACK_SLOTS))
            .ok_or(AigError::CapacityOverflow { live })?
            .max(live + SLACK_SLOTS);
        if capacity > MAX_CAPACITY {
            return Err(AigError::CapacityOverflow { live });
        }
        Ok(capacity)
    }

    /// Re-initializes this arena from a (possibly mutated) serial graph,
    /// **reusing the existing allocation** whenever the current capacity
    /// suffices — the node boxes, fanout vectors and bookkeeping lists are
    /// recycled instead of reallocated. Only when `aig` outgrew the arena
    /// is fresh storage allocated.
    ///
    /// Every slot's generation is bumped (never reset), so stale cut-memo
    /// entries recorded against the previous occupants can never match the
    /// re-synced graph.
    ///
    /// Call from a single thread while no parallel operators are running.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::InvalidHeadroom`] or [`AigError::CapacityOverflow`]
    /// like [`ConcurrentAig::from_aig`]; the arena is left untouched on error.
    pub fn resync_from(&mut self, aig: &Aig, headroom: f64) -> Result<(), AigError> {
        let capacity = Self::required_capacity(aig, headroom)?;
        if capacity > self.nodes.len() {
            self.nodes = (0..capacity).map(|_| CNode::free()).collect();
            self.fanouts = (0..capacity).map(|_| RwLock::new(Vec::new())).collect();
        } else {
            for node in self.nodes.iter_mut() {
                node.kind.store(NodeKind::Free.to_u8(), ORD_STORE);
                node.fanin0.store(0, Ordering::Relaxed);
                node.fanin1.store(0, Ordering::Relaxed);
                node.refs.store(0, Ordering::Relaxed);
                node.po_refs.store(0, Ordering::Relaxed);
                node.level.store(0, Ordering::Relaxed);
                node.flags.store(0, Ordering::Relaxed);
                node.gen.fetch_add(1, Ordering::Relaxed);
            }
            for f in self.fanouts.iter_mut() {
                f.get_mut().clear();
            }
        }
        self.inputs.clear();
        self.outputs.get_mut().clear();
        self.free.get_mut().clear();
        self.pending.get_mut().clear();
        self.num_ands.store(0, Ordering::Relaxed);
        self.next_fresh.store(0, Ordering::Relaxed);
        self.populate(aig);
        Ok(())
    }

    /// Copies `aig` into the (cleared) arena: constant, inputs, then ANDs
    /// in topological order.
    fn populate(&mut self, aig: &Aig) {
        // Slot 0: constant.
        self.nodes[0]
            .kind
            .store(NodeKind::Const0.to_u8(), ORD_STORE);
        self.next_fresh.store(1, Ordering::Relaxed);

        let mut map: Vec<Lit> = vec![Lit::FALSE; aig.slot_count()];
        for &inp in aig.inputs() {
            let slot = self.next_fresh.fetch_add(1, Ordering::Relaxed);
            let id = NodeId::new(slot as u32);
            self.nodes[slot]
                .kind
                .store(NodeKind::Input.to_u8(), ORD_STORE);
            self.inputs.push(id);
            map[inp.index()] = id.lit();
        }
        for n in crate::topo::topo_ands(aig) {
            let [a, b] = aig.fanins(n);
            let ma = map[a.node().index()].xor(a.is_complement());
            let mb = map[b.node().index()].xor(b.is_complement());
            let (ma, mb) = if ma <= mb { (ma, mb) } else { (mb, ma) };
            let slot = self.next_fresh.fetch_add(1, Ordering::Relaxed);
            let id = NodeId::new(slot as u32);
            let node = &self.nodes[slot];
            node.kind.store(NodeKind::And.to_u8(), ORD_STORE);
            node.fanin0.store(ma.raw(), Ordering::Relaxed);
            node.fanin1.store(mb.raw(), Ordering::Relaxed);
            let level = 1 + self.level(ma.node()).max(self.level(mb.node()));
            node.level.store(level, Ordering::Relaxed);
            for l in [ma, mb] {
                self.fanouts[l.node().index()].get_mut().push(id);
                self.nodes[l.node().index()]
                    .refs
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.num_ands.fetch_add(1, Ordering::Relaxed);
            map[n.index()] = id.lit();
        }
        {
            let outs = self.outputs.get_mut();
            for &po in aig.outputs() {
                let l = map[po.node().index()].xor(po.is_complement());
                outs.push(l);
                self.nodes[l.node().index()]
                    .refs
                    .fetch_add(1, Ordering::Relaxed);
                self.nodes[l.node().index()]
                    .po_refs
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total number of node slots in the arena.
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Converts back to a compact serial [`Aig`] (folds any residual
    /// non-canonical gates through [`Aig::add_and`]).
    pub fn to_aig(&self) -> Aig {
        let mut aig = Aig::with_capacity(self.num_ands() + self.inputs.len() + 1);
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.capacity()];
        for &inp in &self.inputs {
            map[inp.index()] = aig.add_input();
        }
        for n in crate::topo::topo_ands(self) {
            let [a, b] = self.fanins(n);
            let ma = map[a.node().index()].xor(a.is_complement());
            let mb = map[b.node().index()].xor(b.is_complement());
            map[n.index()] = aig.add_and(ma, mb);
        }
        for po in self.output_lits() {
            let l = map[po.node().index()].xor(po.is_complement());
            aig.add_output(l);
        }
        aig
    }

    fn alloc_slot(&self) -> Result<NodeId, AigError> {
        if dacpara_fault::point(dacpara_fault::points::ARENA_ALLOC) {
            return Err(AigError::CapacityExhausted {
                capacity: self.nodes.len(),
            });
        }
        if let Some(id) = self.free.lock().pop() {
            return Ok(id);
        }
        let slot = self.next_fresh.fetch_add(1, Ordering::Relaxed);
        if slot >= self.nodes.len() {
            // Undo so repeated failures don't wrap.
            self.next_fresh.fetch_sub(1, Ordering::Relaxed);
            return Err(AigError::CapacityExhausted {
                capacity: self.nodes.len(),
            });
        }
        Ok(NodeId::new(slot as u32))
    }

    /// Like [`AigRead::find_and`] but never returns `exclude` — needed when
    /// probing whether a node duplicates *another* node.
    pub fn find_and_excluding(&self, f0: Lit, f1: Lit, exclude: NodeId) -> Option<NodeId> {
        let (a, b) = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
        // Scan whichever fanin has the shorter fanout list (high-fanout
        // nodes would otherwise dominate the decentralized lookup cost).
        let scan = if self.fanouts[a.node().index()].read().len()
            <= self.fanouts[b.node().index()].read().len()
        {
            a.node()
        } else {
            b.node()
        };
        let guard = self.fanouts[scan.index()].read();
        for &cand in guard.iter() {
            if cand == exclude || self.kind(cand) != NodeKind::And {
                continue;
            }
            let ca = Lit::from_raw(self.nodes[cand.index()].fanin0.load(ORD_LOAD));
            let cb = Lit::from_raw(self.nodes[cand.index()].fanin1.load(ORD_LOAD));
            if (ca, cb) == (a, b) {
                return Some(cand);
            }
        }
        None
    }

    /// Creates (or finds) the AND of `a` and `b`.
    ///
    /// Lock discipline: the caller must hold the engine's exclusive locks on
    /// `a.node()` and `b.node()` (their fanout lists are probed and then
    /// extended, which must not race with other structural lookups on the
    /// same nodes).
    ///
    /// # Errors
    ///
    /// Returns [`AigError::CapacityExhausted`] when the arena is full.
    pub fn add_and_locked(&self, a: Lit, b: Lit) -> Result<Lit, AigError> {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(l) = Aig::fold_and(a, b) {
            return Ok(l);
        }
        if let Some(n) = self.find_and(a, b) {
            return Ok(n.lit());
        }
        let id = self.alloc_slot()?;
        let node = &self.nodes[id.index()];
        node.fanin0.store(a.raw(), Ordering::Relaxed);
        node.fanin1.store(b.raw(), Ordering::Relaxed);
        node.refs.store(0, Ordering::Relaxed);
        node.po_refs.store(0, Ordering::Relaxed);
        let level = 1 + self.level(a.node()).max(self.level(b.node()));
        node.level.store(level, Ordering::Relaxed);
        node.gen.fetch_add(1, Ordering::AcqRel);
        node.kind.store(NodeKind::And.to_u8(), ORD_STORE);
        for l in [a, b] {
            self.fanouts[l.node().index()].write().push(id);
            self.nodes[l.node().index()]
                .refs
                .fetch_add(1, Ordering::AcqRel);
        }
        self.num_ands.fetch_add(1, Ordering::AcqRel);
        Ok(id.lit())
    }

    /// Replaces every use of `old` by the literal `new` and deletes the part
    /// of `old`'s fanin cone that becomes dangling.
    ///
    /// Lock discipline: the caller must hold exclusive locks on `old`, its
    /// fanouts, every node of its (cut-bounded) MFFC and the MFFC boundary
    /// nodes whose reference counts change — exactly the "relevant nodes" of
    /// the paper's replacement operator.
    ///
    /// Structural merges exposed by the edge moves are queued for the next
    /// [`ConcurrentAig::canonicalize`] instead of cascading immediately.
    pub fn replace_locked(&self, old: NodeId, new: Lit) {
        debug_assert_eq!(self.kind(old), NodeKind::And);
        debug_assert!(self.is_alive(new.node()));
        if new.node() == old {
            return;
        }
        // Pin `new` so cone deletion cannot reclaim it.
        self.nodes[new.node().index()]
            .refs
            .fetch_add(1, Ordering::AcqRel);
        self.move_fanout_edges(old, new);
        if self.nodes[old.index()].refs.load(ORD_LOAD) == 0 {
            self.delete_cone(old);
        }
        self.nodes[new.node().index()]
            .refs
            .fetch_sub(1, Ordering::AcqRel);
    }

    fn move_fanout_edges(&self, o: NodeId, t: Lit) {
        loop {
            let f = {
                let mut guard = self.fanouts[o.index()].write();
                match guard.pop() {
                    Some(f) => f,
                    None => break,
                }
            };
            self.nodes[o.index()].refs.fetch_sub(1, Ordering::AcqRel);
            let node = &self.nodes[f.index()];
            let f0 = Lit::from_raw(node.fanin0.load(ORD_LOAD));
            let f1 = Lit::from_raw(node.fanin1.load(ORD_LOAD));
            let (mut a, mut b) = (f0, f1);
            if a.node() == o {
                a = t.xor(a.is_complement());
            } else {
                debug_assert_eq!(b.node(), o);
                b = t.xor(b.is_complement());
            }
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            node.fanin0.store(a.raw(), Ordering::Relaxed);
            node.fanin1.store(b.raw(), Ordering::Relaxed);
            node.gen.fetch_add(1, Ordering::AcqRel);
            self.fanouts[t.node().index()].write().push(f);
            self.nodes[t.node().index()]
                .refs
                .fetch_add(1, Ordering::AcqRel);
            self.mark_pending(f);
        }
        if self.nodes[o.index()].po_refs.load(ORD_LOAD) > 0 {
            let mut outs = self.outputs.lock();
            let mut moved = 0u32;
            for po in outs.iter_mut() {
                if po.node() == o {
                    *po = t.xor(po.is_complement());
                    moved += 1;
                }
            }
            drop(outs);
            if moved > 0 {
                self.nodes[o.index()]
                    .refs
                    .fetch_sub(moved, Ordering::AcqRel);
                self.nodes[o.index()]
                    .po_refs
                    .fetch_sub(moved, Ordering::AcqRel);
                self.nodes[t.node().index()]
                    .refs
                    .fetch_add(moved, Ordering::AcqRel);
                self.nodes[t.node().index()]
                    .po_refs
                    .fetch_add(moved, Ordering::AcqRel);
            }
        }
    }

    fn mark_pending(&self, n: NodeId) {
        let prev = self.nodes[n.index()].flags.fetch_or(1, Ordering::AcqRel);
        if prev & 1 == 0 {
            self.pending.lock().push(n);
        }
    }

    /// Deletes the dangling node `root` (refs == 0) and, transitively, every
    /// fanin that becomes dangling. Same lock discipline as
    /// [`ConcurrentAig::replace_locked`].
    pub fn delete_cone(&self, root: NodeId) {
        self.delete_cone_inner(root, None);
    }

    /// Like [`ConcurrentAig::delete_cone`], but records each *surviving*
    /// fanin of a deleted node into `boundary` — the nodes whose reference
    /// counts (and hence MFFC/sharing picture) changed without their own
    /// structure changing. Entries may repeat.
    pub fn delete_cone_logged(&self, root: NodeId, boundary: &mut Vec<NodeId>) {
        self.delete_cone_inner(root, Some(boundary));
    }

    fn delete_cone_inner(&self, root: NodeId, mut boundary: Option<&mut Vec<NodeId>>) {
        debug_assert_eq!(self.nodes[root.index()].refs.load(ORD_LOAD), 0);
        debug_assert_eq!(self.kind(root), NodeKind::And);
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n.index()];
            let f0 = Lit::from_raw(node.fanin0.load(ORD_LOAD));
            let f1 = Lit::from_raw(node.fanin1.load(ORD_LOAD));
            for l in [f0, f1] {
                let v = l.node();
                {
                    let mut guard = self.fanouts[v.index()].write();
                    let pos = guard
                        .iter()
                        .position(|&x| x == n)
                        .expect("fanout lists out of sync");
                    guard.swap_remove(pos);
                }
                let prev = self.nodes[v.index()].refs.fetch_sub(1, Ordering::AcqRel);
                if prev == 1 && self.kind(v) == NodeKind::And {
                    stack.push(v);
                } else if let Some(b) = boundary.as_deref_mut() {
                    b.push(v);
                }
            }
            node.kind.store(NodeKind::Free.to_u8(), ORD_STORE);
            node.gen.fetch_add(1, Ordering::AcqRel);
            self.num_ands.fetch_sub(1, Ordering::AcqRel);
            self.free.lock().push(n);
        }
    }

    /// Restores strash canonicity by folding/merging every queued node, with
    /// full cascading. **Must be called from a single thread while no
    /// parallel operators are running** (the engines call it between level
    /// worklists). Returns the number of nodes eliminated.
    pub fn canonicalize(&self) -> usize {
        self.canonicalize_inner(None)
    }

    /// Like [`ConcurrentAig::canonicalize`], but records into `touched`
    /// every node whose cached cut or cost picture may have changed: each
    /// processed pending node, each merge target (its fanout set grew), and
    /// the surviving boundary fanins of any cone deleted by a merge.
    /// Entries may repeat, and some may be dead by the time this returns.
    pub fn canonicalize_traced(&self, touched: &mut Vec<NodeId>) -> usize {
        self.canonicalize_inner(Some(touched))
    }

    fn canonicalize_inner(&self, mut touched: Option<&mut Vec<NodeId>>) -> usize {
        let before = self.num_ands();
        loop {
            let batch: Vec<NodeId> = std::mem::take(&mut *self.pending.lock());
            if batch.is_empty() {
                break;
            }
            for f in batch {
                self.nodes[f.index()].flags.fetch_and(!1, Ordering::AcqRel);
                if self.kind(f) != NodeKind::And {
                    continue;
                }
                if let Some(t) = touched.as_deref_mut() {
                    t.push(f);
                }
                let a = Lit::from_raw(self.nodes[f.index()].fanin0.load(ORD_LOAD));
                let b = Lit::from_raw(self.nodes[f.index()].fanin1.load(ORD_LOAD));
                let target = if let Some(t) = Aig::fold_and(a, b) {
                    Some(t)
                } else {
                    self.find_and_excluding(a, b, f).map(NodeId::lit)
                };
                if let Some(t) = target {
                    if let Some(log) = touched.as_deref_mut() {
                        log.push(t.node());
                    }
                    self.nodes[t.node().index()]
                        .refs
                        .fetch_add(1, Ordering::AcqRel);
                    self.move_fanout_edges(f, t);
                    debug_assert_eq!(self.nodes[f.index()].refs.load(ORD_LOAD), 0);
                    self.delete_cone_inner(f, touched.as_deref_mut());
                    self.nodes[t.node().index()]
                        .refs
                        .fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
        before - self.num_ands()
    }

    /// Number of nodes currently queued for canonicalization.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Recomputes every level from scratch. Call from a single thread at a
    /// synchronization point.
    pub fn recompute_levels(&self) {
        for n in crate::topo::topo_ands(self) {
            let [a, b] = self.fanins(n);
            let level = 1 + self.level(a.node()).max(self.level(b.node()));
            self.nodes[n.index()].level.store(level, Ordering::Relaxed);
        }
    }

    /// Removes every dangling AND node. Call from a single thread.
    pub fn cleanup(&self) -> usize {
        self.cleanup_inner(None)
    }

    /// Like [`ConcurrentAig::cleanup`], but records the surviving boundary
    /// fanins of every deleted cone into `boundary` (see
    /// [`ConcurrentAig::delete_cone_logged`]).
    pub fn cleanup_traced(&self, boundary: &mut Vec<NodeId>) -> usize {
        self.cleanup_inner(Some(boundary))
    }

    fn cleanup_inner(&self, mut boundary: Option<&mut Vec<NodeId>>) -> usize {
        let before = self.num_ands();
        for i in 0..self.capacity() {
            let n = NodeId::new(i as u32);
            if self.kind(n) == NodeKind::And && self.refs(n) == 0 {
                self.delete_cone_inner(n, boundary.as_deref_mut());
            }
        }
        before - self.num_ands()
    }

    /// Verifies the structural invariants via conversion: the compact
    /// serial copy must pass [`Aig::check`], and the bookkeeping counters
    /// must be internally consistent.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::InvariantViolation`] on the first mismatch.
    pub fn check(&self) -> Result<(), AigError> {
        let mut refs = vec![0u32; self.capacity()];
        for i in 0..self.capacity() {
            let n = NodeId::new(i as u32);
            if self.kind(n) != NodeKind::And {
                continue;
            }
            for l in self.fanins(n) {
                if !self.is_alive(l.node()) {
                    return Err(AigError::InvariantViolation(format!(
                        "{n:?} has dead fanin {l:?}"
                    )));
                }
                refs[l.node().index()] += 1;
            }
        }
        for po in self.output_lits() {
            refs[po.node().index()] += 1;
        }
        for (i, &want) in refs.iter().enumerate() {
            let n = NodeId::new(i as u32);
            if self.is_alive(n) && self.refs(n) != want {
                return Err(AigError::InvariantViolation(format!(
                    "{n:?}: stored refs {} recomputed {want}",
                    self.refs(n),
                )));
            }
        }
        self.to_aig().check()
    }
}

impl AigRead for ConcurrentAig {
    fn slot_count(&self) -> usize {
        self.nodes.len()
    }

    fn kind(&self, n: NodeId) -> NodeKind {
        NodeKind::from_u8(self.nodes[n.index()].kind.load(ORD_LOAD))
    }

    fn fanins(&self, n: NodeId) -> [Lit; 2] {
        let node = &self.nodes[n.index()];
        [
            Lit::from_raw(node.fanin0.load(ORD_LOAD)),
            Lit::from_raw(node.fanin1.load(ORD_LOAD)),
        ]
    }

    fn refs(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].refs.load(ORD_LOAD)
    }

    fn generation(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].gen.load(ORD_LOAD)
    }

    fn level(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].level.load(ORD_LOAD)
    }

    fn find_and(&self, f0: Lit, f1: Lit) -> Option<NodeId> {
        self.find_and_excluding(f0, f1, NodeId::CONST0)
    }

    fn input_ids(&self) -> Vec<NodeId> {
        self.inputs.clone()
    }

    fn output_lits(&self) -> Vec<Lit> {
        self.outputs.lock().clone()
    }

    fn num_ands(&self) -> usize {
        self.num_ands.load(ORD_LOAD)
    }

    fn fanout_ids(&self, n: NodeId) -> Vec<NodeId> {
        self.fanouts[n.index()].read().clone()
    }
}

impl std::fmt::Debug for ConcurrentAig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentAig")
            .field("capacity", &self.capacity())
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.lock().len())
            .field("num_ands", &self.num_ands())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Aig, Lit, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let x = aig.add_xor(a, b);
        let m = aig.add_mux(c, x, a);
        aig.add_output(m);
        (aig, a, b, c)
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let (aig, ..) = sample();
        let shared = ConcurrentAig::from_aig(&aig, 1.5).unwrap();
        shared.check().unwrap();
        let back = shared.to_aig();
        back.check().unwrap();
        assert_eq!(back.num_ands(), aig.num_ands());
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
    }

    #[test]
    fn decentralized_lookup_matches_serial() {
        let (aig, ..) = sample();
        let shared = ConcurrentAig::from_aig(&aig, 1.5).unwrap();
        for i in 0..shared.capacity() {
            let n = NodeId::new(i as u32);
            if shared.kind(n) == NodeKind::And {
                let [a, b] = shared.fanins(n);
                assert_eq!(shared.find_and(a, b), Some(n));
                assert_eq!(shared.find_and(b, a), Some(n));
            }
        }
    }

    #[test]
    fn add_and_locked_reuses_and_creates() {
        let (aig, ..) = sample();
        let shared = ConcurrentAig::from_aig(&aig, 2.0).unwrap();
        let ins = shared.input_ids();
        let (a, b) = (ins[0].lit(), ins[1].lit());
        let before = shared.num_ands();
        // AND(a, b) exists inside the XOR already? Not directly: XOR is built
        // from AND(a,!b), AND(!a,b) — so AND(a,b) is new.
        let fresh = shared.add_and_locked(a, b).unwrap();
        assert_eq!(shared.num_ands(), before + 1);
        let again = shared.add_and_locked(b, a).unwrap();
        assert_eq!(fresh, again);
        assert_eq!(shared.num_ands(), before + 1);
        assert_eq!(shared.add_and_locked(a, Lit::TRUE).unwrap(), a);
    }

    #[test]
    fn replace_locked_moves_fanouts_and_canonicalize_merges() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ac = aig.add_and(a, c);
        let bc = aig.add_and(b, c);
        let top = aig.add_and(ac, bc);
        aig.add_output(top);
        let shared = ConcurrentAig::from_aig(&aig, 2.0).unwrap();

        // Find the concurrent ids of ac/bc via lookup.
        let ins = shared.input_ids();
        let (ca, cb, cc) = (ins[0].lit(), ins[1].lit(), ins[2].lit());
        let sac = shared.find_and(ca, cc).unwrap();
        let sbc = shared.find_and(cb, cc).unwrap();

        // Replace bc by ac: the top AND folds to ac, PO must follow.
        shared.replace_locked(sbc, sac.lit());
        assert!(shared.pending_len() > 0);
        let merged = shared.canonicalize();
        assert!(merged >= 1);
        shared.check().unwrap();
        assert_eq!(shared.num_ands(), 1);
        assert_eq!(shared.output_lits()[0], sac.lit());
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        let shared = ConcurrentAig::from_aig(&aig, 2.0).unwrap();
        let ins = shared.input_ids();
        let sab = shared.find_and(ins[0].lit(), ins[1].lit()).unwrap();
        let gen0 = shared.generation(sab);
        shared.replace_locked(sab, ins[0].lit());
        assert!(!shared.is_alive(sab));
        assert!(shared.generation(sab) > gen0);
        // The freed slot is recycled by the next allocation (LIFO free list),
        // reproducing the ID-reuse hazard of the paper's Fig. 3.
        let fresh = shared.add_and_locked(!ins[0].lit(), ins[1].lit()).unwrap();
        assert_eq!(fresh.node(), sab);
        assert!(shared.generation(sab) > gen0);
        shared.canonicalize();
        shared.cleanup();
        shared.check().unwrap();
    }

    #[test]
    fn resync_reuses_allocation_and_matches_from_aig() {
        let (aig, ..) = sample();
        let mut shared = ConcurrentAig::from_aig(&aig, 2.0).unwrap();
        let cap = shared.capacity();

        // Mutate the arena so stale state would show through a sloppy reset.
        let ins = shared.input_ids();
        let fresh = shared.add_and_locked(ins[0].lit(), ins[1].lit()).unwrap();
        let stale_gen = shared.generation(fresh.node());

        // Re-sync from a *different* (smaller) graph that fits in place.
        let mut small = Aig::new();
        let a = small.add_input();
        let b = small.add_input();
        let ab = small.add_and(a, b);
        small.add_output(!ab);
        shared.resync_from(&small, 2.0).unwrap();

        assert_eq!(shared.capacity(), cap, "allocation must be reused");
        shared.check().unwrap();
        let back = shared.to_aig();
        back.check().unwrap();
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_ands(), 1);
        assert_eq!(back.num_outputs(), 1);
        // Generations were bumped, not reset: any entry recorded against the
        // previous occupant of a recycled slot can never validate again.
        assert!(shared.generation(fresh.node()) > stale_gen);
    }

    #[test]
    fn resync_grows_when_capacity_is_exceeded() {
        let mut tiny = Aig::new();
        let a = tiny.add_input();
        let b = tiny.add_input();
        let tab = tiny.add_and(a, b);
        tiny.add_output(tab);
        let mut shared = ConcurrentAig::from_aig(&tiny, 1.0).unwrap();
        let cap = shared.capacity();

        let mut big = Aig::new();
        let mut lit = big.add_input();
        for _ in 0..(cap + 8) {
            let other = big.add_input();
            lit = big.add_and(lit, other);
        }
        big.add_output(lit);
        shared.resync_from(&big, 1.5).unwrap();
        assert!(shared.capacity() > cap);
        shared.check().unwrap();
        assert_eq!(shared.num_ands(), big.num_ands());
    }

    #[test]
    fn canonicalize_traced_reports_merge_sites() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ac = aig.add_and(a, c);
        let bc = aig.add_and(b, c);
        let top = aig.add_and(ac, bc);
        aig.add_output(top);
        let shared = ConcurrentAig::from_aig(&aig, 2.0).unwrap();
        let ins = shared.input_ids();
        let (ca, cb, cc) = (ins[0].lit(), ins[1].lit(), ins[2].lit());
        let sac = shared.find_and(ca, cc).unwrap();
        let sbc = shared.find_and(cb, cc).unwrap();
        let stop = shared.find_and(sac.lit(), sbc.lit()).unwrap();

        shared.replace_locked(sbc, sac.lit());
        let mut touched = Vec::new();
        let merged = shared.canonicalize_traced(&mut touched);
        assert!(merged >= 1);
        shared.check().unwrap();
        // The queued fanout (top) was processed, and its merge target (ac)
        // absorbed the fanout edges — both must be reported.
        assert!(touched.contains(&stop));
        assert!(touched.contains(&sac));
    }

    #[test]
    fn cleanup_traced_reports_cone_boundary() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let _abc = aig.add_and(ab, c); // dangling: only ab is an output
        aig.add_output(ab);
        let shared = ConcurrentAig::from_aig(&aig, 2.0).unwrap();
        let ins = shared.input_ids();
        let sab = shared.find_and(ins[0].lit(), ins[1].lit()).unwrap();
        let sabc = shared.find_and(sab.lit(), ins[2].lit()).unwrap();
        assert_eq!(shared.refs(sabc), 0);

        // Deleting the dangling abc leaves ab (still a PO driver) and input
        // c on the cone's boundary — their refs drop but they survive.
        let mut boundary = Vec::new();
        let removed = shared.cleanup_traced(&mut boundary);
        assert_eq!(removed, 1);
        assert!(!shared.is_alive(sabc));
        assert!(shared.is_alive(sab));
        assert!(boundary.contains(&sab));
        assert!(boundary.contains(&ins[2]));
        shared.check().unwrap();
    }

    #[test]
    fn capacity_exhaustion_is_reported() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        let shared = ConcurrentAig::from_aig(&aig, 1.0).unwrap();
        let ins = shared.input_ids();
        // Fill the tiny headroom until exhaustion.
        let mut lit = ins[0].lit();
        let mut saw_exhaustion = false;
        for i in 0..200u32 {
            let other = if i % 2 == 0 {
                ins[1].lit()
            } else {
                !ins[1].lit()
            };
            match shared.add_and_locked(lit, other) {
                Ok(l) => lit = l,
                Err(AigError::CapacityExhausted { .. }) => {
                    saw_exhaustion = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_exhaustion);
    }

    #[test]
    fn bad_headroom_is_an_error_not_a_panic() {
        let (aig, ..) = sample();
        for bad in [0.0, 0.99, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    ConcurrentAig::from_aig(&aig, bad),
                    Err(AigError::InvalidHeadroom { .. })
                ),
                "headroom {bad} must be rejected"
            );
        }
        let mut shared = ConcurrentAig::from_aig(&aig, 1.5).unwrap();
        let cap = shared.capacity();
        assert!(matches!(
            shared.resync_from(&aig, f64::NAN),
            Err(AigError::InvalidHeadroom { .. })
        ));
        // The failed resync must leave the arena untouched.
        assert_eq!(shared.capacity(), cap);
        shared.check().unwrap();
    }

    #[test]
    fn scale_capacity_uses_checked_integer_math() {
        // headroom = 1.0 reserves the live count plus flat slack.
        assert_eq!(ConcurrentAig::scale_capacity(1000, 1.0).unwrap(), 1064);
        // The quantized factor rounds up, never down.
        assert!(ConcurrentAig::scale_capacity(1000, 1.5).unwrap() >= 1564);
        // Values that would wrap the old `f64 as usize` cast now error.
        assert!(matches!(
            ConcurrentAig::scale_capacity(usize::MAX / 2, 2.0),
            Err(AigError::CapacityOverflow { .. })
        ));
        assert!(matches!(
            ConcurrentAig::scale_capacity(1 << 40, 1e300),
            Err(AigError::CapacityOverflow { .. })
        ));
        // Anything past the packed-literal id space is refused even when
        // the multiplication itself does not overflow.
        assert!(matches!(
            ConcurrentAig::scale_capacity((u32::MAX >> 1) as usize, 1.5),
            Err(AigError::CapacityOverflow { .. })
        ));
    }

    #[test]
    fn injected_alloc_fault_reports_exhaustion() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        let shared = ConcurrentAig::from_aig(&aig, 4.0).unwrap();
        let ins = shared.input_ids();
        // A pair that is neither foldable nor already strashed, so the
        // lookup falls through to the allocator.
        let fresh = (ins[0].lit(), !ins[1].lit());
        let plan = dacpara_fault::FaultPlan::parse("arena.alloc=@1", 0).unwrap();
        {
            let _inj = dacpara_fault::inject(&plan);
            assert!(matches!(
                shared.add_and_locked(fresh.0, fresh.1),
                Err(AigError::CapacityExhausted { .. })
            ));
        }
        // Disarmed, the same call succeeds: the arena was not corrupted.
        shared.add_and_locked(fresh.0, fresh.1).unwrap();
        shared.check().unwrap();
    }
}
