use crate::{Lit, NodeId, NodeKind};

/// Read-only view of an AIG, implemented by both [`crate::Aig`] and
/// [`crate::concurrent::ConcurrentAig`].
///
/// Cut enumeration, MFFC computation and rewriting evaluation are written
/// against this trait once and reused by the serial and parallel engines.
/// On the concurrent implementation every method is a lock-free snapshot
/// read; callers that need consistency across several reads must either hold
/// the Galois-style node locks or re-validate with [`AigRead::generation`].
pub trait AigRead: Sync {
    /// Number of node slots (live or free); node indices are `< slot_count`.
    fn slot_count(&self) -> usize;

    /// Kind of the slot (Free for recycled/deleted slots).
    fn kind(&self, n: NodeId) -> NodeKind;

    /// Fanin literals of an AND node.
    ///
    /// # Panics
    ///
    /// May panic (or return stale data on the concurrent variant) if `n` is
    /// not a live AND node.
    fn fanins(&self, n: NodeId) -> [Lit; 2];

    /// Reference count: fanout ANDs plus primary-output edges.
    fn refs(&self, n: NodeId) -> u32;

    /// Generation stamp of the slot; changes whenever the slot is recycled
    /// or the node's fanins are rewritten.
    fn generation(&self, n: NodeId) -> u32;

    /// Logic depth of the node. May be stale on the concurrent variant while
    /// a rewriting pass is running; passes recompute levels when they finish.
    fn level(&self, n: NodeId) -> u32;

    /// Structural-hash lookup: the live AND node with exactly the fanin pair
    /// `(f0, f1)` (order-insensitive), if one exists.
    ///
    /// On [`crate::Aig`] this is a global hash-table probe; on the concurrent
    /// variant it is the decentralized fanout-scan lookup from the ICCAD'18
    /// scheme (scan the fanout list of one fanin).
    fn find_and(&self, f0: Lit, f1: Lit) -> Option<NodeId>;

    /// Primary inputs in creation order.
    fn input_ids(&self) -> Vec<NodeId>;

    /// Snapshot of the primary output literals.
    fn output_lits(&self) -> Vec<Lit>;

    /// Number of live AND nodes ("area" in the paper's tables).
    fn num_ands(&self) -> usize;

    /// Whether the slot currently holds a live node.
    #[inline]
    fn is_alive(&self, n: NodeId) -> bool {
        self.kind(n).is_alive()
    }

    /// Whether the node is a live AND gate.
    #[inline]
    fn is_and(&self, n: NodeId) -> bool {
        self.kind(n) == NodeKind::And
    }

    /// Snapshot of the fanout node ids of `n`.
    fn fanout_ids(&self, n: NodeId) -> Vec<NodeId>;

    /// Maximum level over the primary outputs ("delay" in the paper's
    /// tables). Implementations may recompute this from scratch.
    fn depth(&self) -> u32 {
        self.output_lits()
            .iter()
            .map(|l| self.level(l.node()))
            .max()
            .unwrap_or(0)
    }
}
