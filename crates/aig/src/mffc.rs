//! Maximum fanout-free cone (MFFC) computation via simulated dereferencing.
//!
//! The rewriting evaluation stage must know how many nodes disappear when a
//! root is replaced, *without mutating the shared graph* (the paper's
//! lock-free parallel evaluation creates thread-local copies of the MFFC
//! bookkeeping; see §4.3). [`simulate_deref`] runs the classic
//! deref/recursive-count on a thread-local scratch map of reference counts,
//! leaving the graph untouched and therefore safe to call concurrently.

use std::collections::HashMap;

use crate::{AigRead, NodeId, NodeKind};

/// Result of a simulated dereference of a cone.
#[derive(Debug, Clone, Default)]
pub struct ConeDeref {
    /// Nodes whose (simulated) reference count dropped to zero — the nodes
    /// that would be deleted if the root were replaced. Always contains the
    /// root itself first.
    pub freed: Vec<NodeId>,
}

impl ConeDeref {
    /// Number of AND nodes that would be removed ("nodes saved").
    pub fn saved(&self) -> usize {
        self.freed.len()
    }

    /// Whether `n` is among the would-be-deleted nodes.
    pub fn contains(&self, n: NodeId) -> bool {
        self.freed.contains(&n)
    }
}

/// Simulates removing `root` and recursively dereferencing its fanin cone,
/// stopping at nodes for which `is_leaf` returns true (and at non-AND
/// nodes). Returns the set of nodes that would become dangling.
///
/// The underlying graph is not modified; reference counts are copied into a
/// scratch map on first touch.
///
/// # Example
///
/// ```
/// use dacpara_aig::{Aig, mffc::simulate_deref};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let c = aig.add_input();
/// let ab = aig.add_and(a, b);
/// let abc = aig.add_and(ab, c);
/// aig.add_output(abc);
/// // Removing `abc` also frees `ab`, whose only fanout it is.
/// let cone = simulate_deref(&aig, abc.node(), |_| false);
/// assert_eq!(cone.saved(), 2);
/// ```
pub fn simulate_deref<V, F>(view: &V, root: NodeId, is_leaf: F) -> ConeDeref
where
    V: AigRead + ?Sized,
    F: Fn(NodeId) -> bool,
{
    debug_assert_eq!(view.kind(root), NodeKind::And);
    let mut local: HashMap<NodeId, u32> = HashMap::new();
    let mut freed = vec![root];
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        for l in view.fanins(n) {
            let v = l.node();
            if view.kind(v) != NodeKind::And || is_leaf(v) {
                continue;
            }
            let r = local.entry(v).or_insert_with(|| view.refs(v));
            debug_assert!(*r > 0, "cone node with zero refs");
            *r -= 1;
            if *r == 0 {
                freed.push(v);
                stack.push(v);
            }
        }
    }
    ConeDeref { freed }
}

/// The classic MFFC of `root` (boundary at primary inputs/constants only).
pub fn mffc<V: AigRead + ?Sized>(view: &V, root: NodeId) -> ConeDeref {
    simulate_deref(view, root, |_| false)
}

/// MFFC of `root` bounded by an explicit cut (`leaves`).
pub fn mffc_with_cut<V: AigRead + ?Sized>(view: &V, root: NodeId, leaves: &[NodeId]) -> ConeDeref {
    simulate_deref(view, root, |n| leaves.contains(&n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aig;

    #[test]
    fn shared_node_not_in_mffc() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let abc = aig.add_and(ab, c);
        let other = aig.add_and(ab, !c); // shares `ab`
        aig.add_output(abc);
        aig.add_output(other);
        let cone = mffc(&aig, abc.node());
        assert_eq!(cone.saved(), 1); // `ab` survives via `other`
        assert!(cone.contains(abc.node()));
        assert!(!cone.contains(ab.node()));
    }

    #[test]
    fn cut_boundary_stops_deref() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let abc = aig.add_and(ab, c);
        aig.add_output(abc);
        let full = mffc(&aig, abc.node());
        assert_eq!(full.saved(), 2);
        let bounded = mffc_with_cut(&aig, abc.node(), &[ab.node(), c.node()]);
        assert_eq!(bounded.saved(), 1);
    }

    #[test]
    fn graph_is_unchanged() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        let refs_before: Vec<u32> = (0..aig.slot_count() as u32)
            .map(|i| crate::AigRead::refs(&aig, crate::NodeId::new(i)))
            .collect();
        let _ = mffc(&aig, ab.node());
        let refs_after: Vec<u32> = (0..aig.slot_count() as u32)
            .map(|i| crate::AigRead::refs(&aig, crate::NodeId::new(i)))
            .collect();
        assert_eq!(refs_before, refs_after);
    }
}
