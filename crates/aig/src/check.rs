//! Structural invariant checker for [`Aig`].

use std::collections::HashMap;

use crate::{Aig, AigError, AigRead, NodeId, NodeKind};

impl Aig {
    /// Verifies every structural invariant of the graph:
    ///
    /// * node 0 is the constant, inputs are live `Input` slots;
    /// * every AND has sorted fanins pointing at distinct, live, non-constant
    ///   nodes (strash canonicity);
    /// * the structural hash table contains exactly the live ANDs;
    /// * reference counts equal fanout-list lengths plus output references,
    ///   and fanout lists mirror fanin edges;
    /// * levels satisfy `level = 1 + max(fanin levels)`;
    /// * the graph is acyclic;
    /// * every output literal points at a live node.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::InvariantViolation`] describing the first
    /// violation found.
    pub fn check(&self) -> Result<(), AigError> {
        let fail = |msg: String| Err(AigError::InvariantViolation(msg));

        if self.kind(NodeId::CONST0) != NodeKind::Const0 {
            return fail("node 0 is not the constant".into());
        }
        for &i in self.inputs() {
            if self.kind(i) != NodeKind::Input {
                return fail(format!("input list entry {i:?} is not an Input node"));
            }
        }

        // Recompute refs/po_refs/fanouts from scratch.
        let slots = self.slot_count();
        let mut refs = vec![0u32; slots];
        let mut po_refs = vec![0u32; slots];
        let mut fanout_edges: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        let mut live_ands = 0usize;

        for i in 0..slots {
            let n = NodeId::new(i as u32);
            if self.kind(n) != NodeKind::And {
                continue;
            }
            live_ands += 1;
            let [a, b] = self.fanins(n);
            if a > b {
                return fail(format!("{n:?}: fanins not sorted ({a:?}, {b:?})"));
            }
            if a.is_const() || b.is_const() {
                return fail(format!("{n:?}: constant fanin"));
            }
            if a.node() == b.node() {
                return fail(format!("{n:?}: duplicate fanin node"));
            }
            for l in [a, b] {
                if !self.is_alive(l.node()) {
                    return fail(format!("{n:?}: dead fanin {l:?}"));
                }
                refs[l.node().index()] += 1;
                *fanout_edges.entry((l.node(), n)).or_insert(0) += 1;
            }
            let want = 1 + self.level(a.node()).max(self.level(b.node()));
            if self.level(n) != want {
                return fail(format!(
                    "{n:?}: level {} but fanins imply {want}",
                    self.level(n)
                ));
            }
            match self.find_and(a, b) {
                Some(owner) if owner == n => {}
                Some(owner) => {
                    return fail(format!("{n:?}: strash entry owned by {owner:?}"));
                }
                None => return fail(format!("{n:?}: missing from strash")),
            }
        }

        if self.strash_map().len() != live_ands {
            return fail(format!(
                "strash has {} entries but {live_ands} live ANDs",
                self.strash_map().len()
            ));
        }

        for &po in self.outputs() {
            if !self.is_alive(po.node()) {
                return fail(format!("output {po:?} points at a dead node"));
            }
            refs[po.node().index()] += 1;
            po_refs[po.node().index()] += 1;
        }

        for i in 0..slots {
            let n = NodeId::new(i as u32);
            if !self.is_alive(n) {
                if !self.fanouts(n).is_empty() {
                    return fail(format!("dead slot {n:?} has fanouts"));
                }
                continue;
            }
            let node = self.node(n);
            if node.refs != refs[i] {
                return fail(format!(
                    "{n:?}: stored refs {} but recomputed {}",
                    node.refs, refs[i]
                ));
            }
            if node.po_refs != po_refs[i] {
                return fail(format!(
                    "{n:?}: stored po_refs {} but recomputed {}",
                    node.po_refs, po_refs[i]
                ));
            }
            // Fanout list must mirror fanin edges with multiplicity.
            let mut counted: HashMap<NodeId, u32> = HashMap::new();
            for &f in self.fanouts(n) {
                *counted.entry(f).or_insert(0) += 1;
            }
            for (f, c) in &counted {
                if fanout_edges.get(&(n, *f)).copied().unwrap_or(0) != *c {
                    return fail(format!("{n:?}: fanout list entry {f:?} not a fanin edge"));
                }
            }
            let edge_total: u32 = fanout_edges
                .iter()
                .filter(|((src, _), _)| *src == n)
                .map(|(_, c)| *c)
                .sum();
            if edge_total != self.fanouts(n).len() as u32 {
                return fail(format!(
                    "{n:?}: {} fanout entries but {edge_total} fanin edges",
                    self.fanouts(n).len()
                ));
            }
        }

        // Acyclicity: DFS with colors.
        let mut color = vec![0u8; slots]; // 0 white, 1 grey, 2 black
        for i in 0..slots {
            let root = NodeId::new(i as u32);
            if self.kind(root) != NodeKind::And || color[i] != 0 {
                continue;
            }
            let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
            while let Some((n, done)) = stack.pop() {
                if done {
                    color[n.index()] = 2;
                    continue;
                }
                match color[n.index()] {
                    1 => return fail(format!("cycle through {n:?}")),
                    2 => continue,
                    _ => {}
                }
                color[n.index()] = 1;
                stack.push((n, true));
                for l in self.fanins(n) {
                    let v = l.node();
                    if self.kind(v) == NodeKind::And {
                        match color[v.index()] {
                            0 => stack.push((v, false)),
                            1 => return fail(format!("cycle through {v:?}")),
                            _ => {}
                        }
                    }
                }
            }
        }

        Ok(())
    }
}

/// Checks two views for identical I/O shape (same number of inputs and
/// outputs) — a precondition for equivalence checking.
pub fn same_interface<A: AigRead + ?Sized, B: AigRead + ?Sized>(a: &A, b: &B) -> bool {
    a.input_ids().len() == b.input_ids().len() && a.output_lits().len() == b.output_lits().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    #[test]
    fn fresh_graph_checks() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        aig.check().unwrap();
    }

    #[test]
    fn check_after_heavy_rewriting() {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..8).map(|_| aig.add_input()).collect();
        let mut acc = Lit::TRUE;
        for w in ins.windows(2) {
            let x = aig.add_xor(w[0], w[1]);
            acc = aig.add_and(acc, x);
        }
        aig.add_output(acc);
        aig.check().unwrap();
        // Replace a mid node by a constant and re-check.
        let victim = aig.and_ids().nth(3).unwrap();
        aig.replace(victim, Lit::TRUE);
        aig.cleanup();
        aig.check().unwrap();
    }

    #[test]
    fn same_interface_detects_shape() {
        let mut a = Aig::new();
        let x = a.add_input();
        a.add_output(x);
        let mut b = Aig::new();
        let y = b.add_input();
        b.add_output(!y);
        assert!(same_interface(&a, &b));
        b.add_output(y);
        assert!(!same_interface(&a, &b));
    }
}
