//! Long-lived rewriting state for incremental multi-pass flows.
//!
//! Logic rewriting is locally optimal, so real flows apply it many times
//! (§1 of the paper). The one-shot engine entry points rebuild every piece
//! of pass state — the [`ConcurrentAig`] arena, the [`CutStore`] memo, the
//! [`LockTable`], the per-slot candidate storage — on every call, and every
//! later pass re-enumerates and re-evaluates the whole graph even when the
//! previous pass changed a small fraction of it.
//!
//! [`RewriteSession`] owns that state for the lifetime of a flow:
//!
//! * Allocation happens once. The `Aig ↔ ConcurrentAig` round-trip moves to
//!   the session boundaries ([`RewriteSession::new`] /
//!   [`RewriteSession::finish`]); `cfg.runs` iterations inside one
//!   [`RewriteSession::run`] call and successive `run` calls all reuse the
//!   same arena, memo, locks and candidate vector.
//! * A **dirty-set** makes later passes incremental. Seeded from §4.4's
//!   recursive invalidation (every memo invalidation marks its node dirty)
//!   plus gain-only marking — committed replacements mark the transitive
//!   fanout of their cut leaves, canonicalization and cleanup mark the
//!   nodes whose reference counts or fanout sets they touch — the set
//!   conservatively over-approximates the nodes whose cuts *or* MFFC could
//!   have changed. A pass drains it and visits only those nodes, in
//!   topological order; everything else is reported as
//!   [`RewriteStats::clean_skipped`] (obs counter `session.clean_skipped`).
//! * An empty dirty set is a **fixpoint**: `run` returns immediately with
//!   zero [`RewriteStats::evaluations`] — the evaluate stage never runs.
//!
//! The two engines that operate on shared state — [`Engine::DacPara`] and
//! [`Engine::Iccad18`] — run *resident* on the session. The other four are
//! still accepted: the session extracts the serial graph, runs them, and
//! re-syncs (losing incrementality for that pass, keeping allocations).

use dacpara_aig::concurrent::ConcurrentAig;
use dacpara_aig::{Aig, AigError, AigRead, NodeId};
use dacpara_cut::CutStore;
use dacpara_equiv::{check_equivalence, CecConfig, CecResult};
use dacpara_galois::LockTable;
use parking_lot::Mutex;

use crate::eval::{Candidate, EvalContext};
use crate::pass::Engine;
use crate::{
    rewrite_partition, rewrite_serial, rewrite_static, RewriteConfig, RewriteStats, StaticMode,
};

/// Reusable state for incremental multi-pass rewriting.
///
/// # Example
///
/// ```
/// use dacpara::{Engine, RewriteConfig, RewriteSession};
/// use dacpara_circuits::control;
///
/// let aig = control::voter(15);
/// let cfg = RewriteConfig::rewrite_op().with_threads(2);
/// let mut session = RewriteSession::new(&aig, &cfg)?;
/// let first = session.run(Engine::DacPara)?;
/// let second = session.run(Engine::DacPara)?; // incremental: dirty nodes only
/// assert!(second.area_after <= first.area_after);
/// let optimized = session.finish();
/// optimized.check()?;
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub struct RewriteSession {
    pub(crate) cfg: RewriteConfig,
    pub(crate) ctx: EvalContext,
    pub(crate) shared: ConcurrentAig,
    pub(crate) store: CutStore,
    pub(crate) locks: LockTable,
    pub(crate) prep: Vec<Mutex<Option<Candidate>>>,
    /// The next worklist must cover the whole graph (first pass, or first
    /// pass after a re-sync).
    fresh: bool,
    converged: bool,
    passes_run: usize,
    /// Serial snapshot known equivalent to the current graph (committed
    /// rewrites are equivalence-preserving, so it stays valid across
    /// passes; refreshed by [`RewriteSession::resync`] because external
    /// mutation carries no such guarantee). The panic-recovery path
    /// CEC-checks salvaged graphs against it before accepting them.
    golden: Aig,
    /// Effective arena headroom: starts at [`RewriteConfig::headroom`] and
    /// grows geometrically on each exhaustion recovery, persisting across
    /// passes so a session that needed headroom once keeps it.
    cur_headroom: f64,
    /// Exhaustion recoveries performed, bounded by
    /// [`RewriteConfig::max_regrowths`] over the session lifetime.
    regrowths: u64,
    /// Contained-panic recoveries performed, bounded by
    /// [`MAX_PANIC_RECOVERIES`] over the session lifetime.
    panic_recoveries: u64,
}

/// Headroom multiplier applied on each arena-exhaustion recovery.
const REGROWTH_FACTOR: f64 = 2.0;

/// Session-lifetime bound on contained-panic recoveries. A panic is a bug,
/// not an expected operating condition like exhaustion, so the bound is a
/// fixed backstop rather than a tunable: recover a few times to finish the
/// flow, but a persistently panicking operator must eventually surface as
/// [`AigError::WorkerPanicked`].
const MAX_PANIC_RECOVERIES: u64 = 4;

impl RewriteSession {
    /// Builds a session over a copy of `aig`, allocating the concurrent
    /// arena, cut memo, lock table and candidate storage once.
    ///
    /// # Errors
    ///
    /// Returns the [`crate::ConfigError`] mapped through [`AigError`] if
    /// `cfg` fails [`RewriteConfig::validate`].
    pub fn new(aig: &Aig, cfg: &RewriteConfig) -> Result<RewriteSession, AigError> {
        cfg.validate()?;
        let shared = ConcurrentAig::from_aig(aig, cfg.headroom)?;
        let store = CutStore::new(shared.capacity(), cfg.cut_config());
        store.set_dirty_tracking(true);
        let locks = LockTable::new(shared.capacity());
        let prep = (0..shared.capacity()).map(|_| Mutex::new(None)).collect();
        Ok(RewriteSession {
            ctx: EvalContext::new(cfg),
            cur_headroom: cfg.headroom,
            cfg: cfg.clone(),
            shared,
            store,
            locks,
            prep,
            fresh: true,
            converged: false,
            passes_run: 0,
            golden: aig.clone(),
            regrowths: 0,
            panic_recoveries: 0,
        })
    }

    /// Runs one engine pass (honouring [`RewriteConfig::runs`]) on the
    /// session state.
    ///
    /// [`Engine::DacPara`] and [`Engine::Iccad18`] run resident: the first
    /// pass processes every node, later passes only the dirty set, and a
    /// pass that finds the dirty set empty returns immediately without
    /// enumerating or evaluating anything. The remaining engines run on an
    /// extracted serial graph and re-sync the session afterwards.
    ///
    /// # Errors
    ///
    /// Propagates engine errors ([`AigError::CapacityExhausted`] when
    /// [`RewriteConfig::headroom`] proves insufficient).
    pub fn run(&mut self, engine: Engine) -> Result<RewriteStats, AigError> {
        let stats = match engine {
            Engine::DacPara => crate::dacpara_engine::session_pass(self)?,
            Engine::Iccad18 => crate::lockstep::session_pass(self)?,
            Engine::AbcRewrite | Engine::Dac22 | Engine::Tcad23 | Engine::Partition => {
                let mut aig = self.extract();
                let stats = match engine {
                    Engine::AbcRewrite => rewrite_serial(&mut aig, &self.cfg)?,
                    Engine::Dac22 => rewrite_static(&mut aig, &self.cfg, StaticMode::Conditional)?,
                    Engine::Tcad23 => {
                        rewrite_static(&mut aig, &self.cfg, StaticMode::Unconditional)?
                    }
                    Engine::Partition => rewrite_partition(&mut aig, &self.cfg)?,
                    Engine::Iccad18 | Engine::DacPara => unreachable!("resident engines"),
                };
                self.resync(&aig)?;
                self.converged = stats.area_reduction() == 0;
                stats
            }
        };
        self.passes_run += 1;
        Ok(stats)
    }

    /// Whether the session has reached a fixpoint: the last pass committed
    /// nothing and left no node dirty, so the next resident pass would
    /// return immediately.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of `run` calls completed so far.
    pub fn passes_run(&self) -> usize {
        self.passes_run
    }

    /// Number of nodes currently marked dirty (the next incremental pass's
    /// worklist bound).
    pub fn dirty_len(&self) -> usize {
        self.store.dirty_count()
    }

    /// A serial snapshot of the current graph (levels recomputed).
    pub fn extract(&self) -> Aig {
        let mut aig = self.shared.to_aig();
        aig.recompute_levels();
        aig
    }

    /// Consumes the session and returns the optimized graph.
    pub fn finish(self) -> Aig {
        self.extract()
    }

    /// Re-initializes the session from an externally mutated graph, reusing
    /// every allocation that is still large enough. The cut memo is reset
    /// (node ids were renumbered) and the next pass processes the whole
    /// graph again. The golden equivalence snapshot is refreshed: external
    /// mutation carries no equivalence guarantee.
    ///
    /// # Errors
    ///
    /// Propagates [`ConcurrentAig::resync_from`] sizing errors; the session
    /// keeps its previous graph on error.
    pub fn resync(&mut self, aig: &Aig) -> Result<(), AigError> {
        self.rehome(aig)?;
        self.golden = aig.clone();
        Ok(())
    }

    /// Re-homes the session onto `aig` at the current effective headroom
    /// without touching the golden snapshot (shared by [`RewriteSession::resync`]
    /// and the in-pass recovery paths, whose graphs are already known
    /// equivalent to it).
    fn rehome(&mut self, aig: &Aig) -> Result<(), AigError> {
        self.shared.resync_from(aig, self.cur_headroom)?;
        let cap = self.shared.capacity();
        self.store.grow(cap);
        self.store.reset();
        self.locks.ensure_capacity(cap);
        if self.prep.len() < cap {
            self.prep.resize_with(cap, || Mutex::new(None));
        }
        self.fresh = true;
        self.converged = false;
        Ok(())
    }

    /// Attempts in-pass recovery from `err`, salvaging every committed
    /// rewrite. On `Ok(())` the session has been re-homed onto the salvaged
    /// graph and the interrupted pass should redo its current run from a
    /// full worklist (resync renumbers nodes, so the pre-fault dirty set is
    /// not translatable — the full list is its superset). On `Err` the
    /// caller must propagate: the fault is either not recoverable, over its
    /// budget, or the salvaged graph failed validation.
    ///
    /// `newly_committed` is the number of replacements committed since the
    /// last salvage point; it feeds [`RewriteStats::salvaged_commits`].
    pub(crate) fn recover(
        &mut self,
        err: AigError,
        stats: &mut RewriteStats,
        newly_committed: u64,
    ) -> Result<(), AigError> {
        match err {
            AigError::CapacityExhausted { .. } => {
                if self.regrowths >= self.cfg.max_regrowths as u64 {
                    return Err(err);
                }
                // Commits are atomic under all-or-nothing locks, so after
                // the team drained, the shared graph is consistent — at
                // worst a failed replacement left a dangling (unreferenced)
                // cone behind. Restore canonicity, drop dangling cones, and
                // re-home into a geometrically larger arena.
                self.canonicalize_and_sweep(true);
                let salvaged = self.extract();
                self.cur_headroom *= REGROWTH_FACTOR;
                self.rehome(&salvaged)?;
                self.regrowths += 1;
                stats.regrowths += 1;
                if dacpara_obs::is_enabled() {
                    dacpara_obs::counter("session.regrowths").incr();
                }
                self.note_recovery(stats, newly_committed);
                Ok(())
            }
            AigError::WorkerPanicked { .. } => {
                if self.panic_recoveries >= MAX_PANIC_RECOVERIES {
                    return Err(err);
                }
                // A panic escaping an operator voids the locking-discipline
                // argument that exhaustion recovery leans on, so the
                // salvaged graph must prove itself: structural invariants
                // first, then equivalence against the golden snapshot.
                self.canonicalize_and_sweep(true);
                if self.shared.check().is_err() {
                    return Err(err);
                }
                let salvaged = self.extract();
                let cec = CecConfig {
                    sim_rounds: 32,
                    max_conflicts: 100_000,
                    seed: 0xFA17,
                };
                // `Undecided` passes: simulation found no difference and
                // the bounded SAT budget simply ran out — the same policy
                // the differential suites use for large graphs.
                if let CecResult::Inequivalent(_) = check_equivalence(&self.golden, &salvaged, &cec)
                {
                    return Err(err);
                }
                self.rehome(&salvaged)?;
                self.panic_recoveries += 1;
                self.note_recovery(stats, newly_committed);
                Ok(())
            }
            other => Err(other),
        }
    }

    /// Common bookkeeping for a successful recovery: stats fields plus the
    /// drift-checked `session.*` obs counters.
    fn note_recovery(&self, stats: &mut RewriteStats, newly_committed: u64) {
        stats.recoveries += 1;
        stats.salvaged_commits += newly_committed;
        if dacpara_obs::is_enabled() {
            dacpara_obs::counter("session.recoveries").incr();
            dacpara_obs::counter("session.salvaged_commits").add(newly_committed);
        }
    }

    /// The worklist for the next resident pass: every live AND node on a
    /// fresh graph, otherwise the dirty nodes (drained) in topological
    /// order. Also returns the number of live AND nodes skipped as clean,
    /// which feeds [`RewriteStats::clean_skipped`] and the
    /// `session.clean_skipped` obs counter.
    pub(crate) fn take_worklist(&mut self) -> (Vec<NodeId>, u64) {
        if self.fresh {
            self.fresh = false;
            // The flags seeded before the first pass (if any) are covered
            // by the full scan.
            let _ = self.store.drain_dirty();
            return (dacpara_aig::topo_ands(&self.shared), 0);
        }
        let dirty = self.store.drain_dirty();
        let mut is_dirty = vec![false; self.shared.capacity()];
        for n in &dirty {
            is_dirty[n.index()] = true;
        }
        let all = dacpara_aig::topo_ands(&self.shared);
        let total = all.len() as u64;
        let work: Vec<NodeId> = all.into_iter().filter(|n| is_dirty[n.index()]).collect();
        let skipped = total - work.len() as u64;
        if dacpara_obs::is_enabled() {
            dacpara_obs::counter("session.clean_skipped").add(skipped);
        }
        (work, skipped)
    }

    /// Record the verdict of a finished resident pass.
    pub(crate) fn set_converged(&mut self, converged: bool) {
        self.converged = converged;
    }

    /// Single-threaded synchronization-point maintenance shared by the
    /// resident engines: restore strash canonicity, delete dangling cones,
    /// and translate everything either step touched into memo invalidation
    /// + dirty marks so the next pass revisits the affected region.
    pub(crate) fn canonicalize_and_sweep(&self, cleanup: bool) {
        let mut touched = Vec::new();
        self.shared.canonicalize_traced(&mut touched);
        if cleanup {
            // Boundary fanins of deleted cones: structure unchanged, but
            // their reference counts (MFFC picture) shifted.
            let mut boundary = Vec::new();
            self.shared.cleanup_traced(&mut boundary);
            for b in boundary {
                if self.shared.is_alive(b) {
                    self.store.mark_dirty_tfo(&self.shared, b);
                }
            }
        }
        for x in touched {
            if self.shared.is_alive(x) {
                // Merged/refanned nodes: entries downstream may be
                // generation-fresh yet content-stale, so clear them.
                self.store.invalidate_tfo(&self.shared, x);
            } else {
                self.store.invalidate(x);
            }
        }
    }
}

impl std::fmt::Debug for RewriteSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewriteSession")
            .field("capacity", &self.shared.capacity())
            .field("num_ands", &self.shared.num_ands())
            .field("dirty", &self.store.dirty_count())
            .field("passes_run", &self.passes_run)
            .field("converged", &self.converged)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::{arith, control};

    fn cfg() -> RewriteConfig {
        RewriteConfig {
            num_classes: 222,
            threads: 2,
            ..RewriteConfig::rewrite_op()
        }
    }

    #[test]
    fn new_rejects_invalid_config() {
        let aig = control::voter(11);
        let bad = RewriteConfig {
            threads: 0,
            ..cfg()
        };
        assert!(RewriteSession::new(&aig, &bad).is_err());
    }

    #[test]
    fn fixpoint_pass_returns_without_evaluating() {
        let aig = arith::adder(8);
        let mut sess = RewriteSession::new(&aig, &cfg()).unwrap();
        let mut last = sess.run(Engine::DacPara).unwrap();
        for _ in 0..6 {
            if sess.converged() {
                break;
            }
            last = sess.run(Engine::DacPara).unwrap();
        }
        assert!(sess.converged(), "adder converges quickly: {last}");
        let fix = sess.run(Engine::DacPara).unwrap();
        assert_eq!(fix.evaluations, 0, "converged pass must skip evaluation");
        assert_eq!(fix.replacements, 0);
        assert_eq!(fix.area_reduction(), 0);
    }

    #[test]
    fn non_resident_engines_round_trip_through_the_session() {
        let aig = control::voter(15);
        let mut sess = RewriteSession::new(&aig, &cfg()).unwrap();
        let s1 = sess.run(Engine::AbcRewrite).unwrap();
        assert!(s1.area_reduction() > 0);
        let s2 = sess.run(Engine::DacPara).unwrap();
        assert!(s2.area_after <= s1.area_after);
        let out = sess.finish();
        out.check().unwrap();
        assert_eq!(out.num_ands(), s2.area_after);
    }

    #[test]
    fn resync_resets_incrementality() {
        let aig = control::voter(15);
        let mut sess = RewriteSession::new(&aig, &cfg()).unwrap();
        sess.run(Engine::DacPara).unwrap();
        let snapshot = sess.extract();
        sess.resync(&snapshot).unwrap();
        // After a resync the next pass is a full pass again.
        let stats = sess.run(Engine::DacPara).unwrap();
        assert_eq!(stats.clean_skipped, 0);
    }
}
