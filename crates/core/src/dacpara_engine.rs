//! DACPara: divide-and-conquer parallel logic rewriting (the paper's
//! Algorithm 1 and §§4.2–4.4).
//!
//! The pass divides the AND nodes by their initial level into `Worklists`
//! and processes each list in three barrier-separated parallel stages:
//!
//! 1. **Parallel cut enumeration** (§4.2) — fills the shared cut memo
//!    bottom-up; the memo's generation tags take the place of the paper's
//!    enumeration locks (conflicts there are "almost negligible").
//! 2. **Parallel evaluation** (§4.3) — completely lock-free: each worker
//!    evaluates nodes against thread-local MFFC scratch and the
//!    decentralized structural hash, storing the best result in `prepInfo`.
//! 3. **Parallel replacement** (§4.4) — based on *dynamic global
//!    information*: each stored result is validated against the latest
//!    graph (leaf liveness + generation stamps, re-enumeration with
//!    leaf-set matching, NPN-class checking for recycled IDs — the Fig. 3
//!    protocol), re-evaluated so that "each replacement must obtain a
//!    positive gain on the latest AIG", and only then applied under
//!    Galois-style exclusive locks on the relevant nodes. Enumeration
//!    results of deleted nodes' transitive fanouts are recursively cleared.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dacpara_aig::concurrent::ConcurrentAig;
use dacpara_aig::{Aig, AigError, AigRead, NodeId};
use dacpara_cut::CutStore;
use dacpara_galois::{
    chunk_size, run_spmd, ItemOutcome, LockTable, SpecStats, StealPool, WorkQueue,
    MAX_SCHED_RETRIES,
};
use dacpara_npn::canon;
use parking_lot::Mutex;

use crate::eval::{build_replacement, evaluate_node, reevaluate_structure, Candidate, EvalContext};
use crate::lockstep::{backoff, RetryPolicy};
use crate::recovery::{contain_panic, FirstError};
use crate::session::RewriteSession;
use crate::validity::{cut_cover, verify_cut};
use crate::{Engine, RewriteConfig, RewriteStats, SchedulerKind};

/// Atomic counters shared by the replacement operators.
#[derive(Default)]
struct Counters {
    replacements: AtomicU64,
    stale_skipped: AtomicU64,
    revalidated: AtomicU64,
    evaluations: AtomicU64,
}

/// What one replacement activity did.
enum ReplaceOutcome {
    /// The activity completed — a replacement committed, the stored result
    /// was skipped as stale, or the rebuild was a no-op. The node must not
    /// be scheduled again this round.
    Finished,
    /// Aborted on a lock conflict under [`RetryPolicy::Yield`]. The stored
    /// candidate is handed back so the scheduler can re-enqueue the node
    /// and the retry can revalidate it against the then-current graph.
    Conflict(Candidate),
}

/// Runs the DACPara pass.
///
/// # Errors
///
/// Returns [`AigError::CapacityExhausted`] if the arena headroom
/// ([`RewriteConfig::headroom`]) proves insufficient.
///
/// # Example
///
/// ```
/// use dacpara::{rewrite_dacpara, RewriteConfig};
/// use dacpara_circuits::control;
///
/// let mut aig = control::voter(15);
/// let stats = rewrite_dacpara(&mut aig, &RewriteConfig::rewrite_op().with_threads(2))?;
/// assert!(stats.area_after < stats.area_before);
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub fn rewrite_dacpara(aig: &mut Aig, cfg: &RewriteConfig) -> Result<RewriteStats, AigError> {
    let mut session = RewriteSession::new(aig, cfg)?;
    let stats = session.run(Engine::DacPara)?;
    *aig = session.finish();
    Ok(stats)
}

/// One DACPara pass on the session's resident state: the first pass (after
/// creation or re-sync) covers the whole graph, later passes only the dirty
/// set, and an empty dirty set returns immediately — no enumeration, no
/// evaluation.
///
/// Fault tolerance: when a round ends with an error, the team has already
/// drained cooperatively through the `bail()` checks, and the pass hands
/// the first error to [`RewriteSession::recover`]. If recovery succeeds
/// (arena re-homed with grown headroom, or a contained panic's salvage
/// validated), the same run is redone on the salvaged graph — committed
/// rewrites are kept — instead of returning `Err`.
pub(crate) fn session_pass(sess: &mut RewriteSession) -> Result<RewriteStats, AigError> {
    let start = Instant::now();
    let _pass_span = dacpara_obs::span!("rewrite_dacpara", threads = sess.cfg.threads);
    let mut stats = RewriteStats {
        engine: "dacpara".into(),
        area_before: sess.shared.num_ands(),
        delay_before: sess.shared.depth(),
        ..Default::default()
    };
    let spec = SpecStats::new();
    let lock_base = sess.locks.stats().snapshot();
    let counters = Counters::default();
    let stage_ns = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    let pool = match sess.cfg.scheduler {
        SchedulerKind::Steal => Some(StealPool::new(sess.cfg.threads)),
        SchedulerKind::Barrier => None,
    };
    let mut worked = false;
    // Replacements already credited to a previous salvage, so recoveries
    // report only the commits they newly carried over.
    let mut salvage_mark = 0u64;

    let runs = sess.cfg.runs.max(1);
    let mut run = 0;
    while run < runs {
        let (work, skipped) = sess.take_worklist();
        stats.clean_skipped += skipped;
        if work.is_empty() {
            run += 1;
            continue; // fixpoint: nothing enumerated, nothing evaluated
        }
        worked = true;
        let cfg = &sess.cfg;
        let (shared, store, locks, prep, ctx) = (
            &sess.shared,
            &sess.store,
            &sess.locks,
            &sess.prep,
            &sess.ctx,
        );

        // --- Node dividing (Fig. 1): one worklist per initial level
        // (or a single global worklist under the ablation flag).
        let mut worklists: Vec<Vec<NodeId>> = Vec::new();
        if cfg.level_partition {
            for n in work {
                let level = shared.level(n) as usize;
                if worklists.len() <= level {
                    worklists.resize_with(level + 1, Vec::new);
                }
                worklists[level].push(n);
            }
        } else {
            worklists.push(work);
        }
        // Level 0 holds no AND nodes and sparse dirty sets leave gaps;
        // empty lists have no chunk size and would only burn barriers.
        worklists.retain(|l| !l.is_empty());
        stats.worklists += worklists.len();

        let queue = WorkQueue::new(0);
        let error = FirstError::new();
        let stage_start: Mutex<Instant> = Mutex::new(Instant::now());

        {
            let (queue, error, spec, counters, stage_ns) =
                (&queue, &error, &spec, &counters, &stage_ns);
            let pool = pool.as_ref();
            let worklists = &worklists;
            let stage_start = &stage_start;
            run_spmd(cfg.threads, |w| {
                let owner = w.id as u32 + 1;
                let bail = || error.is_set();
                let begin_stage = |list_len: usize| {
                    if w.barrier() {
                        // A poisoned pass distributes nothing, but still
                        // arms the scheduler so its drain invariant holds.
                        let len = if error.is_set() { 0 } else { list_len };
                        match pool {
                            Some(pool) => pool.begin(len),
                            None => queue.reset(len),
                        }
                        *stage_start.lock() = Instant::now();
                    }
                    w.barrier();
                };
                let end_stage = |stage: usize| {
                    if w.barrier() {
                        let ns = stage_start.lock().elapsed().as_nanos() as u64;
                        stage_ns[stage].fetch_add(ns, Ordering::Relaxed);
                    }
                    w.barrier();
                };

                for list in worklists {
                    let chunk = chunk_size(list.len(), w.num_threads);

                    // -------- Stage 1: parallel cut enumeration.
                    //
                    // Every worker must enter the drain loop even when a
                    // teammate has already reported an error: under the
                    // steal scheduler each worker seeds its own block of an
                    // armed round inside `drive`, so a worker that skipped
                    // the stage wholesale would strand its share as
                    // forever-pending items and the rest of the team would
                    // spin on the drain count. Bailing is per-item instead.
                    begin_stage(list.len());
                    {
                        let _obs = dacpara_obs::span("enumerate");
                        let step = |i: usize| {
                            if bail() {
                                return;
                            }
                            let n = list[i];
                            if shared.is_and(n) && shared.refs(n) > 0 {
                                let _ = store.try_cuts(shared, n);
                            }
                        };
                        match pool {
                            Some(pool) => pool.drive(w.id, |i, _| {
                                step(i);
                                ItemOutcome::Done
                            }),
                            None => {
                                while let Some(range) = queue.next_chunk(chunk) {
                                    range.for_each(&step);
                                }
                            }
                        }
                    }
                    end_stage(0);

                    // -------- Stage 2: parallel, lock-free evaluation.
                    begin_stage(list.len());
                    {
                        let _obs = dacpara_obs::span("evaluate");
                        let step = |i: usize| {
                            if bail() {
                                return;
                            }
                            let n = list[i];
                            if !shared.is_and(n) || shared.refs(n) == 0 {
                                *prep[n.index()].lock() = None;
                                return;
                            }
                            counters.evaluations.fetch_add(1, Ordering::Relaxed);
                            let cand = store
                                .try_cuts(shared, n)
                                .and_then(|cuts| evaluate_node(shared, n, &cuts, ctx));
                            *prep[n.index()].lock() = cand;
                        };
                        match pool {
                            Some(pool) => pool.drive(w.id, |i, _| {
                                step(i);
                                ItemOutcome::Done
                            }),
                            None => {
                                while let Some(range) = queue.next_chunk(chunk) {
                                    range.for_each(&step);
                                }
                            }
                        }
                    }
                    end_stage(1);

                    // -------- Stage 3: parallel validated replacement.
                    begin_stage(list.len());
                    {
                        let _obs = dacpara_obs::span("replace");
                        // Feature-gated PR 4 drain-bug variant, the fuzzing
                        // self-test target: when a steal round hands items
                        // across workers, an off-by-one in the adopted range
                        // pairs a node with the stored candidate of its
                        // worklist neighbor. The §4.4 revalidation would
                        // reject the foreign cut (its cover walk cannot
                        // reach the neighbor's leaves), but the drained
                        // commit skips that too — see `replace_operator`.
                        // One mis-adoption per worker per list keeps the
                        // corruption bounded so passes still terminate.
                        // Never enabled in default builds.
                        let misadopted = std::cell::Cell::new(false);
                        match pool {
                            // Work stealing: a conflict-aborted commit puts
                            // its candidate back into `prep` and yields the
                            // node to the retry queue; the retry ceiling
                            // eventually forces inline blocking instead.
                            Some(pool) => pool.drive(w.id, |i, tries| {
                                if bail() {
                                    return ItemOutcome::Done;
                                }
                                let n = list[i];
                                let mut adopted = None;
                                if cfg!(feature = "inject-drain-bug")
                                    && !misadopted.get()
                                    && i + 1 < list.len()
                                {
                                    adopted = prep[list[i + 1].index()].lock().take();
                                    if adopted.is_some() {
                                        misadopted.set(true);
                                    }
                                }
                                let Some(cand) = adopted.or_else(|| prep[n.index()].lock().take())
                                else {
                                    return ItemOutcome::Done;
                                };
                                let policy = if tries < MAX_SCHED_RETRIES {
                                    RetryPolicy::Yield
                                } else {
                                    RetryPolicy::Block
                                };
                                // Contain operator panics at the item
                                // boundary: the pool never sees an unwind,
                                // so it is not poisoned and the round drains
                                // normally while `bail()` skips the rest.
                                match contain_panic(|| {
                                    replace_operator(
                                        shared,
                                        store,
                                        locks,
                                        ctx,
                                        n,
                                        cand,
                                        owner,
                                        spec,
                                        counters,
                                        cfg.revalidate,
                                        policy,
                                        tries,
                                    )
                                }) {
                                    Ok(ReplaceOutcome::Finished) => {
                                        if tries > 0 {
                                            pool.stats().record_retry_commit();
                                        }
                                        ItemOutcome::Done
                                    }
                                    Ok(ReplaceOutcome::Conflict(cand)) => {
                                        *prep[n.index()].lock() = Some(cand);
                                        ItemOutcome::Retry
                                    }
                                    Err(e) => {
                                        error.record(e);
                                        ItemOutcome::Done
                                    }
                                }
                            }),
                            None => {
                                while let Some(range) = queue.next_chunk(chunk) {
                                    if bail() {
                                        break;
                                    }
                                    for i in range {
                                        let n = list[i];
                                        let Some(cand) = prep[n.index()].lock().take() else {
                                            continue;
                                        };
                                        // Contain panics here too: an unwind
                                        // out of this closure would strand
                                        // the rest of the team at the next
                                        // barrier forever.
                                        if let Err(e) = contain_panic(|| {
                                            replace_operator(
                                                shared,
                                                store,
                                                locks,
                                                ctx,
                                                n,
                                                cand,
                                                owner,
                                                spec,
                                                counters,
                                                cfg.revalidate,
                                                RetryPolicy::Block,
                                                0,
                                            )
                                        }) {
                                            error.record(e);
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    end_stage(2);

                    // Leader restores strash canonicity between lists,
                    // tracing the merges into the dirty set.
                    if w.barrier() {
                        sess.canonicalize_and_sweep(false);
                    }
                    w.barrier();
                }
            });
        }
        stats.errors_observed += error.superseded();
        match error.take() {
            None => {
                sess.canonicalize_and_sweep(true);
                sess.shared.recompute_levels();
                run += 1;
            }
            Some(e) => {
                // Salvage committed work and redo this run on the recovered
                // graph; `recover` propagates the error once its budget
                // (max_regrowths / panic backstop) is spent.
                let committed = counters.replacements.load(Ordering::Relaxed);
                sess.recover(e, &mut stats, committed - salvage_mark)?;
                salvage_mark = committed;
            }
        }
    }

    stats.area_after = sess.shared.num_ands();
    stats.delay_after = sess.shared.depth();
    stats.replacements = counters.replacements.load(Ordering::Relaxed);
    stats.stale_skipped = counters.stale_skipped.load(Ordering::Relaxed);
    stats.revalidated = counters.revalidated.load(Ordering::Relaxed);
    stats.evaluations = counters.evaluations.load(Ordering::Relaxed);
    spec.merge_snapshot(&sess.locks.stats().snapshot().since(&lock_base));
    stats.spec = spec.snapshot();
    if let Some(pool) = &pool {
        stats.sched = pool.stats().snapshot();
    }
    for (i, ns) in stage_ns.iter().enumerate() {
        stats.stage_times[i] = std::time::Duration::from_nanos(ns.load(Ordering::Relaxed));
    }
    stats.time = start.elapsed();
    if dacpara_obs::is_enabled() {
        dacpara_obs::counter("rewrite.evaluations").add(stats.evaluations);
    }
    sess.set_converged(!worked || (stats.replacements == 0 && sess.store.dirty_count() == 0));
    Ok(stats)
}

/// The §4.4 replacement operator for one node.
///
/// Every attempt (loop iteration) records exactly one Galois commit or
/// abort, so `commits + aborts == attempts` holds at quiescence. Under
/// [`RetryPolicy::Yield`] a lock conflict returns the (unmodified) stored
/// candidate via [`ReplaceOutcome::Conflict`] instead of spinning; `tries`
/// is how many times the scheduler has already re-enqueued this node.
#[allow(clippy::too_many_arguments)]
fn replace_operator(
    shared: &ConcurrentAig,
    store: &CutStore,
    locks: &LockTable,
    ctx: &EvalContext,
    n: NodeId,
    cand: Candidate,
    owner: u32,
    spec: &SpecStats,
    counters: &Counters,
    revalidate: bool,
    policy: RetryPolicy,
    tries: u32,
) -> Result<ReplaceOutcome, AigError> {
    // Injected before the first `record_attempt` so a contained panic never
    // breaks the exact `attempts == commits + aborts` accounting.
    if dacpara_fault::point(dacpara_fault::points::OPERATOR_PANIC) {
        panic!("injected fault: operator.panic");
    }
    let mut spins = 0u32;
    // A rescheduled node already counted its revalidation on the first try.
    let mut revalidation_counted = tries > 0;
    loop {
        let attempt = Instant::now();
        spec.record_attempt();
        if !shared.is_and(n) || shared.refs(n) == 0 {
            counters.stale_skipped.fetch_add(1, Ordering::Relaxed);
            spec.record_commit(attempt.elapsed());
            return Ok(ReplaceOutcome::Finished);
        }

        // The commit half of the feature-gated PR 4 drain-bug variant (see
        // stage 3): a worker draining a steal round treats adopted items as
        // already validated and already locked by their original owner, and
        // commits the stored snapshot wholesale — no leaf-generation triage,
        // no cover re-walk, no truth-table re-simulation, no gain
        // re-evaluation, no region locks. Combined with the adoption
        // off-by-one this installs a neighbor's structure under the wrong
        // root. Never enabled in default builds.
        let drain_bug = cfg!(feature = "inject-drain-bug") && policy == RetryPolicy::Yield;
        if drain_bug {
            let root = build_replacement(&mut &*shared, &cand, ctx.lib)?;
            // Even the injected bug must keep the graph acyclic: a foreign
            // structure can strash-resolve an interior node onto n itself,
            // and committing that would hang every downstream topo walk
            // rather than miscompare. The historical bug corrupted
            // *functions*; keep the reproduction in that class.
            let reaches_n = root.node() != n && {
                let mut stack = vec![root.node()];
                let mut seen = vec![false; shared.slot_count()];
                let mut found = false;
                while let Some(x) = stack.pop() {
                    if x == n {
                        found = true;
                        break;
                    }
                    if !std::mem::replace(&mut seen[x.index()], true) && shared.is_and(x) {
                        for f in shared.fanins(x) {
                            stack.push(f.node());
                        }
                    }
                }
                found
            };
            if root.node() != n && !reaches_n {
                store.invalidate_tfo(shared, n);
                shared.replace_locked(n, root);
                counters.replacements.fetch_add(1, Ordering::Relaxed);
                for &l in &cand.leaves {
                    store.mark_dirty_tfo(shared, l);
                }
            }
            spec.record_commit(attempt.elapsed());
            return Ok(ReplaceOutcome::Finished);
        }

        // ---- Triage: are the stored leaves untouched (Theorem 1 case)?
        let leaves_fresh = cand
            .leaves
            .iter()
            .zip(&cand.leaf_gens)
            .all(|(&l, &g)| shared.is_alive(l) && shared.generation(l) == g);
        if !leaves_fresh {
            if !revalidate {
                counters.stale_skipped.fetch_add(1, Ordering::Relaxed);
                spec.record_commit(attempt.elapsed());
                return Ok(ReplaceOutcome::Finished);
            }
            if !revalidation_counted {
                counters.revalidated.fetch_add(1, Ordering::Relaxed);
                revalidation_counted = true;
            }
            // §4.4: re-enumerate on the latest AIG and match the stored cut
            // against the fresh cut set.
            store.invalidate(n);
            let Some(fresh) = store.try_cuts(shared, n) else {
                if !shared.is_and(n) {
                    counters.stale_skipped.fetch_add(1, Ordering::Relaxed);
                    spec.record_commit(attempt.elapsed());
                    return Ok(ReplaceOutcome::Finished);
                }
                // Someone holds the enumeration generation mid-update: a
                // conflict like any other lock conflict.
                spec.record_abort(attempt.elapsed());
                if policy == RetryPolicy::Yield {
                    return Ok(ReplaceOutcome::Conflict(cand));
                }
                backoff(&mut spins);
                continue;
            };
            if !fresh.iter().any(|c| c.leaves() == &cand.leaves[..]) {
                counters.stale_skipped.fetch_add(1, Ordering::Relaxed);
                spec.record_commit(attempt.elapsed());
                // A missed optimization opportunity (§5.2).
                return Ok(ReplaceOutcome::Finished);
            }
        }

        // ---- Phase-1 locks: the node, the cut cone, and the fanouts.
        let Some(cover_hint) = cut_cover(shared, n, &cand.leaves) else {
            counters.stale_skipped.fetch_add(1, Ordering::Relaxed);
            spec.record_commit(attempt.elapsed());
            return Ok(ReplaceOutcome::Finished);
        };
        let mut region: Vec<u32> = vec![n.raw()];
        region.extend(cand.leaves.iter().map(|l| l.raw()));
        region.extend(cover_hint.iter().map(|c| c.raw()));
        region.extend(shared.fanout_ids(n).iter().map(|f| f.raw()));
        let Some(guard) = locks.try_acquire(owner, region) else {
            spec.record_abort(attempt.elapsed());
            if policy == RetryPolicy::Yield {
                return Ok(ReplaceOutcome::Conflict(cand));
            }
            backoff(&mut spins);
            continue;
        };

        // ---- Under locks: recompute the cover and the cut function.
        let Some((cover, tt)) = verify_cut(shared, n, &cand.leaves) else {
            counters.stale_skipped.fetch_add(1, Ordering::Relaxed);
            spec.record_commit(attempt.elapsed());
            return Ok(ReplaceOutcome::Finished);
        };
        if cover
            .iter()
            .any(|c| guard.ids().binary_search(&c.raw()).is_err())
        {
            // The cone shifted between planning and locking — replan.
            drop(guard);
            spec.record_abort(attempt.elapsed());
            if policy == RetryPolicy::Yield {
                return Ok(ReplaceOutcome::Conflict(cand));
            }
            backoff(&mut spins);
            continue;
        }
        // The stored candidate stays untouched: a conflict below hands it
        // back to the scheduler for a fresh revalidation.
        let mut live = cand.clone();
        if tt != live.tt {
            // A leaf slot was recycled with different logic (Fig. 3): the
            // stored structure is only reusable if the NPN class matches.
            if ctx.registry.class_of(tt) != live.class {
                counters.stale_skipped.fetch_add(1, Ordering::Relaxed);
                spec.record_commit(attempt.elapsed());
                return Ok(ReplaceOutcome::Finished);
            }
            live.tt = tt;
            live.transform = canon(tt).1;
        }

        // ---- Re-evaluate on the latest AIG: gain must (still) be positive.
        let re = reevaluate_structure(shared, n, &live, ctx);
        let gain_ok = re.gain > 0 || (ctx.use_zeros && re.gain >= 0);
        let level_ok = !ctx.preserve_level || re.level <= shared.level(n);
        if !(gain_ok && level_ok) {
            counters.stale_skipped.fetch_add(1, Ordering::Relaxed);
            spec.record_commit(attempt.elapsed());
            return Ok(ReplaceOutcome::Finished);
        }

        // ---- Phase-2 locks: nodes the new structure will share.
        let extra: Vec<u32> = re
            .shared_nodes
            .iter()
            .map(|s| s.raw())
            .filter(|id| guard.ids().binary_search(id).is_err())
            .collect();
        let _extra_guard = if extra.is_empty() {
            None
        } else {
            match locks.try_acquire(owner, extra) {
                Some(g) => Some(g),
                None => {
                    drop(guard);
                    spec.record_abort(attempt.elapsed());
                    if policy == RetryPolicy::Yield {
                        return Ok(ReplaceOutcome::Conflict(cand));
                    }
                    backoff(&mut spins);
                    continue;
                }
            }
        };

        // ---- Apply: build, then (only if the structure actually differs)
        // clear stale enumeration results and replace. Invalidating before
        // the no-op check would re-dirty n's fanout cone every pass and a
        // session could never converge. The TFO walk must still precede
        // `replace_locked`, which moves n's fanouts.
        let root = build_replacement(&mut &*shared, &live, ctx.lib)?;
        if root.node() != n {
            for &f in &re.freed {
                store.invalidate(f);
            }
            store.invalidate_tfo(shared, n);
            shared.replace_locked(n, root);
            counters.replacements.fetch_add(1, Ordering::Relaxed);
            // Everything whose evaluation could have changed — the cone
            // interior, the new structure, shared nodes, and all downstream
            // users — lies in the transitive fanout of the cut leaves.
            for &l in &live.leaves {
                store.mark_dirty_tfo(shared, l);
            }
            if dacpara_obs::is_enabled() {
                dacpara_obs::histogram("rewrite.replacement_gain").record(re.gain.max(0) as u64);
            }
        }
        spec.record_commit(attempt.elapsed());
        return Ok(ReplaceOutcome::Finished);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::{arith, control, mtm, MtmParams};
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    fn cfg(threads: usize) -> RewriteConfig {
        RewriteConfig {
            num_classes: 222,
            threads,
            ..RewriteConfig::rewrite_op()
        }
    }

    fn assert_equiv(before: &Aig, after: &Aig) {
        // Bounded SAT budget: a counterexample is always a failure; an
        // exhausted budget falls back on the (passing) simulation check.
        let cfg = CecConfig {
            sim_rounds: 32,
            max_conflicts: 100_000,
            seed: 0xDAC,
        };
        match check_equivalence(before, after, &cfg) {
            CecResult::Equivalent | CecResult::Undecided => {}
            CecResult::Inequivalent(_) => panic!("rewriting broke equivalence"),
        }
    }

    #[test]
    fn single_thread_reduces_and_stays_equivalent() {
        let mut aig = control::voter(15);
        let golden = aig.clone();
        let stats = rewrite_dacpara(&mut aig, &cfg(1)).unwrap();
        aig.check().unwrap();
        assert!(stats.area_reduction() > 0, "{}", stats.summary());
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn multi_thread_preserves_equivalence_on_random_logic() {
        let mut aig = mtm(&MtmParams {
            inputs: 32,
            gates: 2500,
            outputs: 12,
            seed: 11,
        });
        let golden = aig.clone();
        let stats = rewrite_dacpara(&mut aig, &cfg(4)).unwrap();
        aig.check().unwrap();
        assert!(stats.area_after <= stats.area_before);
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn multi_thread_on_arithmetic() {
        let mut aig = arith::multiplier(8);
        let golden = aig.clone();
        let stats = rewrite_dacpara(&mut aig, &cfg(4)).unwrap();
        aig.check().unwrap();
        assert!(stats.worklists > 1, "level partition must have many lists");
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn quality_tracks_the_serial_baseline() {
        // §5.2: DACPara loses only a fraction of a percent of area
        // reduction versus the fully serial baseline.
        let gen = || control::voter(101);
        let mut serial = gen();
        let s = crate::rewrite_serial(&mut serial, &cfg(1)).unwrap();
        let mut para = gen();
        let p = rewrite_dacpara(&mut para, &cfg(4)).unwrap();
        let slack = 1 + s.area_reduction() / 10;
        assert!(
            p.area_reduction() + slack >= s.area_reduction(),
            "serial {} vs dacpara {}",
            s.summary(),
            p.summary()
        );
    }

    #[test]
    fn two_runs_converge() {
        let mut aig = arith::square(6);
        let golden = aig.clone();
        let mut c = cfg(2);
        c.runs = 2;
        let stats = rewrite_dacpara(&mut aig, &c).unwrap();
        aig.check().unwrap();
        let _ = stats;
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn stage_times_are_recorded() {
        let mut aig = arith::multiplier(6);
        let stats = rewrite_dacpara(&mut aig, &cfg(2)).unwrap();
        assert!(stats.stage_times[1] > std::time::Duration::ZERO);
    }
}
