//! The serial DAG-aware rewriting baseline (ABC's `rewrite`).
//!
//! Processes every AND node in topological order; for each node it
//! enumerates 4-input cuts, evaluates the library structures of each cut's
//! NPN class against the *current* graph (so every node sees fully dynamic
//! information), and applies the best positive-gain replacement. This is
//! the algorithm of Mishchenko et al. (DAC'06) that all the parallel
//! engines in this crate are measured against.

use std::time::Instant;

use dacpara_aig::mffc::mffc_with_cut;
use dacpara_aig::{Aig, AigError, AigRead};
use dacpara_cut::CutStore;

use crate::eval::{build_replacement, evaluate_node, EvalContext};
use crate::{RewriteConfig, RewriteStats};

/// Runs the serial rewriting pass (possibly multiple runs, per
/// [`RewriteConfig::runs`]) and reports statistics.
///
/// # Errors
///
/// The serial engine itself cannot fail (its arena grows on demand), but it
/// returns `Result` like every other engine so `run_engine` and session
/// flows need no special case. The only current error source is
/// replacement-builder arena exhaustion, which the growable serial [`Aig`]
/// never triggers.
///
/// # Example
///
/// ```
/// use dacpara::{rewrite_serial, RewriteConfig};
/// use dacpara_circuits::arith;
///
/// let mut aig = arith::multiplier(6);
/// let stats = rewrite_serial(&mut aig, &RewriteConfig::rewrite_op())?;
/// assert!(stats.area_after <= stats.area_before);
/// aig.check().expect("rewriting keeps the graph sound");
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub fn rewrite_serial(aig: &mut Aig, cfg: &RewriteConfig) -> Result<RewriteStats, AigError> {
    let start = Instant::now();
    let _pass_span = dacpara_obs::span("rewrite_serial");
    let ctx = EvalContext::new(cfg);
    let mut stats = RewriteStats {
        engine: "abc-rewrite".into(),
        area_before: aig.num_ands(),
        delay_before: aig.depth(),
        ..Default::default()
    };

    for _ in 0..cfg.runs.max(1) {
        let mut store = CutStore::new(aig.slot_count() + 64, cfg.cut_config());
        let order = dacpara_aig::topo_ands(aig);
        for n in order {
            if !aig.is_and(n) || AigRead::refs(aig, n) == 0 {
                continue; // deleted or dangling since the snapshot
            }
            store.grow(aig.slot_count());
            let cuts = {
                let _obs = dacpara_obs::span("enumerate");
                store.cuts(aig, n)
            };
            let cand = {
                let _obs = dacpara_obs::span("evaluate");
                stats.evaluations += 1;
                evaluate_node(aig, n, &cuts, &ctx)
            };
            let Some(cand) = cand else {
                continue;
            };
            let _obs = dacpara_obs::span("replace");
            // Invalidate enumeration results that the replacement makes
            // stale: the would-be-deleted cone and the transitive fanout.
            let freed = mffc_with_cut(aig, n, &cand.leaves);
            for &f in &freed.freed {
                store.invalidate(f);
            }
            store.invalidate_tfo(aig, n);
            let root = build_replacement(aig, &cand, ctx.lib)?;
            if root.node() != n {
                aig.replace(n, root);
                stats.replacements += 1;
            }
            store.grow(aig.slot_count());
        }
        aig.cleanup();
    }

    aig.recompute_levels();
    stats.area_after = aig.num_ands();
    stats.delay_after = aig.depth();
    stats.time = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::{arith, control, mtm, MtmParams};
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    fn cfg() -> RewriteConfig {
        RewriteConfig {
            num_classes: 222,
            ..RewriteConfig::rewrite_op()
        }
    }

    fn assert_equiv(before: &Aig, after: &Aig) {
        // Bounded SAT budget: a counterexample is always a failure; an
        // exhausted budget falls back on the (passing) simulation check.
        let cfg = CecConfig {
            sim_rounds: 32,
            max_conflicts: 100_000,
            seed: 0xDAC,
        };
        match check_equivalence(before, after, &cfg) {
            CecResult::Equivalent | CecResult::Undecided => {}
            CecResult::Inequivalent(_) => panic!("rewriting broke equivalence"),
        }
    }

    #[test]
    fn rewrites_a_multiplier_soundly() {
        let mut aig = arith::multiplier(6);
        let golden = aig.clone();
        let stats = rewrite_serial(&mut aig, &cfg()).unwrap();
        aig.check().unwrap();
        assert!(stats.area_after <= stats.area_before);
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn reduces_redundant_voter() {
        let mut aig = control::voter(15);
        let golden = aig.clone();
        let stats = rewrite_serial(&mut aig, &cfg()).unwrap();
        aig.check().unwrap();
        assert!(
            stats.area_reduction() > 0,
            "voter has rewritable structure: {}",
            stats.summary()
        );
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn preserve_level_never_deepens() {
        let mut aig = mtm(&MtmParams {
            inputs: 24,
            gates: 600,
            outputs: 8,
            seed: 3,
        });
        let golden = aig.clone();
        let stats = rewrite_serial(&mut aig, &cfg()).unwrap();
        aig.check().unwrap();
        assert!(
            stats.delay_after <= stats.delay_before,
            "level-preserving rewrite deepened the graph: {}",
            stats.summary()
        );
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn second_run_changes_little() {
        let mut aig = arith::adder(10);
        rewrite_serial(&mut aig, &cfg()).unwrap();
        let after_one = aig.num_ands();
        let stats = rewrite_serial(&mut aig, &cfg()).unwrap();
        assert!(
            stats.area_reduction() * 10 <= after_one,
            "rewriting should be near a fixpoint: {}",
            stats.summary()
        );
    }

    #[test]
    fn use_zeros_is_accepted() {
        let mut aig = arith::square(5);
        let golden = aig.clone();
        let mut c = cfg();
        c.use_zeros = true;
        rewrite_serial(&mut aig, &c).unwrap();
        aig.check().unwrap();
        assert_equiv(&golden, &aig);
    }
}
