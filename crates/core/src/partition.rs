//! Partition-based (coarse-grain) parallel rewriting, in the style of Liu &
//! Zhang (FPGA'17) — reference [15] of the paper: "achieved parallelism by
//! decomposing a large design into multiple smaller subnets that can be
//! optimized simultaneously".
//!
//! The graph is split into disjoint regions by claiming output cones
//! round-robin; each region is extracted into a private sub-AIG whose
//! inputs are the region's imports (PIs and nodes owned by other regions)
//! and whose outputs are its exported signals. The sub-AIGs are optimized
//! *serially and independently* — embarrassingly parallel, no locks, but
//! also no optimization across region boundaries, which is the quality
//! ceiling this family of methods hits and one motivation for DACPara's
//! finer-grained approach.

use std::collections::HashMap;
use std::time::Instant;

use dacpara_aig::{Aig, AigError, AigRead, Lit, NodeId, NodeKind};
use dacpara_galois::parallel_for;
use parking_lot::Mutex;

use crate::{rewrite_serial, RewriteConfig, RewriteStats};

/// One extracted region.
struct Region {
    /// Imports in deterministic order (PIs or other regions' nodes).
    imports: Vec<NodeId>,
    /// Exported original node ids, in deterministic order.
    exports: Vec<NodeId>,
    /// The extracted (later: optimized) sub-AIG; `imports[i]` is its input
    /// `i`, `exports[j]` its output `j`.
    sub: Aig,
}

/// Runs partition-parallel rewriting. The region count comes from
/// [`RewriteConfig::partition_regions`] (`0` = `2 × threads`).
///
/// # Errors
///
/// Propagates any error from the per-region serial engine (currently none
/// in practice — the serial arena grows on demand).
///
/// # Example
///
/// ```
/// use dacpara::{rewrite_partition, RewriteConfig};
/// use dacpara_circuits::control;
///
/// let mut aig = control::voter(15);
/// let stats = rewrite_partition(&mut aig, &RewriteConfig::rewrite_op().with_threads(2))?;
/// assert!(stats.area_after <= stats.area_before);
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub fn rewrite_partition(aig: &mut Aig, cfg: &RewriteConfig) -> Result<RewriteStats, AigError> {
    let start = Instant::now();
    let mut stats = RewriteStats {
        engine: "partition-fpga17".into(),
        area_before: aig.num_ands(),
        delay_before: aig.depth(),
        ..Default::default()
    };
    aig.cleanup();
    let parts = cfg.effective_partition_regions().max(1);

    for _ in 0..cfg.runs.max(1) {
        // ---- 1. Claim regions: output cones round-robin, first claim wins.
        let slots = aig.slot_count();
        let mut part_of: Vec<u32> = vec![u32::MAX; slots];
        for (k, &po) in aig.outputs().iter().enumerate() {
            let p = (k % parts) as u32;
            let mut stack = vec![po.node()];
            while let Some(n) = stack.pop() {
                if aig.kind(n) != NodeKind::And || part_of[n.index()] != u32::MAX {
                    continue;
                }
                part_of[n.index()] = p;
                for l in aig.fanins(n) {
                    stack.push(l.node());
                }
            }
        }

        // ---- 2. Extract each region into a private sub-AIG.
        let topo = dacpara_aig::topo_ands(aig);
        let mut regions: Vec<Option<Region>> = Vec::with_capacity(parts);
        for p in 0..parts as u32 {
            let nodes: Vec<NodeId> = topo
                .iter()
                .copied()
                .filter(|n| part_of[n.index()] == p)
                .collect();
            if nodes.is_empty() {
                regions.push(None);
                continue;
            }
            let in_region = |n: NodeId| aig.kind(n) == NodeKind::And && part_of[n.index()] == p;
            // Imports: fanins outside the region (PIs or foreign nodes).
            let mut imports: Vec<NodeId> = Vec::new();
            for &n in &nodes {
                for l in aig.fanins(n) {
                    let v = l.node();
                    if v != NodeId::CONST0 && !in_region(v) && !imports.contains(&v) {
                        imports.push(v);
                    }
                }
            }
            imports.sort_unstable();
            // Exports: region nodes used by foreign nodes or primary outputs.
            let mut exports: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|&n| {
                    aig.fanouts(n).iter().any(|&f| !in_region(f))
                        || aig.outputs().iter().any(|po| po.node() == n)
                })
                .collect();
            exports.sort_unstable();

            let mut sub = Aig::new();
            let mut map: HashMap<NodeId, Lit> = HashMap::new();
            for &i in &imports {
                map.insert(i, sub.add_input());
            }
            for &n in &nodes {
                let [a, b] = aig.fanins(n);
                let la = resolve(&map, a);
                let lb = resolve(&map, b);
                map.insert(n, sub.add_and(la, lb));
            }
            for &e in &exports {
                let l = map[&e];
                sub.add_output(l);
            }
            regions.push(Some(Region {
                imports,
                exports,
                sub,
            }));
        }

        // ---- 3. Optimize every region independently, in parallel.
        let sub_cfg = RewriteConfig {
            threads: 1,
            runs: 1,
            ..cfg.clone()
        };
        let slots_vec: Vec<Mutex<Option<Region>>> = regions.into_iter().map(Mutex::new).collect();
        let replacements = Mutex::new(0u64);
        let evaluations = Mutex::new(0u64);
        let error: Mutex<Option<AigError>> = Mutex::new(None);
        {
            let (slots_ref, sub_cfg, replacements, evaluations, error) =
                (&slots_vec, &sub_cfg, &replacements, &evaluations, &error);
            let indices: Vec<usize> = (0..slots_ref.len()).collect();
            parallel_for(cfg.threads, &indices, |_, &i| {
                if error.lock().is_some() {
                    return;
                }
                let mut guard = slots_ref[i].lock();
                if let Some(region) = guard.as_mut() {
                    match rewrite_serial(&mut region.sub, sub_cfg) {
                        Ok(s) => {
                            *replacements.lock() += s.replacements;
                            *evaluations.lock() += s.evaluations;
                        }
                        Err(e) => *error.lock() = Some(e),
                    }
                }
            });
        }
        if let Some(e) = error.lock().take() {
            return Err(e);
        }
        stats.replacements += *replacements.lock();
        stats.evaluations += *evaluations.lock();
        let regions: Vec<Option<Region>> = slots_vec.into_iter().map(|m| m.into_inner()).collect();

        // ---- 4. Stitch: realize every exported signal in a fresh graph.
        let mut out = Aig::new();
        let mut pi_map: HashMap<NodeId, Lit> = HashMap::new();
        for &pi in aig.inputs() {
            pi_map.insert(pi, out.add_input());
        }
        // Per-region memo of sub-node -> final literal.
        let mut region_maps: Vec<HashMap<NodeId, Lit>> =
            (0..parts).map(|_| HashMap::new()).collect();
        let mut realized: HashMap<NodeId, Lit> = pi_map.clone();

        // Resolve exported signals in global topological order: an export's
        // sub-cone only references imports that are strictly below it in the
        // original graph, so earlier topo entries are always ready.
        for &n in &topo {
            let p = part_of[n.index()];
            if p == u32::MAX {
                continue; // unreachable node (cleaned above, defensive)
            }
            let region = regions[p as usize].as_ref().expect("claimed region exists");
            let Some(export_pos) = region.exports.iter().position(|&e| e == n) else {
                continue; // interior node: realized implicitly if needed
            };
            // Instantiate the sub-cone of this export into `out`.
            let sub = &region.sub;
            let sub_po = sub.outputs()[export_pos];
            let value = instantiate(
                sub,
                sub_po,
                &region.imports,
                &realized,
                &mut region_maps[p as usize],
                &mut out,
            );
            realized.insert(n, value);
        }
        for &po in aig.outputs() {
            let l = if po.node() == NodeId::CONST0 {
                Lit::FALSE
            } else {
                realized[&po.node()]
            };
            out.add_output(l.xor(po.is_complement()));
        }
        out.cleanup();
        *aig = out;
    }

    aig.recompute_levels();
    stats.area_after = aig.num_ands();
    stats.delay_after = aig.depth();
    stats.worklists = parts;
    stats.time = start.elapsed();
    Ok(stats)
}

fn resolve(map: &HashMap<NodeId, Lit>, l: Lit) -> Lit {
    if l.node() == NodeId::CONST0 {
        return l;
    }
    map[&l.node()].xor(l.is_complement())
}

/// Copies the cone of `sub_po` (a literal in `sub`) into `out`, wiring the
/// sub-AIG's inputs to already-realized signals.
fn instantiate(
    sub: &Aig,
    sub_po: Lit,
    imports: &[NodeId],
    realized: &HashMap<NodeId, Lit>,
    memo: &mut HashMap<NodeId, Lit>,
    out: &mut Aig,
) -> Lit {
    // Seed the memo with every import realized so far. Imports that are
    // still missing belong to exports *above* the one being instantiated
    // (global topological order), so this cone cannot need them.
    for (k, &orig) in imports.iter().enumerate() {
        let sub_in = sub.inputs()[k];
        if let Some(&lit) = realized.get(&orig) {
            memo.entry(sub_in).or_insert(lit);
        }
    }
    let mut stack = vec![sub_po.node()];
    while let Some(top) = stack.pop() {
        if memo.contains_key(&top) || top == NodeId::CONST0 {
            continue;
        }
        debug_assert_eq!(sub.kind(top), NodeKind::And, "unseeded sub input");
        let [a, b] = sub.fanins(top);
        let ra = if a.node() == NodeId::CONST0 {
            Some(Lit::FALSE)
        } else {
            memo.get(&a.node()).copied()
        };
        let rb = if b.node() == NodeId::CONST0 {
            Some(Lit::FALSE)
        } else {
            memo.get(&b.node()).copied()
        };
        match (ra, rb) {
            (Some(ra), Some(rb)) => {
                let lit = out.add_and(ra.xor(a.is_complement()), rb.xor(b.is_complement()));
                memo.insert(top, lit);
            }
            _ => {
                stack.push(top);
                if ra.is_none() {
                    stack.push(a.node());
                }
                if rb.is_none() {
                    stack.push(b.node());
                }
            }
        }
    }
    let root = if sub_po.node() == NodeId::CONST0 {
        Lit::FALSE
    } else {
        memo[&sub_po.node()]
    };
    root.xor(sub_po.is_complement())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::{arith, control, mtm, MtmParams};
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    fn cfg() -> RewriteConfig {
        RewriteConfig {
            num_classes: 222,
            threads: 3,
            ..RewriteConfig::rewrite_op()
        }
    }

    fn cfg_parts(parts: usize) -> RewriteConfig {
        RewriteConfig {
            partition_regions: parts,
            ..cfg()
        }
    }

    fn assert_equiv(before: &Aig, after: &Aig) {
        let cec = CecConfig {
            sim_rounds: 32,
            max_conflicts: 100_000,
            seed: 0xDAC,
        };
        match check_equivalence(before, after, &cec) {
            CecResult::Equivalent | CecResult::Undecided => {}
            CecResult::Inequivalent(_) => panic!("partition rewriting broke equivalence"),
        }
    }

    #[test]
    fn single_partition_matches_serial_behaviour() {
        let golden = control::voter(15);
        let mut partitioned = golden.clone();
        rewrite_partition(&mut partitioned, &cfg_parts(1)).unwrap();
        partitioned.check().unwrap();
        let mut serial = golden.clone();
        rewrite_serial(&mut serial, &cfg()).unwrap();
        // One region = the whole graph; the extraction renumbers nodes, so
        // the greedy engine visits in a different order and the areas can
        // differ by a few percent — but must stay in the same ballpark.
        let (a, b) = (partitioned.num_ands(), serial.num_ands());
        assert!(
            a.abs_diff(b) * 8 <= b.max(1),
            "partitioned {a} vs serial {b}"
        );
        assert_equiv(&golden, &partitioned);
    }

    #[test]
    fn many_partitions_stay_equivalent() {
        let golden = arith::multiplier(8);
        for parts in [2, 4, 8] {
            let mut aig = golden.clone();
            let stats = rewrite_partition(&mut aig, &cfg_parts(parts)).unwrap();
            aig.check().unwrap();
            assert!(stats.area_after <= stats.area_before, "{parts} parts");
            assert_equiv(&golden, &aig);
        }
    }

    #[test]
    fn boundary_freezing_stays_in_the_serial_ballpark() {
        // Frozen boundaries deny cross-region optimization; node-order
        // effects can offset a little of that, so assert the partitioned
        // quality lands within ±15% of the serial engine rather than a
        // strict ordering (the *mechanism* — skipped boundary cuts — is
        // exercised either way, and equivalence must always hold).
        let golden = mtm(&MtmParams {
            inputs: 32,
            gates: 2500,
            outputs: 16,
            seed: 21,
        });
        let mut serial = golden.clone();
        let s = rewrite_serial(&mut serial, &cfg()).unwrap();
        let mut part = golden.clone();
        let p = rewrite_partition(&mut part, &cfg_parts(8)).unwrap();
        let (pr, sr) = (p.area_reduction(), s.area_reduction());
        assert!(
            pr.abs_diff(sr) * 100 <= sr.max(1) * 15,
            "partitioned {pr} vs serial {sr}"
        );
        assert_equiv(&golden, &part);
    }

    #[test]
    fn handles_constant_and_repeated_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        aig.add_output(ab);
        aig.add_output(dacpara_aig::Lit::TRUE);
        let golden = aig.clone();
        rewrite_partition(&mut aig, &cfg_parts(3)).unwrap();
        aig.check().unwrap();
        assert_equiv(&golden, &aig);
    }
}
