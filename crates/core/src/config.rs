//! Rewriting configuration shared by every engine.

use dacpara_aig::AigError;
use dacpara_cut::CutConfig;
use dacpara_npn::{ClassId, ClassRegistry};

/// A rejected [`RewriteConfig`] field, reported by
/// [`RewriteConfig::validate`].
#[derive(Copy, Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `threads` must be at least 1.
    ZeroThreads,
    /// `runs` must be at least 1.
    ZeroRuns,
    /// `num_classes` must be at least 1.
    ZeroClasses,
    /// `headroom` must be at least 1.0 (the arena cannot shrink below the
    /// live graph).
    HeadroomTooSmall {
        /// The rejected headroom value.
        headroom: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroThreads => f.write_str("threads must be >= 1"),
            ConfigError::ZeroRuns => f.write_str("runs must be >= 1"),
            ConfigError::ZeroClasses => f.write_str("num_classes must be >= 1"),
            ConfigError::HeadroomTooSmall { headroom } => {
                write!(f, "headroom must be >= 1.0 (got {headroom})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for AigError {
    fn from(e: ConfigError) -> AigError {
        AigError::InvariantViolation(format!("invalid configuration: {e}"))
    }
}

/// How the parallel engines distribute worklist items across workers.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The historical shared-cursor scheme: workers grab fixed-size chunks
    /// from one [`dacpara_galois::WorkQueue`]; a commit that keeps hitting
    /// lock conflicts spin-retries inline, pinning its worker.
    Barrier,
    /// Work stealing ([`dacpara_galois::StealPool`]): per-worker Chase-Lev
    /// deques with adaptive range splitting, plus a per-worker conflict
    /// retry queue — an aborted commit is re-enqueued with backoff and
    /// retried within the same pass while the worker does other work.
    #[default]
    Steal,
}

impl SchedulerKind {
    /// Short name used in reports and by the CLI (`barrier` | `steal`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Barrier => "barrier",
            SchedulerKind::Steal => "steal",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scheduler name [`SchedulerKind::from_str`] did not recognize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchedulerError {
    input: String,
}

impl std::fmt::Display for ParseSchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheduler {:?} (expected `barrier` or `steal`)",
            self.input
        )
    }
}

impl std::error::Error for ParseSchedulerError {}

impl std::str::FromStr for SchedulerKind {
    type Err = ParseSchedulerError;

    fn from_str(s: &str) -> Result<SchedulerKind, ParseSchedulerError> {
        match s {
            "barrier" => Ok(SchedulerKind::Barrier),
            "steal" => Ok(SchedulerKind::Steal),
            _ => Err(ParseSchedulerError { input: s.into() }),
        }
    }
}

/// Parameters of a rewriting pass.
///
/// The paper's experimental configurations map onto this struct:
///
/// * **Table 2 / DACPara-P2** — [`RewriteConfig::rewrite_op`]: the ABC
///   `rewrite` operator setup (134 NPN classes, unlimited cuts and
///   structures, one run).
/// * **DACPara-P1** — [`RewriteConfig::p1`]: 8 cuts per node, 5 structures
///   per class, two runs (the GPU papers' `drw`-style setup, except P1 can
///   only use the 134 `rewrite` classes — §5.2).
/// * **GPU emulations (DAC'22 / TCAD'23)** — [`RewriteConfig::drw_op`]:
///   all 222 classes, 8 cuts, 5 structures, two runs.
#[derive(Clone, Debug)]
pub struct RewriteConfig {
    /// Worker threads for the parallel engines (the paper uses 40).
    pub threads: usize,
    /// Cuts kept per node (`0` = unlimited).
    pub cut_limit: usize,
    /// Structures evaluated per NPN class (`0` = all).
    pub max_structures: usize,
    /// Number of NPN classes evaluated (222 = all; 134 mirrors `rewrite`).
    pub num_classes: usize,
    /// Accept zero-gain replacements (ABC's `-z`).
    pub use_zeros: bool,
    /// Reject replacements that increase the node's level (ABC `rewrite`
    /// preserves levels by default).
    pub preserve_level: bool,
    /// Arena headroom factor for the concurrent engines.
    pub headroom: f64,
    /// How many times the whole pass is run (the GPU comparisons execute
    /// the program twice).
    pub runs: usize,
    /// Divide nodes into per-level worklists (Fig. 1). Disabling this is an
    /// ablation: one global worklist still runs the three split stages.
    pub level_partition: bool,
    /// Re-enumerate and match stored cuts whose leaves changed (§4.4).
    /// Disabling this is an ablation: stale results are simply skipped.
    pub revalidate: bool,
    /// Use the enumeration-refined structure library (slower first-use
    /// build, slightly better structures; see `dacpara_nst::refine`).
    pub refined_library: bool,
    /// Regions for the partition engine (Liu & Zhang, FPGA'17). `0` (the
    /// default) means `2 × threads`, the heuristic the engine has always
    /// used; the old trailing `parts` argument of `rewrite_partition`
    /// folded into this field.
    pub partition_regions: usize,
    /// Worklist scheduler for the Galois engines (`dacpara`, `iccad18`):
    /// [`SchedulerKind::Steal`] (the default) retries conflict-aborted
    /// commits within the pass; [`SchedulerKind::Barrier`] is the
    /// historical shared-cursor scheme.
    pub scheduler: SchedulerKind,
    /// How many times a concurrent pass may recover from arena exhaustion
    /// by salvaging committed work and re-homing into a geometrically
    /// grown arena before [`dacpara_aig::AigError::CapacityExhausted`] is
    /// propagated to the caller. `0` disables in-pass recovery (the
    /// pre-recovery fail-fast behaviour).
    pub max_regrowths: usize,
}

impl RewriteConfig {
    /// The ABC `rewrite` operator configuration (Table 2, DACPara-P2).
    pub fn rewrite_op() -> RewriteConfig {
        RewriteConfig {
            threads: 1,
            cut_limit: 0,
            max_structures: 0,
            num_classes: 134,
            use_zeros: false,
            preserve_level: true,
            headroom: 1.6,
            runs: 1,
            level_partition: true,
            revalidate: true,
            refined_library: false,
            partition_regions: 0,
            scheduler: SchedulerKind::Steal,
            max_regrowths: 4,
        }
    }

    /// The paper's P1 configuration: 8 cuts, 5 structures, two runs, 134
    /// classes.
    pub fn p1() -> RewriteConfig {
        RewriteConfig {
            cut_limit: 8,
            max_structures: 5,
            runs: 2,
            ..RewriteConfig::rewrite_op()
        }
    }

    /// The `drw`-style configuration used by the GPU methods: all 222
    /// classes, 8 cuts, 5 structures, two runs.
    pub fn drw_op() -> RewriteConfig {
        RewriteConfig {
            num_classes: 222,
            ..RewriteConfig::p1()
        }
    }

    /// This configuration with a different thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> RewriteConfig {
        self.threads = threads.max(1);
        self
    }

    /// This configuration with a different worklist scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> RewriteConfig {
        self.scheduler = scheduler;
        self
    }

    /// Checks the fields every engine depends on, returning the first
    /// violation. Called by `run_engine`, `RewriteSession::new`, and the
    /// `rewrite` binary, so a bad configuration fails uniformly instead of
    /// panicking (or hanging) somewhere inside an engine.
    ///
    /// # Errors
    ///
    /// Returns the first offending field as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.runs == 0 {
            return Err(ConfigError::ZeroRuns);
        }
        if self.num_classes == 0 {
            return Err(ConfigError::ZeroClasses);
        }
        // NaN must be rejected, and it fails every ordered comparison, so
        // plain `< 1.0` would wave it through: require the finite check
        // first and the positive comparison second.
        if !self.headroom.is_finite() || self.headroom < 1.0 {
            return Err(ConfigError::HeadroomTooSmall {
                headroom: self.headroom,
            });
        }
        Ok(())
    }

    /// The number of regions the partition engine should use:
    /// [`RewriteConfig::partition_regions`], with `0` meaning
    /// `2 × threads`.
    pub fn effective_partition_regions(&self) -> usize {
        if self.partition_regions == 0 {
            self.threads.max(1) * 2
        } else {
            self.partition_regions
        }
    }

    /// The cut-enumeration configuration.
    pub fn cut_config(&self) -> CutConfig {
        if self.cut_limit == 0 {
            CutConfig::unlimited()
        } else {
            CutConfig::limited(self.cut_limit)
        }
    }

    /// Per-class allowance table (index = [`ClassId`]).
    pub fn allowed_classes(&self) -> Vec<bool> {
        let reg = ClassRegistry::global();
        let mut allowed = vec![false; reg.len()];
        for id in reg.practical(self.num_classes.min(reg.len())) {
            allowed[id as usize] = true;
        }
        allowed
    }

    /// Number of structures to scan for one class.
    pub fn structure_budget(&self, available: usize) -> usize {
        if self.max_structures == 0 {
            available
        } else {
            self.max_structures.min(available)
        }
    }

    /// Whether a class id passes the filter (convenience over
    /// [`RewriteConfig::allowed_classes`] for one-off queries).
    pub fn class_allowed(&self, allowed: &[bool], id: ClassId) -> bool {
        allowed.get(id as usize).copied().unwrap_or(false)
    }
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig::rewrite_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        let p2 = RewriteConfig::rewrite_op();
        assert_eq!(p2.num_classes, 134);
        assert_eq!(p2.cut_limit, 0);
        assert_eq!(p2.runs, 1);
        let p1 = RewriteConfig::p1();
        assert_eq!(p1.cut_limit, 8);
        assert_eq!(p1.max_structures, 5);
        assert_eq!(p1.runs, 2);
        assert_eq!(p1.num_classes, 134);
        let drw = RewriteConfig::drw_op();
        assert_eq!(drw.num_classes, 222);
    }

    #[test]
    fn class_filter_sizes() {
        let cfg = RewriteConfig::rewrite_op();
        let allowed = cfg.allowed_classes();
        assert_eq!(allowed.iter().filter(|&&b| b).count(), 134);
        let all = RewriteConfig::drw_op().allowed_classes();
        assert_eq!(all.iter().filter(|&&b| b).count(), 222);
    }

    #[test]
    fn validate_rejects_each_degenerate_field() {
        assert_eq!(RewriteConfig::rewrite_op().validate(), Ok(()));
        let cases = [
            (
                RewriteConfig {
                    threads: 0,
                    ..RewriteConfig::rewrite_op()
                },
                ConfigError::ZeroThreads,
            ),
            (
                RewriteConfig {
                    runs: 0,
                    ..RewriteConfig::rewrite_op()
                },
                ConfigError::ZeroRuns,
            ),
            (
                RewriteConfig {
                    num_classes: 0,
                    ..RewriteConfig::rewrite_op()
                },
                ConfigError::ZeroClasses,
            ),
            (
                RewriteConfig {
                    headroom: 0.5,
                    ..RewriteConfig::rewrite_op()
                },
                ConfigError::HeadroomTooSmall { headroom: 0.5 },
            ),
        ];
        // NaN and infinities are rejected too (they would previously slip
        // past `< 1.0` and abort deep inside the arena constructor).
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let cfg = RewriteConfig {
                headroom: bad,
                ..RewriteConfig::rewrite_op()
            };
            assert!(
                matches!(cfg.validate(), Err(ConfigError::HeadroomTooSmall { .. })),
                "headroom {bad} must be rejected"
            );
        }
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(), Err(want));
        }
        let err: dacpara_aig::AigError = ConfigError::ZeroThreads.into();
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    fn partition_regions_default_tracks_threads() {
        let cfg = RewriteConfig::rewrite_op().with_threads(4);
        assert_eq!(cfg.partition_regions, 0);
        assert_eq!(cfg.effective_partition_regions(), 8);
        let explicit = RewriteConfig {
            partition_regions: 3,
            ..cfg
        };
        assert_eq!(explicit.effective_partition_regions(), 3);
    }

    #[test]
    fn scheduler_defaults_to_steal_and_round_trips() {
        assert_eq!(RewriteConfig::rewrite_op().scheduler, SchedulerKind::Steal);
        assert_eq!(RewriteConfig::p1().scheduler, SchedulerKind::Steal);
        for kind in [SchedulerKind::Barrier, SchedulerKind::Steal] {
            assert_eq!(kind.name().parse(), Ok(kind));
        }
        let err = "fifo".parse::<SchedulerKind>().unwrap_err();
        assert!(err.to_string().contains("barrier"), "{err}");
        let cfg = RewriteConfig::rewrite_op().with_scheduler(SchedulerKind::Barrier);
        assert_eq!(cfg.scheduler, SchedulerKind::Barrier);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn structure_budget_caps() {
        let cfg = RewriteConfig::p1();
        assert_eq!(cfg.structure_budget(10), 5);
        assert_eq!(cfg.structure_budget(3), 3);
        let unlimited = RewriteConfig::rewrite_op();
        assert_eq!(unlimited.structure_budget(10), 10);
    }
}
