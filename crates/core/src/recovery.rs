//! Shared fault-handling plumbing for the resident concurrent engines.
//!
//! Two pieces live here. [`FirstError`] is the engines' shared error slot:
//! racing workers all report into it, the slot keeps the *first* error
//! deterministically (the previous `Mutex<Option<_>>` pattern was
//! last-writer-wins, so which error a failing pass returned depended on
//! thread timing), and every superseded report is counted — into
//! [`crate::RewriteStats::errors_observed`] and the `pass.errors_observed`
//! obs counter — so a fault burst is visible even though only one error
//! drives recovery. [`panic_message`] renders a `catch_unwind` payload for
//! [`dacpara_aig::AigError::WorkerPanicked`].
//!
//! The recovery *policy* (salvage, regrowth, validation) lives on
//! [`crate::RewriteSession`]; see `session.rs` and ARCHITECTURE §12.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dacpara_aig::AigError;
use parking_lot::Mutex;

/// Obs counter bumped once per superseded worker error.
pub(crate) const ERRORS_OBSERVED: &str = "pass.errors_observed";

/// A first-writer-wins error slot shared by one round of SPMD workers.
///
/// `record` keeps the first error and counts later ones; `is_set` is the
/// engines' `bail()` predicate — a single atomic load, cheap enough for
/// per-item polling inside the schedulers' drain loops.
#[derive(Default)]
pub(crate) struct FirstError {
    slot: Mutex<Option<AigError>>,
    set: AtomicBool,
    superseded: AtomicU64,
}

impl FirstError {
    pub(crate) fn new() -> FirstError {
        FirstError::default()
    }

    /// Stores `e` if the slot is empty; otherwise counts it as superseded
    /// (and bumps the `pass.errors_observed` obs counter at this leaf, so
    /// the stat and the export cannot drift).
    pub(crate) fn record(&self, e: AigError) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(e);
            self.set.store(true, Ordering::Release);
        } else {
            self.superseded.fetch_add(1, Ordering::Relaxed);
            if dacpara_obs::is_enabled() {
                dacpara_obs::counter(ERRORS_OBSERVED).incr();
            }
        }
    }

    /// Whether any error has been recorded (the team's bail signal).
    pub(crate) fn is_set(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Takes the kept error, leaving the slot empty.
    pub(crate) fn take(&self) -> Option<AigError> {
        self.set.store(false, Ordering::Release);
        self.slot.lock().take()
    }

    /// How many reports lost the race to an earlier error.
    pub(crate) fn superseded(&self) -> u64 {
        self.superseded.load(Ordering::Relaxed)
    }
}

/// Renders a `catch_unwind` payload as the human-readable message carried
/// by [`AigError::WorkerPanicked`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Wraps one replacement-operator invocation: a panic inside `f` becomes
/// `Err(AigError::WorkerPanicked)` instead of unwinding into the scheduler
/// (where it would poison a steal pool or strand a barrier team).
///
/// The operators mutate the shared graph only under all-or-nothing per-node
/// locks whose guards release on unwind, so the graph a contained panic
/// leaves behind is the same consistent graph a conflict-abort leaves —
/// that is what makes the salvage in `RewriteSession::recover` sound. The
/// `AssertUnwindSafe` is justified by the same argument.
pub(crate) fn contain_panic<T>(f: impl FnOnce() -> Result<T, AigError>) -> Result<T, AigError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(AigError::WorkerPanicked {
            message: panic_message(payload),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_error_wins_and_later_ones_are_counted() {
        let slot = FirstError::new();
        assert!(!slot.is_set());
        slot.record(AigError::CapacityExhausted { capacity: 1 });
        slot.record(AigError::CapacityExhausted { capacity: 2 });
        slot.record(AigError::Io("x".into()));
        assert!(slot.is_set());
        assert_eq!(slot.superseded(), 2);
        assert_eq!(
            slot.take(),
            Some(AigError::CapacityExhausted { capacity: 1 })
        );
        assert!(!slot.is_set());
    }

    #[test]
    fn contain_panic_converts_unwinds() {
        let ok = contain_panic(|| Ok::<_, AigError>(7));
        assert_eq!(ok.unwrap(), 7);
        let err = contain_panic(|| -> Result<(), AigError> { panic!("boom {}", 3) });
        match err {
            Err(AigError::WorkerPanicked { message }) => assert_eq!(message, "boom 3"),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
}
