//! The evaluation stage: pick the best replacement structure for a node.
//!
//! Evaluation is the paper's hot stage (>90% of rewriting runtime, §4.3)
//! and — crucially — it must not mutate the graph, so DACPara can run it
//! with *no locks at all*. All bookkeeping that ABC does by temporarily
//! dereferencing the graph is done here on thread-local scratch
//! ([`dacpara_aig::mffc::simulate_deref`]).

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use dacpara_aig::concurrent::ConcurrentAig;
use dacpara_aig::mffc::mffc_with_cut;
use dacpara_aig::{Aig, AigError, AigRead, Lit, NodeId};
use dacpara_cut::Cut;
use dacpara_npn::{canon, ClassId, ClassRegistry, NpnTransform, Tt4};
use dacpara_nst::{NpnLibrary, StructIn, Structure};
use dacpara_obs::LogHistogram;

use crate::RewriteConfig;

/// Cached observability handles for the evaluation hot path.
struct EvalObs {
    mffc_size: Arc<LogHistogram>,
}

fn eval_obs() -> &'static EvalObs {
    static HANDLES: OnceLock<EvalObs> = OnceLock::new();
    HANDLES.get_or_init(|| EvalObs {
        mffc_size: dacpara_obs::histogram("rewrite.mffc_size"),
    })
}

/// Shared, read-only context for evaluation.
#[derive(Clone)]
pub struct EvalContext {
    /// The structure library.
    pub lib: &'static NpnLibrary,
    /// The class registry.
    pub registry: &'static ClassRegistry,
    /// Per-class filter (index = class id).
    pub allowed: Vec<bool>,
    /// Structures scanned per class (`0` = all).
    pub max_structures: usize,
    /// Accept zero-gain candidates.
    pub use_zeros: bool,
    /// Reject candidates that raise the root's level.
    pub preserve_level: bool,
    /// Count logical sharing with existing nodes (the TCAD'23 emulation
    /// sets this to `false` — replacement cost ignores the structural
    /// hash, which is exactly the "static information" quality deficit the
    /// paper discusses).
    pub count_sharing: bool,
}

impl EvalContext {
    /// Builds the context for a configuration.
    pub fn new(cfg: &RewriteConfig) -> EvalContext {
        EvalContext {
            lib: if cfg.refined_library {
                NpnLibrary::global_refined()
            } else {
                NpnLibrary::global()
            },
            registry: ClassRegistry::global(),
            allowed: cfg.allowed_classes(),
            max_structures: cfg.max_structures,
            use_zeros: cfg.use_zeros,
            preserve_level: cfg.preserve_level,
            count_sharing: true,
        }
    }
}

impl std::fmt::Debug for EvalContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalContext")
            .field("allowed", &self.allowed.iter().filter(|&&b| b).count())
            .field("max_structures", &self.max_structures)
            .field("use_zeros", &self.use_zeros)
            .field("preserve_level", &self.preserve_level)
            .field("count_sharing", &self.count_sharing)
            .finish()
    }
}

/// A chosen replacement: what DACPara stores in `prepInfo` between the
/// evaluation and replacement stages (§4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The cut's leaves, sorted ascending.
    pub leaves: Vec<NodeId>,
    /// Generation stamps of the leaves at evaluation time — the staleness
    /// detector behind the paper's Fig. 3 discussion.
    pub leaf_gens: Vec<u32>,
    /// The cut function over the leaves.
    pub tt: Tt4,
    /// NPN class of the cut function.
    pub class: ClassId,
    /// Transform mapping the cut function onto the class representative.
    pub transform: NpnTransform,
    /// Index of the chosen structure within the class's library entry.
    pub struct_idx: usize,
    /// Evaluated gain (nodes saved − nodes added).
    pub gain: i32,
}

/// Outcome of mapping one structure onto the current graph.
#[derive(Debug)]
struct Mapping {
    added: u32,
    /// `Some` when the whole structure resolves to an existing literal.
    root: Option<Lit>,
    level: u32,
    /// Existing nodes the structure would share (the parallel engines must
    /// lock these before building).
    shared: Vec<NodeId>,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum MVal {
    Real(Lit),
    /// `idx`-th virtual (to-be-created) node, with edge complement.
    Virt(u16, bool),
}

impl MVal {
    fn xor(self, c: bool) -> MVal {
        match self {
            MVal::Real(l) => MVal::Real(l.xor(c)),
            MVal::Virt(i, neg) => MVal::Virt(i, neg ^ c),
        }
    }
}

/// Evaluates every (non-trivial) cut of `n` and returns the best
/// replacement candidate, if any beats the gain/level thresholds.
pub fn evaluate_node<V: AigRead + ?Sized>(
    view: &V,
    n: NodeId,
    cuts: &[Cut],
    ctx: &EvalContext,
) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;
    for cut in cuts {
        if cut.len() < 2 {
            continue;
        }
        if let Some(cand) = evaluate_cut(view, n, cut, ctx) {
            let better = match &best {
                None => true,
                Some(b) => cand.gain > b.gain,
            };
            if better {
                best = Some(cand);
            }
        }
    }
    best
}

/// Evaluates a single cut of `n`.
pub fn evaluate_cut<V: AigRead + ?Sized>(
    view: &V,
    n: NodeId,
    cut: &Cut,
    ctx: &EvalContext,
) -> Option<Candidate> {
    debug_assert!(cut.len() >= 2);
    let leaves = cut.leaves();
    let tt = cut.tt();
    let class = ctx.registry.class_of(tt);
    if !ctx.allowed[class as usize] {
        return None;
    }
    let freed = mffc_with_cut(view, n, leaves);
    if dacpara_obs::is_enabled() {
        eval_obs().mffc_size.record(freed.freed.len() as u64);
    }
    let saved = freed.saved() as i32;
    let unavailable: HashSet<NodeId> = freed.freed.iter().copied().collect();
    let (rep, transform) = canon(tt);
    debug_assert_eq!(rep, ctx.registry.representative(class));

    let structures = ctx.lib.structures(class);
    let budget = if ctx.max_structures == 0 {
        structures.len()
    } else {
        ctx.max_structures.min(structures.len())
    };

    let root_level = view.level(n);
    let mut best: Option<(i32, u32, u32, usize)> = None; // gain, added, level, idx
    for (si, s) in structures.iter().take(budget).enumerate() {
        let m = map_structure(view, s, &transform, leaves, &unavailable, ctx.count_sharing);
        if let Some(r) = m.root {
            if r.node() == n {
                continue; // identity replacement
            }
        }
        let gain = saved - m.added as i32;
        let gain_ok = gain > 0 || (ctx.use_zeros && gain >= 0);
        let level_ok = !ctx.preserve_level || m.level <= root_level;
        if !(gain_ok && level_ok) {
            continue;
        }
        let better = match best {
            None => true,
            Some((bg, ba, bl, _)) => {
                (gain, std::cmp::Reverse(m.added), std::cmp::Reverse(m.level))
                    > (bg, std::cmp::Reverse(ba), std::cmp::Reverse(bl))
            }
        };
        if better {
            best = Some((gain, m.added, m.level, si));
        }
    }
    best.map(|(gain, _, _, struct_idx)| Candidate {
        leaves: leaves.to_vec(),
        leaf_gens: leaves.iter().map(|&l| view.generation(l)).collect(),
        tt,
        class,
        transform,
        struct_idx,
        gain,
    })
}

/// Simulates building `structure` on the current graph: how many new nodes
/// would be needed given structural sharing, and what the new root's level
/// would be. Nodes in `unavailable` (the would-be-deleted MFFC) are not
/// counted as shareable.
fn map_structure<V: AigRead + ?Sized>(
    view: &V,
    structure: &Structure,
    transform: &NpnTransform,
    leaves: &[NodeId],
    unavailable: &HashSet<NodeId>,
    count_sharing: bool,
) -> Mapping {
    let (wiring, out_neg) = transform.wire();
    let leaf_val = |var: usize| -> (MVal, u32) {
        let (idx, neg) = wiring[var];
        let id = leaves[idx];
        (MVal::Real(Lit::new(id, neg)), view.level(id))
    };

    let mut added = 0u32;
    let mut shared: Vec<NodeId> = Vec::new();
    let mut vals: Vec<(MVal, u32)> = Vec::with_capacity(structure.size());
    let resolve = |input: StructIn, vals: &[(MVal, u32)]| -> (MVal, u32) {
        match input {
            StructIn::Const(b) => (MVal::Real(Lit::FALSE.xor(b)), 0),
            StructIn::Leaf { var, neg } => {
                let (v, lvl) = leaf_val(var as usize);
                (v.xor(neg), lvl)
            }
            StructIn::Gate { idx, neg } => {
                let (v, lvl) = vals[idx as usize];
                (v.xor(neg), lvl)
            }
        }
    };

    for gate in structure.gates() {
        let (va, la) = resolve(gate[0], &vals);
        let (vb, lb) = resolve(gate[1], &vals);
        let value = match (va, vb) {
            // Constant operands fold regardless of the other side.
            (MVal::Real(x), _) | (_, MVal::Real(x)) if x == Lit::FALSE => {
                (MVal::Real(Lit::FALSE), 0)
            }
            (MVal::Real(x), o) if x == Lit::TRUE => (o, lb),
            (o, MVal::Real(x)) if x == Lit::TRUE => (o, la),
            (MVal::Real(x), MVal::Real(y)) => {
                let (x, y) = if x <= y { (x, y) } else { (y, x) };
                if let Some(f) = Aig::fold_and(x, y) {
                    (MVal::Real(f), view.level(f.node()))
                } else if count_sharing {
                    match view.find_and(x, y) {
                        Some(g) if view.is_and(g) && !unavailable.contains(&g) => {
                            shared.push(g);
                            (MVal::Real(g.lit()), view.level(g))
                        }
                        _ => {
                            added += 1;
                            (MVal::Virt(added as u16, false), 1 + la.max(lb))
                        }
                    }
                } else {
                    added += 1;
                    (MVal::Virt(added as u16, false), 1 + la.max(lb))
                }
            }
            (MVal::Virt(i, ni), MVal::Virt(j, nj)) if i == j => {
                if ni == nj {
                    (MVal::Virt(i, ni), la)
                } else {
                    (MVal::Real(Lit::FALSE), 0)
                }
            }
            _ => {
                added += 1;
                (MVal::Virt(added as u16, false), 1 + la.max(lb))
            }
        };
        vals.push(value);
    }

    let (root, level) = resolve(structure.root(), &vals);
    let root = match root.xor(out_neg) {
        MVal::Real(l) => Some(l),
        MVal::Virt(..) => None,
    };
    Mapping {
        added,
        root,
        level,
        shared,
    }
}

/// Re-evaluation of a *specific* stored structure on the latest graph —
/// the paper's §4.4 requirement that "each replacement must obtain a
/// positive gain on the latest AIG". Also reports the existing nodes the
/// build would share, which the replacement operator must lock.
#[derive(Clone, Debug)]
pub struct Reevaluation {
    /// Nodes saved minus nodes added, on the current graph.
    pub gain: i32,
    /// Nodes that would be deleted (the cut-bounded MFFC, root first).
    pub freed: Vec<NodeId>,
    /// Existing nodes the structure build would reuse.
    pub shared_nodes: Vec<NodeId>,
    /// `Some` when the whole structure already exists as a literal.
    pub root: Option<Lit>,
    /// Level of the new root.
    pub level: u32,
}

/// Re-evaluates `cand`'s stored structure against the current graph.
/// The caller is responsible for `cand.tt`/`cand.transform` being valid for
/// the current graph (see `validity::verify_cut`).
pub fn reevaluate_structure<V: AigRead + ?Sized>(
    view: &V,
    n: NodeId,
    cand: &Candidate,
    ctx: &EvalContext,
) -> Reevaluation {
    let freed = mffc_with_cut(view, n, &cand.leaves);
    let saved = freed.saved() as i32;
    let unavailable: HashSet<NodeId> = freed.freed.iter().copied().collect();
    let structure = &ctx.lib.structures(cand.class)[cand.struct_idx];
    let m = map_structure(
        view,
        structure,
        &cand.transform,
        &cand.leaves,
        &unavailable,
        ctx.count_sharing,
    );
    let identity = m.root.is_some_and(|r| r.node() == n);
    let gain = if identity {
        i32::MIN
    } else {
        saved - m.added as i32
    };
    Reevaluation {
        gain,
        freed: freed.freed,
        shared_nodes: m.shared,
        root: m.root,
        level: m.level,
    }
}

/// Something that can create AND gates — lets the structure builder run on
/// both the serial and the concurrent graph.
pub trait AndBuilder {
    /// Creates (or finds) the AND of two literals.
    ///
    /// # Errors
    ///
    /// The concurrent implementation reports arena exhaustion.
    fn and(&mut self, a: Lit, b: Lit) -> Result<Lit, AigError>;
}

impl AndBuilder for Aig {
    fn and(&mut self, a: Lit, b: Lit) -> Result<Lit, AigError> {
        Ok(self.add_and(a, b))
    }
}

/// Concurrent builder: the caller must hold the engine locks on every node
/// that may serve as a fanin (cut leaves and shareable nodes).
impl AndBuilder for &ConcurrentAig {
    fn and(&mut self, a: Lit, b: Lit) -> Result<Lit, AigError> {
        self.add_and_locked(a, b)
    }
}

/// Materializes the candidate's structure on the graph and returns the new
/// root literal (which may be an existing node thanks to sharing).
///
/// # Errors
///
/// Propagates arena exhaustion from the concurrent builder.
pub fn build_replacement<B: AndBuilder>(
    builder: &mut B,
    cand: &Candidate,
    lib: &NpnLibrary,
) -> Result<Lit, AigError> {
    let structure = &lib.structures(cand.class)[cand.struct_idx];
    let (wiring, out_neg) = cand.transform.wire();
    let mut vals: Vec<Lit> = Vec::with_capacity(structure.size());
    let resolve = |input: StructIn, vals: &[Lit]| -> Lit {
        match input {
            StructIn::Const(b) => Lit::FALSE.xor(b),
            StructIn::Leaf { var, neg } => {
                let (idx, w_neg) = wiring[var as usize];
                Lit::new(cand.leaves[idx], w_neg ^ neg)
            }
            StructIn::Gate { idx, neg } => vals[idx as usize].xor(neg),
        }
    };
    for gate in structure.gates() {
        let a = resolve(gate[0], &vals);
        let b = resolve(gate[1], &vals);
        vals.push(builder.and(a, b)?);
    }
    Ok(resolve(structure.root(), &vals).xor(out_neg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_cut::{CutConfig, CutStore};
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    fn ctx() -> EvalContext {
        EvalContext::new(&RewriteConfig {
            num_classes: 222,
            preserve_level: false,
            ..RewriteConfig::rewrite_op()
        })
    }

    /// A deliberately wasteful majority: 2:1 muxes instead of the 4-gate
    /// optimum — evaluation must find a positive gain.
    fn wasteful_majority() -> (Aig, NodeId) {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        // maj(a,b,c) = a ? (b | c) : (b & c), built with a full mux.
        let or = aig.add_or(b, c);
        let and = aig.add_and(b, c);
        let m = aig.add_mux(a, or, and);
        aig.add_output(m);
        (aig, m.node())
    }

    #[test]
    fn finds_gain_on_redundant_cone() {
        let (aig, root) = wasteful_majority();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let cuts = store.cuts(&aig, root);
        let cand = evaluate_node(&aig, root, &cuts, &ctx()).expect("a candidate");
        assert!(cand.gain > 0, "gain {}", cand.gain);
        assert_eq!(cand.leaves.len(), 3);
    }

    #[test]
    fn replacement_preserves_function_and_realizes_gain() {
        let (mut aig, root) = wasteful_majority();
        let golden = aig.clone();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let cuts = store.cuts(&aig, root);
        let cand = evaluate_node(&aig, root, &cuts, &ctx()).unwrap();
        let before = dacpara_aig::AigRead::num_ands(&aig);
        let new_root = build_replacement(&mut aig, &cand, NpnLibrary::global()).unwrap();
        aig.replace(root, new_root);
        aig.check().unwrap();
        let after = dacpara_aig::AigRead::num_ands(&aig);
        assert_eq!(
            (before - after) as i32,
            cand.gain,
            "realized gain must equal evaluated gain"
        );
        assert_eq!(
            check_equivalence(&golden, &aig, &CecConfig::default()),
            CecResult::Equivalent
        );
    }

    #[test]
    fn no_candidate_on_already_optimal_cone() {
        // A single AND gate over two inputs cannot be improved.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let cuts = store.cuts(&aig, ab.node());
        assert_eq!(evaluate_node(&aig, ab.node(), &cuts, &ctx()), None);
    }

    #[test]
    fn class_filter_blocks_evaluation() {
        let (aig, root) = wasteful_majority();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let cuts = store.cuts(&aig, root);
        let mut blocked = ctx();
        blocked.allowed = vec![false; blocked.registry.len()];
        assert_eq!(evaluate_node(&aig, root, &cuts, &blocked), None);
    }

    #[test]
    fn preserve_level_rejects_deeper_structures() {
        let (aig, root) = wasteful_majority();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let cuts = store.cuts(&aig, root);
        let mut strict = ctx();
        strict.preserve_level = true;
        // With level preservation the engine may still find the 4-gate
        // majority (depth 2 <= mux depth 3); the candidate must respect it.
        if let Some(c) = evaluate_node(&aig, root, &cuts, &strict) {
            assert!(c.gain > 0);
        }
    }

    #[test]
    fn sharing_detection_reduces_added_cost() {
        // Saturate the graph with every 2-input AND/OR over (a, b, c) so
        // that, whatever orientation the NPN transform picks, the factored
        // majority structure finds its inner gates already present.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        for (x, y) in [(a, b), (a, c), (b, c)] {
            let and = aig.add_and(x, y);
            let or = aig.add_or(x, y);
            aig.add_output(and);
            aig.add_output(or);
        }
        // Wasteful mux-based majority on top (its or/and nodes are shared
        // with the pool, so they are not in the MFFC).
        let or = aig.add_or(b, c);
        let an = aig.add_and(b, c);
        let m = aig.add_mux(a, or, an);
        aig.add_output(m);
        let golden = aig.clone();

        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let cuts = store.cuts(&aig, m.node());
        let dynamic = evaluate_node(&aig, m.node(), &cuts, &ctx());
        let mut static_ctx = ctx();
        static_ctx.count_sharing = false;
        let static_ = evaluate_node(&aig, m.node(), &cuts, &static_ctx);

        // With sharing, the inner OR and AND of the factored majority are
        // free; without it, the structure costs as much as the cone saves.
        let dyn_gain = dynamic.as_ref().map(|c| c.gain).unwrap_or(0);
        let sta_gain = static_.map(|c| c.gain).unwrap_or(0);
        assert!(dyn_gain >= 1, "sharing-aware gain, got {dyn_gain}");
        assert!(
            dyn_gain > sta_gain,
            "sharing-aware gain {dyn_gain} must beat static {sta_gain}"
        );

        // Applying it must preserve the function.
        let cand = dynamic.expect("dynamic candidate");
        let new_root = build_replacement(&mut aig, &cand, NpnLibrary::global()).unwrap();
        aig.replace(m.node(), new_root);
        aig.check().unwrap();
        assert_eq!(
            check_equivalence(&golden, &aig, &CecConfig::default()),
            CecResult::Equivalent
        );
    }

    #[test]
    fn static_mode_ignores_sharing() {
        // Same saturated pool as above: sharing-aware evaluation finds a
        // positive-gain candidate, sharing-blind (TCAD'23-style) evaluation
        // finds none — the cone only pays off through reuse.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        for (x, y) in [(a, b), (a, c), (b, c)] {
            let and = aig.add_and(x, y);
            let or = aig.add_or(x, y);
            aig.add_output(and);
            aig.add_output(or);
        }
        let or = aig.add_or(b, c);
        let an = aig.add_and(b, c);
        let m = aig.add_mux(a, or, an);
        aig.add_output(m);

        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let cuts = store.cuts(&aig, m.node());
        let mut static_ctx = ctx();
        static_ctx.count_sharing = false;
        let dynamic = evaluate_node(&aig, m.node(), &cuts, &ctx());
        let static_ = evaluate_node(&aig, m.node(), &cuts, &static_ctx);
        assert!(dynamic.is_some(), "sharing-aware evaluation finds the gain");
        assert!(
            static_.is_none(),
            "sharing-blind evaluation must see no profit here, got {static_:?}"
        );
    }
}
