//! Per-pass statistics reported by every rewriting engine.

use std::time::Duration;

use dacpara_galois::{SchedSnapshot, SpecSnapshot};

/// Everything a rewriting pass reports — the raw material for the paper's
/// Tables 2/3 and Fig. 2.
#[derive(Clone, Debug, Default)]
pub struct RewriteStats {
    /// Engine name (`abc-rewrite`, `iccad18`, `dacpara`, …).
    pub engine: String,
    /// Wall-clock time of the pass (all runs).
    pub time: Duration,
    /// AND count before.
    pub area_before: usize,
    /// AND count after.
    pub area_after: usize,
    /// Depth before.
    pub delay_before: u32,
    /// Depth after.
    pub delay_after: u32,
    /// Replacements committed.
    pub replacements: u64,
    /// Nodes whose stored result was found stale and skipped (DACPara's
    /// "missed optimization opportunities", §5.2).
    pub stale_skipped: u64,
    /// Nodes whose stored cut was revalidated by re-enumeration.
    pub revalidated: u64,
    /// Candidate evaluations performed (stage-2 `evaluate_node` calls). A
    /// converged incremental pass reports zero — its evaluate stage never
    /// ran.
    pub evaluations: u64,
    /// Live AND nodes skipped because a session's dirty-set proved their
    /// neighborhood unchanged since the previous pass (incremental passes
    /// only; zero for fresh-state passes).
    pub clean_skipped: u64,
    /// Speculative-execution counters (conflicts/aborts/wasted work).
    pub spec: SpecSnapshot,
    /// Work-stealing scheduler counters (steals/retries/retry-commits).
    /// All-zero under the barrier scheduler and on serial engines.
    pub sched: SchedSnapshot,
    /// Number of level worklists processed (DACPara only).
    pub worklists: usize,
    /// Wall-clock per stage: enumeration, evaluation, replacement.
    pub stage_times: [Duration; 3],
    /// In-pass fault recoveries: how many times the pass salvaged committed
    /// work and resumed instead of returning `Err` (arena exhaustion and
    /// contained worker panics combined).
    pub recoveries: u64,
    /// Recoveries that re-homed the graph into a geometrically grown arena
    /// (the arena-exhaustion subset of [`RewriteStats::recoveries`], bounded
    /// by [`crate::RewriteConfig::max_regrowths`]).
    pub regrowths: u64,
    /// Replacements that had committed before a fault and were carried into
    /// the recovered graph rather than discarded.
    pub salvaged_commits: u64,
    /// Worker errors that raced an earlier error and were superseded by the
    /// deterministic first-error slot (the kept error is the one returned
    /// or recovered from).
    pub errors_observed: u64,
}

impl RewriteStats {
    /// Area reduction in AND gates (the paper's "Area Reduction" columns
    /// report the *removed* node count).
    pub fn area_reduction(&self) -> usize {
        self.area_before.saturating_sub(self.area_after)
    }

    /// Area reduction as a fraction of the original area.
    pub fn area_reduction_fraction(&self) -> f64 {
        if self.area_before == 0 {
            0.0
        } else {
            self.area_reduction() as f64 / self.area_before as f64
        }
    }

    /// One summary line for logs.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{}: {:.3}s area {} -> {} (-{}, {:.2}%) delay {} -> {} repl {} eval {} clean-skip {} [{}] [{}]",
            self.engine,
            self.time.as_secs_f64(),
            self.area_before,
            self.area_after,
            self.area_reduction(),
            self.area_reduction_fraction() * 100.0,
            self.delay_before,
            self.delay_after,
            self.replacements,
            self.evaluations,
            self.clean_skipped,
            self.spec,
            self.sched,
        );
        if self.recoveries > 0 || self.errors_observed > 0 {
            line.push_str(&format!(
                " [recov {} regrow {} salvaged {} superseded {}]",
                self.recoveries, self.regrowths, self.salvaged_commits, self.errors_observed
            ));
        }
        line
    }
}

impl std::fmt::Display for RewriteStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        let stats = RewriteStats {
            area_before: 1000,
            area_after: 900,
            ..Default::default()
        };
        assert_eq!(stats.area_reduction(), 100);
        assert!((stats.area_reduction_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reduction_never_underflows() {
        let stats = RewriteStats {
            area_before: 10,
            area_after: 20,
            ..Default::default()
        };
        assert_eq!(stats.area_reduction(), 0);
    }

    #[test]
    fn summary_mentions_engine() {
        let stats = RewriteStats {
            engine: "dacpara".into(),
            ..Default::default()
        };
        assert!(stats.summary().contains("dacpara"));
    }
}
