#![warn(missing_docs)]
//! DACPara: divide-and-conquer parallel logic rewriting, with baselines.
//!
//! This crate reproduces the paper's rewriting engines:
//!
//! * [`rewrite_serial`] — ABC's `rewrite` (the DAC'06 DAG-aware algorithm),
//! * [`rewrite_lockstep`] — the ICCAD'18 fine-grained parallel scheme: one
//!   Galois operator per node holding exclusive locks across enumeration,
//!   evaluation *and* replacement,
//! * [`rewrite_static`] — CPU re-implementations of the two GPU methods
//!   (DAC'22 "NovelRewrite", TCAD'23): parallel enumeration+evaluation on
//!   *static* global information followed by serial replacement,
//! * [`rewrite_dacpara`] — the paper's contribution: level-partitioned
//!   worklists processed in three separate parallel stages, a lock-free
//!   evaluation stage, and a replacement stage that validates stored cuts
//!   and re-evaluates gains on the latest graph (dynamic global
//!   information).
//!
//! # Example
//!
//! ```
//! use dacpara::{rewrite_dacpara, RewriteConfig};
//! use dacpara_circuits::arith;
//!
//! let mut aig = arith::multiplier(6);
//! let before = dacpara_aig::AigRead::num_ands(&aig);
//! let stats = rewrite_dacpara(&mut aig, &RewriteConfig::rewrite_op().with_threads(2))?;
//! assert!(stats.area_after <= before);
//! # Ok::<(), dacpara_aig::AigError>(())
//! ```

mod config;
mod dacpara_engine;
mod eval;
mod lockstep;
mod partition;
mod pass;
mod recovery;
mod serial;
mod session;
mod static_info;
mod stats;
pub mod testkit;
pub mod validity;

pub use config::{ConfigError, ParseSchedulerError, RewriteConfig, SchedulerKind};
pub use dacpara_engine::rewrite_dacpara;
pub use eval::{
    build_replacement, evaluate_cut, evaluate_node, reevaluate_structure, AndBuilder, Candidate,
    EvalContext, Reevaluation,
};
pub use lockstep::rewrite_lockstep;
pub use partition::rewrite_partition;
pub use pass::{optimize, run_engine, Engine, ParseEngineError};
pub use serial::rewrite_serial;
pub use session::RewriteSession;
pub use static_info::{rewrite_static, StaticMode};
pub use stats::RewriteStats;
