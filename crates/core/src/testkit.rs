//! Shared engine-matrix driver for differential test suites and the fuzzer.
//!
//! The differential suite (`tests/engines_differential.rs`), the recovery
//! suite and the `dacpara-fuzz` oracle all sweep the same space: every
//! parallel engine, under one or both worklist schedulers, across thread
//! counts, with the result checked for equivalence against the input and
//! for area against a serial baseline. This module is the single home for
//! that sweep so the fuzzer exercises exactly the configurations the test
//! suites pin down — a divergence found by one is replayable by the other.

use dacpara_aig::{Aig, AigRead};
use dacpara_equiv::{check_equivalence_budgeted, CecBudget, CecResult};

use crate::{run_engine, Engine, RewriteConfig, SchedulerKind};

/// The five parallel engines (everything except the serial baseline).
pub const PARALLEL_ENGINES: [Engine; 5] = [
    Engine::Iccad18,
    Engine::Dac22,
    Engine::Tcad23,
    Engine::DacPara,
    Engine::Partition,
];

/// The engines driven by the Galois runtime, i.e. the ones for which the
/// worklist scheduler choice ([`SchedulerKind`]) changes execution.
pub const GALOIS_ENGINES: [Engine; 2] = [Engine::DacPara, Engine::Iccad18];

/// The engine's paper configuration: the GPU emulations use the `drw`
/// setup, everything else the ABC `rewrite` operator setup.
pub fn base_cfg(engine: Engine) -> RewriteConfig {
    match engine {
        Engine::Dac22 | Engine::Tcad23 => RewriteConfig::drw_op(),
        _ => RewriteConfig::rewrite_op(),
    }
}

/// Engine-dependent envelope around the serial baseline, expressed as a
/// fraction of the reduction the serial order achieved.
///
/// * `dacpara` — §5.2 claims near-parity with the serial result; the suite's
///   observed worst case is ~7% of the serial reduction, so pin 10%.
/// * `iccad18` — the per-level commit order forfeits more rewrites that a
///   global ordering would chain (observed up to 15%); pin 25%.
/// * the static emulations and the coarse partitioner trade quality for
///   structure and on some circuits recover none of the serial reduction —
///   for them the pin is "never worse than the input netlist".
pub fn baseline_slack(engine: Engine, area_before: usize, serial_after: usize) -> usize {
    let reduction = area_before - serial_after;
    match engine {
        Engine::DacPara => 1 + reduction / 10,
        Engine::Iccad18 => 1 + reduction / 4,
        _ => reduction,
    }
}

/// One cell of the engine matrix: an engine, a scheduler and a thread count.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MatrixPoint {
    /// The rewriting engine under test.
    pub engine: Engine,
    /// Worklist scheduler (only observable on [`GALOIS_ENGINES`]).
    pub scheduler: SchedulerKind,
    /// Worker thread count.
    pub threads: usize,
}

impl MatrixPoint {
    /// The paper configuration for this cell.
    pub fn cfg(&self) -> RewriteConfig {
        base_cfg(self.engine)
            .with_threads(self.threads)
            .with_scheduler(self.scheduler)
    }

    /// Stable human-readable label (used in failure reports and corpus
    /// entries), e.g. `dacpara/steal/x4`.
    pub fn label(&self) -> String {
        format!("{}/{}/x{}", self.engine, self.scheduler, self.threads)
    }
}

impl std::fmt::Display for MatrixPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The full differential sweep: every engine in [`PARALLEL_ENGINES`] at
/// each of `threads`, with both schedulers for the [`GALOIS_ENGINES`] and
/// the default ([`SchedulerKind::Steal`]) for the rest.
pub fn engine_matrix(threads: &[usize]) -> Vec<MatrixPoint> {
    let mut points = Vec::new();
    for engine in PARALLEL_ENGINES {
        let schedulers: &[SchedulerKind] = if GALOIS_ENGINES.contains(&engine) {
            &[SchedulerKind::Steal, SchedulerKind::Barrier]
        } else {
            &[SchedulerKind::Steal]
        };
        for &scheduler in schedulers {
            for &threads in threads {
                points.push(MatrixPoint {
                    engine,
                    scheduler,
                    threads,
                });
            }
        }
    }
    points
}

/// Verdict of [`run_matrix_point`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatrixVerdict {
    /// The engine ran, the result passed the structural invariant checker
    /// and was (SAT-proven or sim-checked) equivalent to the input.
    Pass {
        /// AND count of the rewritten graph.
        area_after: usize,
    },
    /// The engine returned an error.
    EngineError(String),
    /// The rewritten graph failed [`Aig::check`].
    InvariantViolation(String),
    /// The rewritten graph is functionally different from the input.
    Inequivalent {
        /// A differing input assignment, when the checker produced one.
        counterexample: Vec<bool>,
    },
}

impl MatrixVerdict {
    /// Whether this verdict is a failure the fuzzer should report.
    pub fn is_failure(&self) -> bool {
        !matches!(self, MatrixVerdict::Pass { .. })
    }
}

/// Runs one matrix cell on a copy of `golden` and returns the verdict:
/// engine error, invariant violation, inequivalence, or pass.
///
/// Equivalence uses [`check_equivalence_budgeted`], so very large pairs are
/// only sim-checked; `Undecided` counts as a pass (the suites' long-standing
/// policy — refutation is the oracle's job, proofs are best-effort).
pub fn run_matrix_point(golden: &Aig, point: &MatrixPoint, budget: &CecBudget) -> MatrixVerdict {
    let cfg = point.cfg();
    let mut aig = golden.clone();
    if let Err(e) = run_engine(&mut aig, point.engine, &cfg) {
        return MatrixVerdict::EngineError(e.to_string());
    }
    if let Err(e) = aig.check() {
        return MatrixVerdict::InvariantViolation(e.to_string());
    }
    match check_equivalence_budgeted(golden, &aig, budget) {
        CecResult::Equivalent | CecResult::Undecided => MatrixVerdict::Pass {
            area_after: aig.num_ands(),
        },
        CecResult::Inequivalent(cex) => MatrixVerdict::Inequivalent {
            counterexample: cex,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::arith;

    #[test]
    fn matrix_covers_both_schedulers_for_galois_engines() {
        let points = engine_matrix(&[1, 2, 4]);
        // 2 Galois engines x 2 schedulers x 3 + 3 other engines x 1 x 3.
        assert_eq!(points.len(), 2 * 2 * 3 + 3 * 3);
        for engine in GALOIS_ENGINES {
            assert!(points
                .iter()
                .any(|p| p.engine == engine && p.scheduler == SchedulerKind::Barrier));
        }
    }

    #[test]
    fn matrix_point_passes_on_a_healthy_engine() {
        let golden = arith::multiplier(4);
        let point = MatrixPoint {
            engine: Engine::DacPara,
            scheduler: SchedulerKind::Steal,
            threads: 2,
        };
        match run_matrix_point(&golden, &point, &CecBudget::default()) {
            MatrixVerdict::Pass { area_after } => {
                assert!(area_after <= golden.num_ands());
            }
            other => panic!("expected a pass, got {other:?}"),
        }
        assert_eq!(point.label(), "dacpara/steal/x2");
    }
}
