//! CPU re-implementations of the static-global-information GPU rewriters.
//!
//! * **DAC'22 ("NovelRewrite")** — enumerate and evaluate *all* nodes once,
//!   in parallel, against the original (static) AIG, then perform *serial
//!   conditional replacement*: a stored result is applied only if its cut
//!   is still intact, using its **static** gain (no re-evaluation).
//! * **TCAD'23** — same two-phase shape, but evaluation ignores logical
//!   sharing entirely ("replaces all subgraphs based on static global
//!   information without considering logical sharing, and then merges
//!   logical equivalent nodes"); the merge falls out of this workspace's
//!   strash-canonical [`Aig::replace`].
//!
//! The original systems run phase one on a 9216-core GPU; the phase is
//! embarrassingly parallel and read-only, so a CPU thread team preserves
//! the algorithmic behaviour exactly (`DESIGN.md` §2). What the paper
//! compares — *quality* under static information — is hardware-independent.

use std::time::Instant;

use dacpara_aig::{Aig, AigError, AigRead};
use dacpara_cut::CutStore;
use dacpara_galois::{chunk_size, run_spmd, WorkQueue};
use parking_lot::Mutex;

use crate::eval::{build_replacement, evaluate_node, Candidate, EvalContext};
use crate::validity::verify_cut;
use crate::{RewriteConfig, RewriteStats};

/// Which static-information method to emulate.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StaticMode {
    /// DAC'22: sharing-aware static evaluation, conditional replacement.
    Conditional,
    /// TCAD'23: sharing-blind static evaluation, replacement + merge.
    Unconditional,
}

impl StaticMode {
    fn engine_name(self) -> &'static str {
        match self {
            StaticMode::Conditional => "dac22-static",
            StaticMode::Unconditional => "tcad23-static",
        }
    }
}

/// Runs the static-information rewriting emulation.
///
/// # Errors
///
/// Currently infallible (kept `Result` for interface parity with the
/// concurrent engines).
pub fn rewrite_static(
    aig: &mut Aig,
    cfg: &RewriteConfig,
    mode: StaticMode,
) -> Result<RewriteStats, AigError> {
    let start = Instant::now();
    let _pass_span = dacpara_obs::span!("rewrite_static", mode = mode);
    let mut ctx = EvalContext::new(cfg);
    ctx.count_sharing = mode == StaticMode::Conditional;
    let mut stats = RewriteStats {
        engine: mode.engine_name().into(),
        area_before: aig.num_ands(),
        delay_before: aig.depth(),
        ..Default::default()
    };

    for _ in 0..cfg.runs.max(1) {
        // ---- Phase A: parallel enumeration + evaluation on the static AIG.
        let t_eval = Instant::now();
        let order = dacpara_aig::topo_ands(aig);
        if order.is_empty() {
            // A gateless netlist (constants/wires only) has nothing to
            // enumerate, and further runs cannot create work.
            break;
        }
        let store = CutStore::new(aig.slot_count(), cfg.cut_config());
        let prep: Vec<Mutex<Option<Candidate>>> =
            (0..aig.slot_count()).map(|_| Mutex::new(None)).collect();
        let queue = WorkQueue::new(order.len());
        let chunk = chunk_size(order.len(), cfg.threads);
        {
            let (aig, order, store, prep, queue, ctx) =
                (&*aig, &order, &store, &prep, &queue, &ctx);
            run_spmd(cfg.threads, |_w| {
                while let Some(range) = queue.next_chunk(chunk) {
                    for i in range {
                        let n = order[i];
                        if AigRead::refs(aig, n) == 0 {
                            continue;
                        }
                        let cuts = {
                            let _obs = dacpara_obs::span("enumerate");
                            store.cuts(aig, n)
                        };
                        let _obs = dacpara_obs::span("evaluate");
                        *prep[n.index()].lock() = evaluate_node(aig, n, &cuts, ctx);
                    }
                }
            });
        }
        stats.stage_times[1] += t_eval.elapsed();

        // ---- Phase B: serial (conditional) replacement using static gains.
        let t_rep = Instant::now();
        let _obs = dacpara_obs::span("replace");
        for n in order {
            let Some(cand) = prep[n.index()].lock().take() else {
                continue;
            };
            if !aig.is_and(n) || AigRead::refs(aig, n) == 0 {
                stats.stale_skipped += 1;
                continue;
            }
            // Condition: the stored cut must still be intact (leaves alive
            // with unchanged generations) and still compute the function the
            // structure was selected for — otherwise replacing would corrupt
            // logic. Crucially, the *gain is not re-evaluated*: that is the
            // static-information deficit the paper measures.
            let intact = cand
                .leaves
                .iter()
                .zip(&cand.leaf_gens)
                .all(|(&l, &g)| aig.is_alive(l) && aig.generation(l) == g);
            if !intact {
                stats.stale_skipped += 1;
                continue;
            }
            match verify_cut(aig, n, &cand.leaves) {
                Some((_, tt)) if tt == cand.tt => {}
                _ => {
                    stats.stale_skipped += 1;
                    continue;
                }
            }
            let root = build_replacement(aig, &cand, ctx.lib)
                .expect("the serial builder cannot exhaust an arena");
            if root.node() != n {
                aig.replace(n, root);
                stats.replacements += 1;
            }
        }
        aig.cleanup();
        stats.stage_times[2] += t_rep.elapsed();
    }

    aig.recompute_levels();
    stats.area_after = aig.num_ands();
    stats.delay_after = aig.depth();
    stats.time = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::{arith, control, mtm, MtmParams};
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    fn cfg() -> RewriteConfig {
        RewriteConfig {
            num_classes: 222,
            threads: 3,
            ..RewriteConfig::rewrite_op()
        }
    }

    fn assert_equiv(before: &Aig, after: &Aig) {
        // Bounded SAT budget: a counterexample is always a failure; an
        // exhausted budget falls back on the (passing) simulation check.
        let cfg = CecConfig {
            sim_rounds: 32,
            max_conflicts: 100_000,
            seed: 0xDAC,
        };
        match check_equivalence(before, after, &cfg) {
            CecResult::Equivalent | CecResult::Undecided => {}
            CecResult::Inequivalent(_) => panic!("rewriting broke equivalence"),
        }
    }

    #[test]
    fn conditional_mode_is_sound() {
        let mut aig = control::voter(15);
        let golden = aig.clone();
        let stats = rewrite_static(&mut aig, &cfg(), StaticMode::Conditional).unwrap();
        aig.check().unwrap();
        assert!(stats.area_after <= stats.area_before);
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn unconditional_mode_is_sound() {
        let mut aig = arith::multiplier(6);
        let golden = aig.clone();
        let stats = rewrite_static(&mut aig, &cfg(), StaticMode::Unconditional).unwrap();
        aig.check().unwrap();
        let _ = stats;
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn static_quality_trails_dynamic_quality() {
        // The paper's central quality claim: static global information
        // leaves area on the table versus the (serial, fully dynamic)
        // baseline on complex circuits.
        let gen = || {
            mtm(&MtmParams {
                inputs: 32,
                gates: 3000,
                outputs: 16,
                seed: 99,
            })
        };
        let mut dynamic = gen();
        let dyn_stats = crate::rewrite_serial(&mut dynamic, &cfg()).unwrap();
        let mut static_ = gen();
        let sta_stats = rewrite_static(&mut static_, &cfg(), StaticMode::Unconditional).unwrap();
        assert!(
            dyn_stats.area_after <= sta_stats.area_after,
            "dynamic {} vs static {}",
            dyn_stats.summary(),
            sta_stats.summary()
        );
    }

    #[test]
    fn stale_results_are_skipped_not_misapplied() {
        let mut aig = control::voter(9);
        let golden = aig.clone();
        let stats = rewrite_static(&mut aig, &cfg(), StaticMode::Conditional).unwrap();
        // Overlapping cones make some stored results stale; they must be
        // counted, and equivalence must hold regardless.
        let _ = stats.stale_skipped;
        assert_equiv(&golden, &aig);
    }
}
