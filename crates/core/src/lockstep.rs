//! The ICCAD'18 fine-grained parallel rewriting scheme (Possani et al.).
//!
//! One Galois operator per node performs *all three* rewriting stages —
//! enumeration, evaluation, replacement — while holding exclusive locks on
//! every related node. A conflicting activity aborts and loses everything
//! it computed, including the (dominant) evaluation work; that wasted work
//! is what the paper's Fig. 2 contrasts with DACPara's split operators, and
//! it is recorded here in [`dacpara_galois::SpecStats`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dacpara_aig::concurrent::ConcurrentAig;
use dacpara_aig::{Aig, AigError, AigRead, NodeId};
use dacpara_cut::CutStore;
use dacpara_galois::{
    chunk_size, run_spmd, ItemOutcome, LockTable, SpecStats, StealPool, WorkQueue,
    MAX_SCHED_RETRIES,
};

use crate::eval::{build_replacement, evaluate_node, reevaluate_structure, EvalContext};
use crate::recovery::{contain_panic, FirstError};
use crate::session::RewriteSession;
use crate::validity::{cut_cover, verify_cut};
use crate::{Engine, RewriteConfig, RewriteStats, SchedulerKind};

/// Spin-then-yield backoff between speculative retries.
pub(crate) fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 32 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// How an operator responds to a speculative lock conflict.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum RetryPolicy {
    /// Spin-retry inline until the activity completes — the barrier
    /// scheduler's behavior, and the steal scheduler's guaranteed-progress
    /// fallback once an item has burned [`MAX_SCHED_RETRIES`] reschedules.
    Block,
    /// Hand the conflict back to the scheduler: the activity is re-enqueued
    /// on its worker's retry queue with backoff and the worker moves on to
    /// other items while the contended region clears.
    Yield,
}

/// What one combined-operator activity did.
enum CombinedOutcome {
    /// Committed an actual replacement.
    Replaced,
    /// Completed without changing the graph (stale skip, no valid cut, no
    /// positive gain, or a no-op rebuild).
    Finished,
    /// Aborted on a lock conflict under [`RetryPolicy::Yield`]; nothing is
    /// carried over — a retry recomputes enumeration and evaluation from
    /// scratch, exactly the waste the paper's Fig. 2 charges this scheme.
    Conflict,
}

/// Runs the combined-operator parallel rewriting pass.
///
/// # Errors
///
/// Returns [`AigError::CapacityExhausted`] if the arena headroom
/// ([`RewriteConfig::headroom`]) proves insufficient.
pub fn rewrite_lockstep(aig: &mut Aig, cfg: &RewriteConfig) -> Result<RewriteStats, AigError> {
    let mut session = RewriteSession::new(aig, cfg)?;
    let stats = session.run(Engine::Iccad18)?;
    *aig = session.finish();
    Ok(stats)
}

/// One ICCAD'18 pass on the session's resident state (full graph on the
/// first pass, dirty set afterwards, immediate return at a fixpoint).
///
/// Fault tolerance mirrors the DACPara engine: a round that ends with an
/// error (the team drains cooperatively through the error checks) hands its
/// first error to [`RewriteSession::recover`], which salvages committed
/// rewrites and — within its regrowth/panic budgets — re-homes the arena so
/// the same run can be redone instead of returning `Err`.
pub(crate) fn session_pass(sess: &mut RewriteSession) -> Result<RewriteStats, AigError> {
    let start = Instant::now();
    let _pass_span = dacpara_obs::span!("rewrite_lockstep", threads = sess.cfg.threads);
    let mut stats = RewriteStats {
        engine: "iccad18".into(),
        area_before: sess.shared.num_ands(),
        delay_before: sess.shared.depth(),
        ..Default::default()
    };
    let spec = SpecStats::new();
    let lock_base = sess.locks.stats().snapshot();
    let evaluations = AtomicU64::new(0);
    let pool = match sess.cfg.scheduler {
        SchedulerKind::Steal => Some(StealPool::new(sess.cfg.threads)),
        SchedulerKind::Barrier => None,
    };
    let mut worked = false;

    let runs = sess.cfg.runs.max(1);
    let mut run = 0;
    while run < runs {
        let (order, skipped) = sess.take_worklist();
        stats.clean_skipped += skipped;
        if order.is_empty() {
            run += 1;
            continue; // fixpoint: no operator runs at all
        }
        worked = true;
        let cfg = &sess.cfg;
        let (shared, store, locks, ctx) = (&sess.shared, &sess.store, &sess.locks, &sess.ctx);
        let queue = WorkQueue::new(order.len());
        let chunk = chunk_size(order.len(), cfg.threads);
        let error = FirstError::new();
        let replacements = AtomicU64::new(0);

        {
            let (order, queue, error, replacements, spec, evaluations) =
                (&order, &queue, &error, &replacements, &spec, &evaluations);
            let pool = pool.as_ref();
            if let Some(pool) = pool {
                pool.begin(order.len());
            }
            run_spmd(cfg.threads, |w| {
                let owner = w.id as u32 + 1;
                match pool {
                    // Work stealing: a conflict-aborted operator yields the
                    // item back to the scheduler instead of spin-retrying
                    // inline, until the retry ceiling forces it to block.
                    Some(pool) => pool.drive(w.id, |i, tries| {
                        if error.is_set() {
                            return ItemOutcome::Done;
                        }
                        let policy = if tries < MAX_SCHED_RETRIES {
                            RetryPolicy::Yield
                        } else {
                            RetryPolicy::Block
                        };
                        // Contain operator panics at the item boundary: the
                        // pool never sees an unwind, so it is not poisoned
                        // and the round drains normally while the error
                        // check above skips the rest.
                        match contain_panic(|| {
                            combined_operator(
                                shared,
                                store,
                                locks,
                                ctx,
                                order[i],
                                owner,
                                spec,
                                evaluations,
                                policy,
                            )
                        }) {
                            Ok(CombinedOutcome::Conflict) => ItemOutcome::Retry,
                            Ok(out) => {
                                if matches!(out, CombinedOutcome::Replaced) {
                                    replacements.fetch_add(1, Ordering::Relaxed);
                                }
                                if tries > 0 {
                                    pool.stats().record_retry_commit();
                                }
                                ItemOutcome::Done
                            }
                            Err(e) => {
                                error.record(e);
                                ItemOutcome::Done
                            }
                        }
                    }),
                    None => {
                        while let Some(range) = queue.next_chunk(chunk) {
                            if error.is_set() {
                                return;
                            }
                            for i in range {
                                // Contain panics here too: an unwind out of
                                // this closure would kill the worker thread
                                // and abort the whole process via the SPMD
                                // scope join.
                                match contain_panic(|| {
                                    combined_operator(
                                        shared,
                                        store,
                                        locks,
                                        ctx,
                                        order[i],
                                        owner,
                                        spec,
                                        evaluations,
                                        RetryPolicy::Block,
                                    )
                                }) {
                                    Ok(CombinedOutcome::Replaced) => {
                                        replacements.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Ok(_) => {}
                                    Err(e) => {
                                        error.record(e);
                                        return;
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
        stats.errors_observed += error.superseded();
        // `replacements` is fresh each round, so everything it counted this
        // round is either carried into stats on success or salvaged below.
        let committed = replacements.load(Ordering::Relaxed);
        stats.replacements += committed;
        match error.take() {
            None => {
                sess.canonicalize_and_sweep(true);
                sess.shared.recompute_levels();
                run += 1;
            }
            Some(e) => {
                // Salvage committed work and redo this run on the recovered
                // graph; `recover` propagates the error once its budget
                // (max_regrowths / panic backstop) is spent.
                sess.recover(e, &mut stats, committed)?;
            }
        }
    }

    stats.area_after = sess.shared.num_ands();
    stats.delay_after = sess.shared.depth();
    stats.evaluations = evaluations.load(Ordering::Relaxed);
    spec.merge_snapshot(&sess.locks.stats().snapshot().since(&lock_base));
    stats.spec = spec.snapshot();
    if let Some(pool) = &pool {
        stats.sched = pool.stats().snapshot();
    }
    stats.time = start.elapsed();
    sess.set_converged(!worked || (stats.replacements == 0 && sess.store.dirty_count() == 0));
    Ok(stats)
}

/// The single ICCAD'18-style operator: enumerate, lock everything related,
/// evaluate *while holding the locks*, then replace.
///
/// Every attempt (loop iteration) records exactly one Galois commit or
/// abort, so `commits + aborts == attempts` holds at quiescence.
#[allow(clippy::too_many_arguments)]
fn combined_operator(
    shared: &ConcurrentAig,
    store: &CutStore,
    locks: &LockTable,
    ctx: &EvalContext,
    n: NodeId,
    owner: u32,
    spec: &SpecStats,
    evaluations: &AtomicU64,
    policy: RetryPolicy,
) -> Result<CombinedOutcome, AigError> {
    // Injected before the first `record_attempt` so a contained panic never
    // breaks the exact `attempts == commits + aborts` accounting.
    if dacpara_fault::point(dacpara_fault::points::OPERATOR_PANIC) {
        panic!("injected fault: operator.panic");
    }
    let mut spins = 0u32;
    loop {
        let attempt = Instant::now();
        spec.record_attempt();
        if !shared.is_and(n) || shared.refs(n) == 0 {
            spec.record_commit(attempt.elapsed());
            return Ok(CombinedOutcome::Finished);
        }

        // Stage A: cut enumeration (results verified under locks below).
        let enum_span = dacpara_obs::span("enumerate");
        let cuts = store.try_cuts(shared, n);
        drop(enum_span);
        let Some(cuts) = cuts else {
            if !shared.is_and(n) {
                spec.record_commit(attempt.elapsed());
                return Ok(CombinedOutcome::Finished);
            }
            spec.record_abort(attempt.elapsed());
            if policy == RetryPolicy::Yield {
                return Ok(CombinedOutcome::Conflict);
            }
            backoff(&mut spins);
            continue;
        };

        // Lock "all related nodes": self, fanouts, every cut's cover and
        // leaves — acquired *before* evaluation, held throughout, exactly
        // the scheme whose serialization the paper criticizes. Cuts whose
        // cover cannot be collected (stale, or larger than the exploration
        // bound around high-fanout reconvergence) are simply dropped from
        // consideration — retrying could loop forever on a stable graph.
        let mut region: Vec<u32> = vec![n.raw()];
        region.extend(shared.fanout_ids(n).iter().map(|f| f.raw()));
        let mut usable: Vec<dacpara_cut::Cut> = Vec::with_capacity(cuts.len());
        for cut in cuts.iter().filter(|c| c.len() >= 2) {
            if let Some(cover) = cut_cover(shared, n, cut.leaves()) {
                region.extend(cover.iter().map(|c| c.raw()));
                region.extend(cut.leaves().iter().map(|l| l.raw()));
                usable.push(*cut);
            }
        }
        if usable.is_empty() {
            spec.record_commit(attempt.elapsed());
            return Ok(CombinedOutcome::Finished);
        }
        let Some(guard) = locks.try_acquire(owner, region) else {
            spec.record_abort(attempt.elapsed());
            if policy == RetryPolicy::Yield {
                return Ok(CombinedOutcome::Conflict);
            }
            backoff(&mut spins);
            continue;
        };

        // Under locks: keep only cuts whose function is confirmed on the
        // live graph (stale enumerations are dropped, not misapplied).
        let valid_cuts: Vec<_> = usable
            .iter()
            .filter(|c| matches!(verify_cut(shared, n, c.leaves()), Some((_, tt)) if tt == c.tt()))
            .copied()
            .collect();

        // Stage B: evaluation while holding every lock.
        let eval_span = dacpara_obs::span("evaluate");
        evaluations.fetch_add(1, Ordering::Relaxed);
        let cand = evaluate_node(shared, n, &valid_cuts, ctx);
        drop(eval_span);
        let Some(cand) = cand else {
            spec.record_commit(attempt.elapsed());
            return Ok(CombinedOutcome::Finished);
        };
        let re = reevaluate_structure(shared, n, &cand, ctx);
        let gain_ok = re.gain > 0 || (ctx.use_zeros && re.gain >= 0);
        if !gain_ok {
            spec.record_commit(attempt.elapsed());
            return Ok(CombinedOutcome::Finished);
        }

        // Shared (reused) nodes must be locked before mutation.
        let extra: Vec<u32> = re
            .shared_nodes
            .iter()
            .map(|s| s.raw())
            .filter(|id| guard.ids().binary_search(id).is_err())
            .collect();
        let _extra_guard = if extra.is_empty() {
            None
        } else {
            match locks.try_acquire(owner, extra) {
                Some(g) => Some(g),
                None => {
                    drop(guard);
                    // Everything — enumeration AND evaluation — is lost.
                    spec.record_abort(attempt.elapsed());
                    if policy == RetryPolicy::Yield {
                        return Ok(CombinedOutcome::Conflict);
                    }
                    backoff(&mut spins);
                    continue;
                }
            }
        };

        // Stage C: replacement. Invalidation happens only when the new
        // structure actually differs (a no-op must not re-dirty the fanout
        // cone, or a session would never converge) and the TFO walk must
        // precede `replace_locked`, which moves n's fanouts.
        let _obs = dacpara_obs::span("replace");
        let root = build_replacement(&mut &*shared, &cand, ctx.lib)?;
        let applied = root.node() != n;
        if applied {
            for &f in &re.freed {
                store.invalidate(f);
            }
            store.invalidate_tfo(shared, n);
            shared.replace_locked(n, root);
            // Everything whose evaluation could have changed lies in the
            // transitive fanout of the cut leaves.
            for &l in &cand.leaves {
                store.mark_dirty_tfo(shared, l);
            }
        }
        spec.record_commit(attempt.elapsed());
        return Ok(if applied {
            CombinedOutcome::Replaced
        } else {
            CombinedOutcome::Finished
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::{arith, control, mtm, MtmParams};
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    fn cfg(threads: usize) -> RewriteConfig {
        RewriteConfig {
            num_classes: 222,
            threads,
            ..RewriteConfig::rewrite_op()
        }
    }

    fn assert_equiv(before: &Aig, after: &Aig) {
        // Bounded SAT budget: a counterexample is always a failure; an
        // exhausted budget falls back on the (passing) simulation check.
        let cfg = CecConfig {
            sim_rounds: 32,
            max_conflicts: 100_000,
            seed: 0xDAC,
        };
        match check_equivalence(before, after, &cfg) {
            CecResult::Equivalent | CecResult::Undecided => {}
            CecResult::Inequivalent(_) => panic!("rewriting broke equivalence"),
        }
    }

    #[test]
    fn single_thread_matches_serial_soundness() {
        let mut aig = control::voter(15);
        let golden = aig.clone();
        let stats = rewrite_lockstep(&mut aig, &cfg(1)).unwrap();
        aig.check().unwrap();
        assert!(stats.area_reduction() > 0, "{}", stats.summary());
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn multi_thread_preserves_equivalence() {
        let mut aig = mtm(&MtmParams {
            inputs: 32,
            gates: 2000,
            outputs: 12,
            seed: 5,
        });
        let golden = aig.clone();
        let stats = rewrite_lockstep(&mut aig, &cfg(4)).unwrap();
        aig.check().unwrap();
        assert!(stats.area_after <= stats.area_before);
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn multiplier_under_contention() {
        let mut aig = arith::multiplier(8);
        let golden = aig.clone();
        rewrite_lockstep(&mut aig, &cfg(4)).unwrap();
        aig.check().unwrap();
        assert_equiv(&golden, &aig);
    }

    #[test]
    fn conflicts_are_observable_under_threads() {
        // High-fanout circuits under several threads should log at least
        // some speculative activity (commits always; conflicts usually).
        let mut aig = mtm(&MtmParams {
            inputs: 24,
            gates: 3000,
            outputs: 12,
            seed: 77,
        });
        let stats = rewrite_lockstep(&mut aig, &cfg(4)).unwrap();
        assert!(stats.spec.commits > 0);
    }
}
