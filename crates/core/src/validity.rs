//! Stored-cut validity checking (§4.4 of the paper).
//!
//! Between evaluation and replacement the graph keeps changing, so a stored
//! cut may be stale: its leaves may have been deleted, or — the subtle case
//! of the paper's Fig. 3 — deleted *and their slots recycled* by new nodes
//! with different functions. The replacement stage therefore re-derives,
//! under locks, everything it is about to rely on:
//!
//! * [`cut_cover`] — the nodes between the root and the claimed leaves;
//!   fails if the leaf set no longer cuts the root off from the inputs,
//! * [`cut_tt`] — the root's function over the leaves, recomputed from the
//!   live graph rather than trusted from the store.
//!
//! One nuance worth knowing: the truth table carried by cut *enumeration*
//! is composed bottom-up from child cuts, while [`cut_tt`] evaluates the
//! cover directly. When the cut's leaves are logically correlated (one
//! leaf's cone feeds another leaf), the two tables may differ on
//! *unreachable* leaf assignments — satisfiability don't-cares. Both are
//! sound bases for replacement (a replacement is only ever exercised at
//! reachable leaf values), so a table mismatch here routes the stored
//! result through the NPN-class acceptance test rather than rejecting it
//! outright, exactly as §4.4 prescribes.

use dacpara_aig::{AigRead, NodeId, NodeKind};
use dacpara_npn::Tt4;

/// Upper bound on the cover size explored before concluding "not a cut".
/// Genuine 4-input-cut covers are tiny; a huge exploration means the stored
/// leaf set no longer bounds the cone.
const MAX_COVER: usize = 128;

/// Computes the cover of the cut `(n, leaves)`: every node on a path from a
/// leaf to `n`, including `n`, excluding the leaves, in topological order.
///
/// Returns `None` when the leaf set is not (or no longer) a cut of `n` —
/// some path from `n` reaches an input, constant or dead slot without
/// passing a leaf — or when the exploration exceeds an internal bound.
pub fn cut_cover<V: AigRead + ?Sized>(
    view: &V,
    n: NodeId,
    leaves: &[NodeId],
) -> Option<Vec<NodeId>> {
    if leaves.contains(&n) {
        return Some(Vec::new()); // trivial cut: empty cover
    }
    let mut order = Vec::new();
    let mut seen: Vec<NodeId> = Vec::new();
    let mut stack: Vec<(NodeId, bool)> = vec![(n, false)];
    while let Some((x, done)) = stack.pop() {
        if done {
            order.push(x);
            continue;
        }
        if leaves.contains(&x) || seen.contains(&x) {
            continue;
        }
        if view.kind(x) != NodeKind::And {
            return None; // escaped the cone: not a cut
        }
        seen.push(x);
        if seen.len() > MAX_COVER {
            return None;
        }
        stack.push((x, true));
        let [a, b] = view.fanins(x);
        stack.push((a.node(), false));
        stack.push((b.node(), false));
    }
    Some(order)
}

/// Recomputes the function of `n` over `leaves` by evaluating the cover.
///
/// `cover` must come from [`cut_cover`] for the same `(n, leaves)`.
///
/// # Panics
///
/// Panics in debug builds if the cover is inconsistent with the graph.
pub fn cut_tt<V: AigRead + ?Sized>(
    view: &V,
    n: NodeId,
    leaves: &[NodeId],
    cover: &[NodeId],
) -> Tt4 {
    let value_of = |x: NodeId, values: &[(NodeId, Tt4)]| -> Tt4 {
        if let Some(pos) = leaves.iter().position(|&l| l == x) {
            return Tt4::var(pos);
        }
        if x == NodeId::CONST0 {
            return Tt4::FALSE;
        }
        values
            .iter()
            .rev()
            .find(|(id, _)| *id == x)
            .map(|(_, t)| *t)
            .expect("cover must close the cone")
    };
    if let Some(pos) = leaves.iter().position(|&l| l == n) {
        return Tt4::var(pos);
    }
    let mut values: Vec<(NodeId, Tt4)> = Vec::with_capacity(cover.len());
    for &x in cover {
        let [a, b] = view.fanins(x);
        let ta = value_of(a.node(), &values);
        let ta = if a.is_complement() { !ta } else { ta };
        let tb = value_of(b.node(), &values);
        let tb = if b.is_complement() { !tb } else { tb };
        values.push((x, ta & tb));
    }
    value_of(n, &values)
}

/// One-call verification: the cover if `leaves` still cut `n`, plus the
/// freshly recomputed truth table.
pub fn verify_cut<V: AigRead + ?Sized>(
    view: &V,
    n: NodeId,
    leaves: &[NodeId],
) -> Option<(Vec<NodeId>, Tt4)> {
    let cover = cut_cover(view, n, leaves)?;
    let tt = cut_tt(view, n, leaves, &cover);
    Some((cover, tt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_aig::{Aig, Lit};

    fn mux_cone() -> (Aig, NodeId, Vec<NodeId>) {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.add_mux(a, b, c);
        aig.add_output(m);
        let leaves = vec![a.node(), b.node(), c.node()];
        (aig, m.node(), leaves)
    }

    #[test]
    fn cover_and_tt_of_a_mux() {
        let (aig, root, leaves) = mux_cone();
        let (cover, tt) = verify_cut(&aig, root, &leaves).expect("valid cut");
        assert_eq!(cover.len(), 3);
        assert!(cover.contains(&root));
        // Cut functions are *node* functions; `add_mux` returns a
        // complemented literal (the OR is built via De Morgan), so the node
        // at `root` computes the complement of the mux.
        let mux = (Tt4::var(0) & Tt4::var(1)) | (!Tt4::var(0) & Tt4::var(2));
        assert_eq!(tt, !mux);
    }

    #[test]
    fn non_cut_is_rejected() {
        let (aig, root, leaves) = mux_cone();
        // Dropping one leaf exposes a path to an input: not a cut anymore.
        assert!(verify_cut(&aig, root, &leaves[..2]).is_none());
    }

    #[test]
    fn trivial_cut_has_empty_cover() {
        let (aig, root, _) = mux_cone();
        let (cover, tt) = verify_cut(&aig, root, &[root]).unwrap();
        assert!(cover.is_empty());
        assert_eq!(tt, Tt4::var(0));
    }

    #[test]
    fn detects_function_change_after_rewrite() {
        // The Fig. 3 scenario: a stored cut whose leaf slot is recycled by a
        // node with a different function must yield a different tt (or stop
        // being a cut), so the class check catches it.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.add_and(a, b);
        let top = aig.add_and(ab, c);
        aig.add_output(top);
        let leaves = vec![ab.node(), c.node()];
        let (_, tt_before) = verify_cut(&aig, top.node(), &leaves).unwrap();
        assert_eq!(tt_before, Tt4::var(0) & Tt4::var(1));
        // Rewrite ab -> OR(a, b): the slot of `ab` is deleted... but `top`
        // still references it, so replace() re-points top. We instead mimic
        // ID reuse: delete a *different* dangling node and let a new node
        // take `ab`'s slot.
        let or = aig.add_or(a, b);
        aig.replace(ab.node(), or);
        // The old leaf id may now be dead or recycled; verification must not
        // silently return the stale function.
        match verify_cut(&aig, top.node(), &leaves) {
            None => {} // no longer a cut: correctly rejected
            Some((_, tt_after)) => assert_ne!(tt_after, tt_before),
        }
    }

    #[test]
    fn cover_bound_rejects_runaway_exploration() {
        // A long chain whose "leaves" are near the bottom but missing one
        // input: exploration terminates with None, not a hang.
        let mut aig = Aig::new();
        let mut acc = aig.add_input();
        for _ in 0..200 {
            let x = aig.add_input();
            acc = aig.add_and(acc, x);
        }
        aig.add_output(acc);
        assert!(cut_cover(&aig, acc.node(), &[]).is_none());
    }

    #[test]
    fn tt_handles_complemented_edges() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let nor = aig.add_and(!a, !b);
        aig.add_output(nor);
        let leaves = vec![a.node(), b.node()];
        let (_, tt) = verify_cut(&aig, nor.node(), &leaves).unwrap();
        assert_eq!(tt, !Tt4::var(0) & !Tt4::var(1));
        let _ = Lit::TRUE;
    }
}
