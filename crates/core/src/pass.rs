//! Uniform driver over the rewriting engines.

use dacpara_aig::{Aig, AigError};

use crate::{
    rewrite_dacpara, rewrite_lockstep, rewrite_partition, rewrite_serial, rewrite_static,
    RewriteConfig, RewriteStats, StaticMode,
};

/// Which rewriting engine to run (one per comparison column of the paper).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Serial ABC `rewrite` (Table 2, "ABC (1 Thread)").
    AbcRewrite,
    /// ICCAD'18 combined-operator parallel rewriting.
    Iccad18,
    /// DAC'22 NovelRewrite emulation (static info, conditional replacement).
    Dac22,
    /// TCAD'23 emulation (static info, sharing-blind, merge afterwards).
    Tcad23,
    /// DACPara (this paper).
    DacPara,
    /// Partition-based coarse-grain parallelism (Liu & Zhang, FPGA'17 —
    /// the paper's reference [15]); regions default to `2 × threads`.
    Partition,
}

impl Engine {
    /// All engines, in the order the paper's tables list them.
    pub const ALL: [Engine; 6] = [
        Engine::AbcRewrite,
        Engine::Iccad18,
        Engine::Dac22,
        Engine::Tcad23,
        Engine::DacPara,
        Engine::Partition,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Engine::AbcRewrite => "abc-rewrite",
            Engine::Iccad18 => "iccad18",
            Engine::Dac22 => "dac22-static",
            Engine::Tcad23 => "tcad23-static",
            Engine::DacPara => "dacpara",
            Engine::Partition => "partition-fpga17",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs one engine over the graph, in place.
///
/// # Errors
///
/// Returns [`AigError::CapacityExhausted`] from the concurrent engines when
/// [`RewriteConfig::headroom`] is too small.
///
/// # Example
///
/// ```
/// use dacpara::{run_engine, Engine, RewriteConfig};
/// use dacpara_circuits::arith;
///
/// let mut aig = arith::adder(8);
/// let stats = run_engine(&mut aig, Engine::DacPara, &RewriteConfig::rewrite_op())?;
/// assert_eq!(stats.engine, "dacpara");
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub fn run_engine(
    aig: &mut Aig,
    engine: Engine,
    cfg: &RewriteConfig,
) -> Result<RewriteStats, AigError> {
    let _obs = dacpara_obs::span!("run_engine", engine = engine.name());
    match engine {
        Engine::AbcRewrite => Ok(rewrite_serial(aig, cfg)),
        Engine::Iccad18 => rewrite_lockstep(aig, cfg),
        Engine::Dac22 => rewrite_static(aig, cfg, StaticMode::Conditional),
        Engine::Tcad23 => rewrite_static(aig, cfg, StaticMode::Unconditional),
        Engine::DacPara => rewrite_dacpara(aig, cfg),
        Engine::Partition => rewrite_partition(aig, cfg, cfg.threads.max(1) * 2),
    }
}

/// Runs `engine` repeatedly (up to `max_passes`) until a pass stops
/// improving the area, returning the statistics of every pass that ran.
///
/// Logic rewriting is locally optimal, so real flows apply it several times
/// (§1 of the paper: "logic rewriting techniques are often applied many
/// times for optimization due to its local optimality").
///
/// # Errors
///
/// Propagates the first engine error.
///
/// # Example
///
/// ```
/// use dacpara::{optimize, Engine, RewriteConfig};
/// use dacpara_circuits::control;
///
/// let mut aig = control::voter(15);
/// let passes = optimize(&mut aig, Engine::DacPara, &RewriteConfig::rewrite_op(), 4)?;
/// assert!(!passes.is_empty());
/// // Area is monotonically non-increasing across passes.
/// for w in passes.windows(2) {
///     assert!(w[1].area_after <= w[0].area_after);
/// }
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub fn optimize(
    aig: &mut Aig,
    engine: Engine,
    cfg: &RewriteConfig,
    max_passes: usize,
) -> Result<Vec<RewriteStats>, AigError> {
    let mut all = Vec::new();
    for _ in 0..max_passes.max(1) {
        let stats = run_engine(aig, engine, cfg)?;
        let improved = stats.area_reduction() > 0;
        all.push(stats);
        if !improved {
            break;
        }
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::control;
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    #[test]
    fn every_engine_is_sound_on_the_same_input() {
        let golden = control::voter(11);
        let cfg = RewriteConfig {
            num_classes: 222,
            threads: 2,
            ..RewriteConfig::rewrite_op()
        };
        for engine in Engine::ALL {
            let mut aig = golden.clone();
            let stats = run_engine(&mut aig, engine, &cfg).unwrap();
            aig.check().unwrap();
            assert_eq!(stats.engine, engine.name());
            assert!(
                stats.area_after <= stats.area_before,
                "{engine} grew the graph"
            );
            assert_eq!(
                check_equivalence(&golden, &aig, &CecConfig::default()),
                CecResult::Equivalent,
                "{engine} broke equivalence"
            );
        }
    }

    #[test]
    fn optimize_converges_and_stays_sound() {
        let golden = control::voter(21);
        let mut aig = golden.clone();
        let cfg = RewriteConfig {
            num_classes: 222,
            ..RewriteConfig::rewrite_op()
        };
        let passes = optimize(&mut aig, Engine::AbcRewrite, &cfg, 6).unwrap();
        assert!(
            passes.len() >= 2,
            "needs at least one improving + one fixpoint pass"
        );
        assert_eq!(passes.last().unwrap().area_reduction(), 0, "converged");
        assert_eq!(
            check_equivalence(&golden, &aig, &CecConfig::default()),
            CecResult::Equivalent
        );
    }

    #[test]
    fn two_runs_reduce_at_least_as_much_as_one() {
        let golden = control::voter(21);
        let base = RewriteConfig {
            num_classes: 222,
            ..RewriteConfig::rewrite_op()
        };
        let mut one = golden.clone();
        let s1 = run_engine(&mut one, Engine::DacPara, &base).unwrap();
        let mut two = golden.clone();
        let s2 = run_engine(
            &mut two,
            Engine::DacPara,
            &RewriteConfig { runs: 2, ..base },
        )
        .unwrap();
        assert!(
            s2.area_after <= s1.area_after,
            "second run must not lose ground: {} vs {}",
            s2.area_after,
            s1.area_after
        );
    }

    #[test]
    fn engine_names_are_distinct() {
        let names: std::collections::HashSet<_> = Engine::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), Engine::ALL.len());
    }
}
