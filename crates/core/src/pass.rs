//! Uniform driver over the rewriting engines.

use dacpara_aig::{Aig, AigError};

use crate::{
    rewrite_dacpara, rewrite_lockstep, rewrite_partition, rewrite_serial, rewrite_static,
    RewriteConfig, RewriteSession, RewriteStats, StaticMode,
};

/// Which rewriting engine to run (one per comparison column of the paper).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Serial ABC `rewrite` (Table 2, "ABC (1 Thread)").
    AbcRewrite,
    /// ICCAD'18 combined-operator parallel rewriting.
    Iccad18,
    /// DAC'22 NovelRewrite emulation (static info, conditional replacement).
    Dac22,
    /// TCAD'23 emulation (static info, sharing-blind, merge afterwards).
    Tcad23,
    /// DACPara (this paper).
    DacPara,
    /// Partition-based coarse-grain parallelism (Liu & Zhang, FPGA'17 —
    /// the paper's reference [15]); regions default to `2 × threads`.
    Partition,
}

impl Engine {
    /// All engines, in the order the paper's tables list them.
    pub const ALL: [Engine; 6] = [
        Engine::AbcRewrite,
        Engine::Iccad18,
        Engine::Dac22,
        Engine::Tcad23,
        Engine::DacPara,
        Engine::Partition,
    ];

    /// Short name used in reports. [`Engine::from_str`] parses every name
    /// this returns, so `Engine::from_str(e.name()) == Ok(e)`.
    pub fn name(self) -> &'static str {
        match self {
            Engine::AbcRewrite => "abc-rewrite",
            Engine::Iccad18 => "iccad18",
            Engine::Dac22 => "dac22-static",
            Engine::Tcad23 => "tcad23-static",
            Engine::DacPara => "dacpara",
            Engine::Partition => "partition-fpga17",
        }
    }

    /// Comma-separated list of every engine name, for CLI help text.
    pub fn help_list() -> String {
        let names: Vec<&str> = Engine::ALL.iter().map(|e| e.name()).collect();
        names.join(", ")
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An engine name [`Engine::from_str`] did not recognize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseEngineError {
    input: String,
}

impl std::fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine {:?} (expected one of: {})",
            self.input,
            Engine::help_list()
        )
    }
}

impl std::error::Error for ParseEngineError {}

impl std::str::FromStr for Engine {
    type Err = ParseEngineError;

    /// Parses a canonical [`Engine::name`], or one of the short aliases the
    /// `rewrite` binary has historically accepted (`abc`, `dac22`, `tcad23`,
    /// `partition`).
    fn from_str(s: &str) -> Result<Engine, ParseEngineError> {
        if let Some(&e) = Engine::ALL.iter().find(|e| e.name() == s) {
            return Ok(e);
        }
        match s {
            "abc" => Ok(Engine::AbcRewrite),
            "dac22" => Ok(Engine::Dac22),
            "tcad23" => Ok(Engine::Tcad23),
            "partition" => Ok(Engine::Partition),
            _ => Err(ParseEngineError { input: s.into() }),
        }
    }
}

/// Runs one engine over the graph, in place. Every engine takes exactly
/// `(aig, cfg)` — engine-specific knobs (like the partition engine's region
/// count) live in [`RewriteConfig`].
///
/// # Errors
///
/// Returns the [`crate::ConfigError`] (mapped through [`AigError`]) if `cfg`
/// fails [`RewriteConfig::validate`], or
/// [`AigError::CapacityExhausted`] from the concurrent engines when
/// [`RewriteConfig::headroom`] is too small.
///
/// # Example
///
/// ```
/// use dacpara::{run_engine, Engine, RewriteConfig};
/// use dacpara_circuits::arith;
///
/// let mut aig = arith::adder(8);
/// let stats = run_engine(&mut aig, Engine::DacPara, &RewriteConfig::rewrite_op())?;
/// assert_eq!(stats.engine, "dacpara");
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub fn run_engine(
    aig: &mut Aig,
    engine: Engine,
    cfg: &RewriteConfig,
) -> Result<RewriteStats, AigError> {
    cfg.validate()?;
    let _obs = dacpara_obs::span!("run_engine", engine = engine.name());
    match engine {
        Engine::AbcRewrite => rewrite_serial(aig, cfg),
        Engine::Iccad18 => rewrite_lockstep(aig, cfg),
        Engine::Dac22 => rewrite_static(aig, cfg, StaticMode::Conditional),
        Engine::Tcad23 => rewrite_static(aig, cfg, StaticMode::Unconditional),
        Engine::DacPara => rewrite_dacpara(aig, cfg),
        Engine::Partition => rewrite_partition(aig, cfg),
    }
}

/// Runs `engine` repeatedly (up to `max_passes`) until a pass stops
/// improving the area, returning the statistics of every pass that ran.
///
/// Logic rewriting is locally optimal, so real flows apply it several times
/// (§1 of the paper: "logic rewriting techniques are often applied many
/// times for optimization due to its local optimality").
///
/// [`Engine::DacPara`] and [`Engine::Iccad18`] run on one
/// [`crate::RewriteSession`]: the arena, cut memo, lock table and candidate
/// storage are allocated once, and every pass after the first visits only
/// the nodes the previous pass dirtied (see
/// [`RewriteStats::clean_skipped`]).
///
/// # Errors
///
/// Propagates the first engine error.
///
/// # Example
///
/// ```
/// use dacpara::{optimize, Engine, RewriteConfig};
/// use dacpara_circuits::control;
///
/// let mut aig = control::voter(15);
/// let passes = optimize(&mut aig, Engine::DacPara, &RewriteConfig::rewrite_op(), 4)?;
/// assert!(!passes.is_empty());
/// // Area is monotonically non-increasing across passes.
/// for w in passes.windows(2) {
///     assert!(w[1].area_after <= w[0].area_after);
/// }
/// # Ok::<(), dacpara_aig::AigError>(())
/// ```
pub fn optimize(
    aig: &mut Aig,
    engine: Engine,
    cfg: &RewriteConfig,
    max_passes: usize,
) -> Result<Vec<RewriteStats>, AigError> {
    let mut all = Vec::new();
    match engine {
        Engine::DacPara | Engine::Iccad18 => {
            let mut session = RewriteSession::new(aig, cfg)?;
            for _ in 0..max_passes.max(1) {
                let stats = session.run(engine)?;
                let improved = stats.area_reduction() > 0;
                all.push(stats);
                if session.converged() || !improved {
                    break;
                }
            }
            *aig = session.finish();
        }
        Engine::AbcRewrite | Engine::Dac22 | Engine::Tcad23 | Engine::Partition => {
            for _ in 0..max_passes.max(1) {
                let stats = run_engine(aig, engine, cfg)?;
                let improved = stats.area_reduction() > 0;
                all.push(stats);
                if !improved {
                    break;
                }
            }
        }
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::control;
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    #[test]
    fn every_engine_is_sound_on_the_same_input() {
        let golden = control::voter(11);
        let cfg = RewriteConfig {
            num_classes: 222,
            threads: 2,
            ..RewriteConfig::rewrite_op()
        };
        for engine in Engine::ALL {
            let mut aig = golden.clone();
            let stats = run_engine(&mut aig, engine, &cfg).unwrap();
            aig.check().unwrap();
            assert_eq!(stats.engine, engine.name());
            assert!(
                stats.area_after <= stats.area_before,
                "{engine} grew the graph"
            );
            assert_eq!(
                check_equivalence(&golden, &aig, &CecConfig::default()),
                CecResult::Equivalent,
                "{engine} broke equivalence"
            );
        }
    }

    #[test]
    fn optimize_converges_and_stays_sound() {
        let golden = control::voter(21);
        let mut aig = golden.clone();
        let cfg = RewriteConfig {
            num_classes: 222,
            ..RewriteConfig::rewrite_op()
        };
        let passes = optimize(&mut aig, Engine::AbcRewrite, &cfg, 6).unwrap();
        assert!(
            passes.len() >= 2,
            "needs at least one improving + one fixpoint pass"
        );
        assert_eq!(passes.last().unwrap().area_reduction(), 0, "converged");
        assert_eq!(
            check_equivalence(&golden, &aig, &CecConfig::default()),
            CecResult::Equivalent
        );
    }

    #[test]
    fn two_runs_reduce_at_least_as_much_as_one() {
        let golden = control::voter(21);
        let base = RewriteConfig {
            num_classes: 222,
            ..RewriteConfig::rewrite_op()
        };
        let mut one = golden.clone();
        let s1 = run_engine(&mut one, Engine::DacPara, &base).unwrap();
        let mut two = golden.clone();
        let s2 = run_engine(
            &mut two,
            Engine::DacPara,
            &RewriteConfig { runs: 2, ..base },
        )
        .unwrap();
        assert!(
            s2.area_after <= s1.area_after,
            "second run must not lose ground: {} vs {}",
            s2.area_after,
            s1.area_after
        );
    }

    #[test]
    fn engine_names_are_distinct() {
        let names: std::collections::HashSet<_> = Engine::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), Engine::ALL.len());
    }

    #[test]
    fn engine_names_round_trip_through_from_str() {
        for e in Engine::ALL {
            assert_eq!(e.name().parse(), Ok(e));
        }
        // Historical CLI aliases stay accepted.
        assert_eq!("abc".parse(), Ok(Engine::AbcRewrite));
        assert_eq!("dac22".parse(), Ok(Engine::Dac22));
        assert_eq!("tcad23".parse(), Ok(Engine::Tcad23));
        assert_eq!("partition".parse(), Ok(Engine::Partition));
        let err = "no-such-engine".parse::<Engine>().unwrap_err();
        assert!(err.to_string().contains("dacpara"), "{err}");
        for e in Engine::ALL {
            assert!(Engine::help_list().contains(e.name()));
        }
    }

    #[test]
    fn run_engine_validates_config() {
        let mut aig = control::voter(11);
        let bad = RewriteConfig {
            runs: 0,
            ..RewriteConfig::rewrite_op()
        };
        for engine in Engine::ALL {
            let err = run_engine(&mut aig, engine, &bad).unwrap_err();
            assert!(err.to_string().contains("invalid configuration"));
        }
    }
}
