//! Drift guard: the speculation totals reported by `RewriteStats` must
//! agree exactly with what the obs layer recorded, because both are fed
//! from the same leaf-level `SpecStats::record_*` calls (never `merge`).
//! If an engine ever double-counts on merge, or an obs hook moves off the
//! leaf path, this test fails.
//!
//! Lives in its own integration-test file (= its own process) because it
//! drives the process-global registry; keep it to a single `#[test]`.

use std::collections::HashSet;

use dacpara::{run_engine, Engine, RewriteConfig};
use dacpara_circuits::{mtm, MtmParams};
use dacpara_fault::FaultPlan;

/// Extracts the set of `tid` values of compact trace events named `name`.
/// Event objects are compact and `args` is always the last key, so every
/// `"},{"` boundary separates whole events.
fn lanes_for(trace: &str, name: &str) -> HashSet<u64> {
    let needle = format!("\"name\":\"{name}\"");
    trace
        .split("},{")
        .filter(|chunk| chunk.contains(&needle))
        .map(|chunk| {
            let at = chunk.find("\"tid\":").expect("event has tid") + "\"tid\":".len();
            chunk[at..]
                .bytes()
                .take_while(u8::is_ascii_digit)
                .fold(0u64, |n, b| n * 10 + u64::from(b - b'0'))
        })
        .collect()
}

#[test]
fn spec_stats_match_obs_events() {
    dacpara_obs::reset();
    dacpara_obs::enable();

    let mut aig = mtm(&MtmParams {
        inputs: 40,
        gates: 4_000,
        outputs: 16,
        seed: 7,
    });
    let cfg = RewriteConfig::rewrite_op().with_threads(4);
    let stats = run_engine(&mut aig, Engine::DacPara, &cfg).expect("dacpara run");
    dacpara_obs::disable();

    assert!(stats.replacements > 0, "the run must actually rewrite");
    assert!(stats.spec.commits > 0, "the run must commit activities");
    assert_eq!(
        stats.spec.commits + stats.spec.aborts,
        stats.spec.attempts,
        "every attempt must end in exactly one commit or abort"
    );

    // 1. Aggregated RewriteStats vs. the obs sharded counters.
    let counter = |name: &'static str| dacpara_obs::counter(name).value();
    assert_eq!(stats.spec.attempts, counter("galois.attempts"));
    assert_eq!(stats.spec.conflicts, counter("galois.conflicts"));
    assert_eq!(stats.spec.commits, counter("galois.commits"));
    assert_eq!(stats.spec.aborts, counter("galois.aborts"));

    // 1b. The work-stealing scheduler counters follow the same leaf-only
    // discipline (the default config runs the steal scheduler).
    assert_eq!(stats.sched.steals, counter("sched.steals"));
    assert_eq!(stats.sched.retries, counter("sched.retries"));
    assert_eq!(stats.sched.retry_commits, counter("sched.retry_commits"));

    // 2. ... vs. the per-thread instant events in the exported trace.
    let trace = dacpara_obs::chrome_trace_to_string();
    let instants = |name: &str| {
        let needle = format!("\"name\":\"{name}\"");
        trace.matches(&needle).count() as u64
    };
    assert_eq!(stats.spec.conflicts, instants("spec.conflict"));
    assert_eq!(stats.spec.commits, instants("spec.commit"));
    assert_eq!(stats.spec.aborts, instants("spec.abort"));

    // 3. ... vs. the latency histograms (one sample per commit/abort).
    let histo_count = |name: &str| {
        dacpara_obs::global()
            .histogram_snapshots()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, s)| s.count)
    };
    assert_eq!(stats.spec.commits, histo_count("galois.commit_latency_ns"));
    assert_eq!(stats.spec.aborts, histo_count("galois.abort_latency_ns"));

    // The three pipeline stages must show up on at least two worker lanes —
    // i.e. the trace really exposes the parallel structure.
    for stage in ["enumerate", "evaluate", "replace"] {
        let lanes = lanes_for(&trace, stage);
        assert!(
            lanes.len() >= 2,
            "{stage} on {} lane(s); expected parallel workers",
            lanes.len()
        );
    }

    // 4. Recovery counters, fault-free: a comfortable-headroom run with no
    // injected faults must report no recoveries anywhere — stats and obs
    // agree on zero.
    assert_eq!(stats.recoveries, 0, "fault-free run recovered: {stats}");
    assert_eq!(
        stats.errors_observed, 0,
        "fault-free run saw errors: {stats}"
    );
    let recovery_counters = [
        "session.recoveries",
        "session.regrowths",
        "session.salvaged_commits",
        "pass.errors_observed",
    ];
    for name in recovery_counters {
        assert_eq!(counter(name), 0, "{name} drifted on a fault-free run");
    }

    // 5. Recovery counters, faulted: re-run the same circuit at minimal
    // headroom (real exhaustion → regrowth) with one injected operator
    // panic (→ panic recovery). Both feed the same session-level leaves as
    // the stats fields, so the counter deltas must equal the new run's
    // stats exactly.
    let base: Vec<u64> = recovery_counters.iter().map(|&n| counter(n)).collect();
    // The injected panic is contained by the engine; keep it off stderr
    // while letting real panics through.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.starts_with("injected fault:"));
        if !injected {
            prev_hook(info);
        }
    }));
    dacpara_obs::enable();
    let mut faulted = mtm(&MtmParams {
        inputs: 40,
        gates: 4_000,
        outputs: 16,
        seed: 7,
    });
    let faulted_cfg = RewriteConfig {
        headroom: 1.0,
        ..RewriteConfig::rewrite_op()
    }
    .with_threads(4);
    let plan = FaultPlan::parse("operator.panic=@3*1", 0x0B5).expect("valid spec");
    let faulted_stats = {
        let _inj = dacpara_fault::inject(&plan);
        run_engine(&mut faulted, Engine::DacPara, &faulted_cfg).expect("recovered run")
    };
    dacpara_obs::disable();
    faulted.check().expect("recovered graph is sound");
    assert!(
        faulted_stats.recoveries > faulted_stats.regrowths,
        "the injected panic must be recovered: {faulted_stats}"
    );
    let delta = |i: usize| counter(recovery_counters[i]) - base[i];
    assert_eq!(
        faulted_stats.recoveries,
        delta(0),
        "session.recoveries drift"
    );
    assert_eq!(faulted_stats.regrowths, delta(1), "session.regrowths drift");
    assert_eq!(
        faulted_stats.salvaged_commits,
        delta(2),
        "session.salvaged_commits drift"
    );
    assert_eq!(
        faulted_stats.errors_observed,
        delta(3),
        "pass.errors_observed drift"
    );
}
