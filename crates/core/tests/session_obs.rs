//! Acceptance check for incremental session passes, through the obs layer:
//! the second pass of a session flow must re-enumerate at most half of what
//! the first pass did (the long-lived cut memo and the dirty-set
//! restriction are doing real work), and a converged pass must not evaluate
//! anything at all — every live node shows up in `session.clean_skipped`.
//!
//! Lives in its own integration-test file (= its own process) because it
//! drives the process-global registry; keep it to a single `#[test]`.

use dacpara::{Engine, RewriteConfig, RewriteSession};
use dacpara_aig::AigRead;
use dacpara_circuits::arith;

#[test]
fn second_pass_reuses_first_pass_work() {
    dacpara_obs::reset();
    dacpara_obs::enable();

    let aig = arith::adder(10);
    let cfg = RewriteConfig {
        num_classes: 222,
        ..RewriteConfig::rewrite_op()
    };
    let misses = || dacpara_obs::counter("cut.memo_misses").value();
    let clean = || dacpara_obs::counter("session.clean_skipped").value();

    let mut sess = RewriteSession::new(&aig, &cfg).unwrap();
    let first = sess.run(Engine::DacPara).unwrap();
    let first_misses = misses();
    let second = sess.run(Engine::DacPara).unwrap();
    let second_misses = misses() - first_misses;

    assert!(
        first.evaluations > 0,
        "first pass evaluates the whole graph"
    );
    assert_eq!(first.clean_skipped, 0, "first pass has nothing to skip");
    assert!(first.replacements > 0, "the run must actually rewrite");
    assert!(
        second_misses * 2 <= first_misses,
        "pass 2 re-enumerated {second_misses} cuts vs {first_misses} in \
         pass 1; the reused memo must at least halve enumeration work"
    );
    assert!(
        second.evaluations < first.evaluations,
        "the dirty set must shrink the evaluate-stage worklist"
    );

    // Drive to the fixpoint: the converged pass skips every live AND node
    // and runs no evaluation at all.
    let mut total_evals = first.evaluations + second.evaluations;
    let mut last = second;
    for _ in 0..8 {
        if sess.converged() {
            break;
        }
        last = sess.run(Engine::DacPara).unwrap();
        total_evals += last.evaluations;
    }
    assert!(sess.converged(), "adder converges quickly: {last}");
    let clean_before_fix = clean();
    let fix = sess.run(Engine::DacPara).unwrap();
    assert_eq!(fix.evaluations, 0, "converged pass must not evaluate");
    assert!(fix.clean_skipped > 0, "every live node is skipped as clean");
    assert_eq!(
        clean() - clean_before_fix,
        fix.clean_skipped,
        "the obs counter and RewriteStats must agree on skipped nodes"
    );

    // The aggregated obs view of evaluations matches the per-pass totals
    // (the fixpoint pass contributes zero).
    assert_eq!(
        dacpara_obs::counter("rewrite.evaluations").value(),
        total_evals
    );

    dacpara_obs::disable();
    let out = sess.finish();
    out.check().unwrap();
    assert_eq!(out.num_ands(), fix.area_after);
}
