//! Multi-pass soundness of [`dacpara::RewriteSession`]: running a flow of
//! passes on one session (incremental dirty-set worklists, reused arena)
//! must land on the same final graph quality as rebuilding every pass from
//! scratch, and must stay CEC-equivalent to the input.

use dacpara::{optimize, run_engine, Engine, RewriteConfig, RewriteSession};
use dacpara_aig::{Aig, AigRead};
use dacpara_circuits::{arith, control};
use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

const MAX_PASSES: usize = 8;

fn cfg() -> RewriteConfig {
    // threads = 1 keeps both flows deterministic so the areas are
    // comparable exactly, not just statistically.
    RewriteConfig {
        num_classes: 222,
        ..RewriteConfig::rewrite_op()
    }
}

fn assert_equiv(golden: &Aig, aig: &Aig) {
    let cec = CecConfig {
        sim_rounds: 32,
        max_conflicts: 100_000,
        seed: 0xDAC,
    };
    match check_equivalence(golden, aig, &cec) {
        CecResult::Equivalent | CecResult::Undecided => {}
        CecResult::Inequivalent(_) => panic!("session passes broke equivalence"),
    }
}

/// Area after repeatedly running `engine` with fresh state every pass.
fn fresh_state_fixpoint(golden: &Aig, engine: Engine) -> usize {
    let mut aig = golden.clone();
    for _ in 0..MAX_PASSES {
        let stats = run_engine(&mut aig, engine, &cfg()).unwrap();
        if stats.area_reduction() == 0 {
            break;
        }
    }
    aig.num_ands()
}

fn session_matches_fresh(golden: &Aig, engine: Engine) {
    let fresh_area = fresh_state_fixpoint(golden, engine);

    let mut incremental = golden.clone();
    let passes = optimize(&mut incremental, engine, &cfg(), MAX_PASSES).unwrap();
    incremental.check().unwrap();
    assert_equiv(golden, &incremental);
    assert_eq!(
        incremental.num_ands(),
        fresh_area,
        "incremental {engine} flow diverged from fresh-state passes \
         ({} passes ran)",
        passes.len()
    );
    for w in passes.windows(2) {
        assert!(w[1].area_after <= w[0].area_after);
    }
}

#[test]
fn dacpara_session_matches_fresh_passes_on_voter() {
    session_matches_fresh(&control::voter(15), Engine::DacPara);
}

#[test]
fn dacpara_session_matches_fresh_passes_on_adder() {
    session_matches_fresh(&arith::adder(10), Engine::DacPara);
}

#[test]
fn iccad18_session_matches_fresh_passes_on_voter() {
    session_matches_fresh(&control::voter(15), Engine::Iccad18);
}

#[test]
fn converged_session_skips_the_evaluate_stage() {
    let golden = arith::adder(10);
    let mut sess = RewriteSession::new(&golden, &cfg()).unwrap();
    for _ in 0..MAX_PASSES {
        sess.run(Engine::DacPara).unwrap();
        if sess.converged() {
            break;
        }
    }
    assert!(sess.converged());
    let fix = sess.run(Engine::DacPara).unwrap();
    assert_eq!(fix.evaluations, 0, "fixpoint pass must not evaluate");
    assert_eq!(fix.replacements, 0);
    let out = sess.finish();
    out.check().unwrap();
    assert_equiv(&golden, &out);
}
