#![warn(missing_docs)]
//! Truth tables and NPN classification of 4-input Boolean functions.
//!
//! DAG-aware rewriting evaluates each 4-input cut against precomputed
//! replacement structures stored *per NPN class*: two functions are
//! NPN-equivalent when one can be obtained from the other by negating and/or
//! permuting inputs and possibly negating the output. The 65536 4-input
//! functions fall into exactly 222 such classes.
//!
//! This crate provides:
//!
//! * [`Tt4`] — 16-bit truth tables with cofactoring, support analysis,
//!   permutation and negation primitives,
//! * [`NpnTransform`] — the 768 NPN transforms, with the *inverse wiring*
//!   query a rewriter needs ([`NpnTransform::wire`]),
//! * [`canon`] — memoized canonicalization,
//! * [`ClassRegistry`] — the 222 classes, plus the "practical" subset
//!   mirroring ABC's 134-class `rewrite` configuration.
//!
//! # Example
//!
//! ```
//! use dacpara_npn::{canon, ClassRegistry, Tt4};
//!
//! let f = Tt4::var(0) & (Tt4::var(1) | Tt4::var(2));
//! let (rep, transform) = canon(f);
//! assert_eq!(transform.apply(f), rep);
//! let reg = ClassRegistry::global();
//! assert_eq!(reg.representative(reg.class_of(f)), rep);
//! ```

mod canon;
mod classes;
mod transform;
mod tt;

pub use canon::{canon, canon_uncached, npn_equivalent, orbit};
pub use classes::{ClassId, ClassRegistry};
pub use transform::{NpnTransform, PERMS};
pub use tt::{Tt4, VAR_TT};
