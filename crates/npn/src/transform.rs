//! NPN transforms: input negation, input permutation, output negation.

use crate::Tt4;

/// All 24 permutations of four elements, in lexicographic order.
pub const PERMS: [[u8; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// One of the 768 NPN transforms of a 4-input function.
///
/// Applying the transform to `f` yields `g` with
///
/// ```text
/// g(y0..y3) = output_neg ^ f(x0..x3),   x_i = y_perm[i] ^ input_neg[i]
/// ```
///
/// so [`NpnTransform::apply`] maps a function to (eventually) its canonical
/// representative, and [`NpnTransform::wire`] answers the inverse question a
/// rewriter needs: *given the leaves that feed `f`, which literals feed the
/// library structure that computes `g`?*
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct NpnTransform {
    /// Index into [`PERMS`].
    pub perm: u8,
    /// Bit `i` set means input `x_i` is negated.
    pub input_neg: u8,
    /// Whether the output is negated.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform.
    pub const IDENTITY: NpnTransform = NpnTransform {
        perm: 0,
        input_neg: 0,
        output_neg: false,
    };

    /// Iterator over all 768 transforms.
    pub fn all() -> impl Iterator<Item = NpnTransform> {
        (0..24u8).flat_map(|perm| {
            (0..16u8).flat_map(move |input_neg| {
                [false, true]
                    .into_iter()
                    .map(move |output_neg| NpnTransform {
                        perm,
                        input_neg,
                        output_neg,
                    })
            })
        })
    }

    /// Applies the transform to a truth table.
    pub fn apply(&self, f: Tt4) -> Tt4 {
        let perm = PERMS[self.perm as usize];
        let mut g = 0u16;
        for a in 0..16u16 {
            let mut b = 0u16;
            for (i, &p) in perm.iter().enumerate() {
                let y = a >> p & 1;
                b |= (y ^ (self.input_neg >> i & 1) as u16) << i;
            }
            if f.raw() >> b & 1 != 0 {
                g |= 1 << a;
            }
        }
        if self.output_neg {
            !Tt4::from_raw(g)
        } else {
            Tt4::from_raw(g)
        }
    }

    /// The inverse transform: `t.inverse().apply(t.apply(f)) == f` for every
    /// function `f` (and symmetrically, since inversion is an involution on
    /// the NPN group).
    ///
    /// With `t` mapping `x_i = y_perm[i] ^ neg_i`, the inverse permutation
    /// satisfies `perm'[j] = i` where `perm[i] = j`, each negation bit moves
    /// to its permuted slot (`neg'_j = neg_{perm'[j]}`), and the output
    /// negation is its own inverse.
    pub fn inverse(&self) -> NpnTransform {
        let perm = PERMS[self.perm as usize];
        let mut inv = [0u8; 4];
        for (i, &p) in perm.iter().enumerate() {
            inv[p as usize] = i as u8;
        }
        let perm_idx = PERMS
            .iter()
            .position(|p| *p == inv)
            .expect("every permutation's inverse is in PERMS") as u8;
        let mut input_neg = 0u8;
        for (j, &i) in inv.iter().enumerate() {
            input_neg |= (self.input_neg >> i & 1) << j;
        }
        NpnTransform {
            perm: perm_idx,
            input_neg,
            output_neg: self.output_neg,
        }
    }

    /// Rewires the four leaf slots of `f` into the input slots of the
    /// structure computing `apply(self, f)`.
    ///
    /// Returns `(wiring, output_neg)`: `wiring[j]` is `(leaf_index, negate)`
    /// — structure input `y_j` must be driven by leaf `leaf_index`,
    /// complemented when `negate` is true; the structure's output must be
    /// complemented when `output_neg` is true to recover `f`.
    pub fn wire(&self) -> ([(usize, bool); 4], bool) {
        let perm = PERMS[self.perm as usize];
        let mut wiring = [(0usize, false); 4];
        for i in 0..4 {
            // y_{perm[i]} = x_i ^ input_neg[i]
            wiring[perm[i] as usize] = (i, self.input_neg >> i & 1 != 0);
        }
        (wiring, self.output_neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_are_all_distinct_permutations() {
        for p in PERMS {
            let mut seen = [false; 4];
            for &x in &p {
                assert!(!seen[x as usize]);
                seen[x as usize] = true;
            }
        }
        let set: std::collections::HashSet<_> = PERMS.iter().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn identity_transform_is_identity() {
        let f = Tt4::from_raw(0x1ee7);
        assert_eq!(NpnTransform::IDENTITY.apply(f), f);
    }

    #[test]
    fn there_are_768_transforms() {
        assert_eq!(NpnTransform::all().count(), 768);
    }

    #[test]
    fn output_negation_complements() {
        let f = Tt4::from_raw(0xCAFE);
        let t = NpnTransform {
            perm: 0,
            input_neg: 0,
            output_neg: true,
        };
        assert_eq!(t.apply(f), !f);
    }

    #[test]
    fn inverse_round_trips_sampled_functions() {
        for f in [0u16, 1, 0xCAFE, 0x6996, 0x8000, 0xFFFF, 0x1ee7] {
            let f = Tt4::from_raw(f);
            for t in NpnTransform::all().step_by(5) {
                let inv = t.inverse();
                assert_eq!(inv.apply(t.apply(f)), f, "t={t:?}");
                assert_eq!(t.apply(inv.apply(f)), f, "t={t:?}");
            }
        }
    }

    #[test]
    fn inverse_is_involution_on_identity() {
        assert_eq!(NpnTransform::IDENTITY.inverse(), NpnTransform::IDENTITY);
    }

    #[test]
    fn wire_inverts_apply() {
        // For every transform t and function f: evaluating the transformed
        // function on the wired inputs (plus output fix-up) recovers f.
        let f = Tt4::from_raw(0x2b3d);
        for t in NpnTransform::all().step_by(7) {
            let g = t.apply(f);
            let (wiring, out_neg) = t.wire();
            for m in 0..16usize {
                let xs = [
                    m & 1 != 0,
                    m >> 1 & 1 != 0,
                    m >> 2 & 1 != 0,
                    m >> 3 & 1 != 0,
                ];
                let ys: [bool; 4] = std::array::from_fn(|j| {
                    let (leaf, neg) = wiring[j];
                    xs[leaf] ^ neg
                });
                let recovered = g.eval(ys) ^ out_neg;
                assert_eq!(recovered, f.eval(xs), "transform {t:?} minterm {m}");
            }
        }
    }
}
