//! NPN canonicalization of 4-input functions.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

use crate::{NpnTransform, Tt4};

/// Canonical representative of `f`'s NPN class: the minimum raw truth table
/// over all 768 transforms, together with one transform achieving it.
///
/// Results are memoized in a process-wide cache since rewriting
/// canonicalizes the same handful of functions over and over.
///
/// # Example
///
/// ```
/// use dacpara_npn::{canon, Tt4};
/// let (c1, _) = canon(Tt4::var(0));
/// let (c2, _) = canon(!Tt4::var(3));
/// assert_eq!(c1, c2); // all (possibly negated) projections share a class
/// ```
pub fn canon(f: Tt4) -> (Tt4, NpnTransform) {
    static CACHE: OnceLock<RwLock<HashMap<u16, (Tt4, NpnTransform)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(&hit) = cache.read().expect("npn cache poisoned").get(&f.raw()) {
        return hit;
    }
    let result = canon_uncached(f);
    cache
        .write()
        .expect("npn cache poisoned")
        .insert(f.raw(), result);
    result
}

/// Like [`canon`] but bypassing the memo cache.
pub fn canon_uncached(f: Tt4) -> (Tt4, NpnTransform) {
    let mut best = (Tt4::TRUE, NpnTransform::IDENTITY);
    let mut first = true;
    for t in NpnTransform::all() {
        let g = t.apply(f);
        if first || g < best.0 {
            best = (g, t);
            first = false;
        }
    }
    best
}

/// The full orbit of `f`: every function NPN-equivalent to it.
pub fn orbit(f: Tt4) -> Vec<Tt4> {
    let mut seen = vec![false; 1 << 16];
    let mut out = Vec::new();
    for t in NpnTransform::all() {
        let g = t.apply(f);
        if !seen[g.raw() as usize] {
            seen[g.raw() as usize] = true;
            out.push(g);
        }
    }
    out
}

/// Whether two functions are NPN-equivalent.
pub fn npn_equivalent(f: Tt4, g: Tt4) -> bool {
    canon(f).0 == canon(g).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_is_invariant_over_the_orbit() {
        let f = Tt4::from_raw(0x6996); // xor of the four variables
        let (c, _) = canon(f);
        for g in orbit(f).into_iter().take(50) {
            assert_eq!(canon(g).0, c);
        }
    }

    #[test]
    fn canon_transform_achieves_canon() {
        for raw in [0x0000u16, 0xFFFF, 0x8000, 0x1ee7, 0x6996, 0xCAFE] {
            let f = Tt4::from_raw(raw);
            let (c, t) = canon(f);
            assert_eq!(t.apply(f), c);
        }
    }

    #[test]
    fn constants_are_their_own_classes() {
        assert_eq!(canon(Tt4::FALSE).0, Tt4::FALSE);
        // TRUE canonicalizes to FALSE via output negation.
        assert_eq!(canon(Tt4::TRUE).0, Tt4::FALSE);
    }

    #[test]
    fn equivalence_is_symmetric() {
        let f = Tt4::var(0) & Tt4::var(1);
        let g = !(Tt4::var(2) | Tt4::var(3));
        assert!(npn_equivalent(f, g));
        assert!(npn_equivalent(g, f));
        assert!(!npn_equivalent(f, Tt4::var(0) ^ Tt4::var(1)));
    }
}
