//! Enumeration of the NPN equivalence classes of 4-input functions.
//!
//! There are exactly 222 classes over all 65536 functions — the number the
//! paper quotes for the DAG-aware rewriting library. ABC's `rewrite`
//! operator only evaluates against the 134 "practical" classes for which its
//! precomputed library carries subgraphs; [`ClassRegistry::practical`]
//! exposes an analogous subset (see `DESIGN.md` §2 for the substitution
//! rationale).

use std::sync::OnceLock;

use crate::{canon, NpnTransform, Tt4};

/// Identifier of an NPN class: its index among
/// [`ClassRegistry::representatives`].
pub type ClassId = u16;

/// Registry of every NPN class of 4-input functions.
///
/// # Example
///
/// ```
/// use dacpara_npn::{ClassRegistry, Tt4};
/// let reg = ClassRegistry::global();
/// assert_eq!(reg.len(), 222);
/// let id = reg.class_of(Tt4::var(0) & Tt4::var(1));
/// assert_eq!(reg.class_of(!(Tt4::var(2) | Tt4::var(3))), id);
/// ```
#[derive(Debug)]
pub struct ClassRegistry {
    /// Canonical representative of each class, sorted ascending.
    reps: Vec<Tt4>,
    /// Class of every function (indexed by raw truth table).
    class_of: Vec<ClassId>,
}

impl ClassRegistry {
    /// Builds the registry by orbit sweeping (a few hundred thousand
    /// transform applications — fast even in debug builds).
    fn build() -> ClassRegistry {
        let mut class_of = vec![u16::MAX; 1 << 16];
        let mut reps: Vec<Tt4> = Vec::new();
        for raw in 0..=u16::MAX {
            if class_of[raw as usize] != u16::MAX {
                continue;
            }
            let f = Tt4::from_raw(raw);
            // `raw` is the smallest unclassified function, hence the minimum
            // of its orbit, hence the canonical representative.
            let id = reps.len() as ClassId;
            reps.push(f);
            for t in NpnTransform::all() {
                let g = t.apply(f);
                class_of[g.raw() as usize] = id;
            }
        }
        ClassRegistry { reps, class_of }
    }

    /// The process-wide registry (built once on first use).
    pub fn global() -> &'static ClassRegistry {
        static REG: OnceLock<ClassRegistry> = OnceLock::new();
        REG.get_or_init(ClassRegistry::build)
    }

    /// Number of classes (222).
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// Whether the registry is empty (never, but required by convention).
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// Canonical representatives, ascending by raw truth table.
    pub fn representatives(&self) -> &[Tt4] {
        &self.reps
    }

    /// Class id of a function.
    pub fn class_of(&self, f: Tt4) -> ClassId {
        self.class_of[f.raw() as usize]
    }

    /// Canonical representative of a class.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn representative(&self, id: ClassId) -> Tt4 {
        self.reps[id as usize]
    }

    /// A transform mapping `f` onto its class representative.
    pub fn transform_to_rep(&self, f: Tt4) -> NpnTransform {
        let (c, t) = canon(f);
        debug_assert_eq!(c, self.representative(self.class_of(f)));
        t
    }

    /// The ids of the `k` "practical" classes, selected as those whose
    /// canonical representative depends on the fewest variables and, among
    /// ties, has the smallest raw table. ABC's `rewrite` uses the 134
    /// classes present in its precomputed library; the exact membership is
    /// not published, so this deterministic proxy is used instead (the
    /// experiments only need *a* fixed 134-class subset versus the full 222).
    pub fn practical(&self, k: usize) -> Vec<ClassId> {
        let mut ids: Vec<ClassId> = (0..self.len() as ClassId).collect();
        ids.sort_by_key(|&id| {
            let rep = self.representative(id);
            (rep.support_size(), rep.raw())
        });
        ids.truncate(k);
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_222_classes() {
        assert_eq!(ClassRegistry::global().len(), 222);
    }

    #[test]
    fn class_of_is_orbit_constant() {
        let reg = ClassRegistry::global();
        let f = Tt4::from_raw(0x1ee7);
        let id = reg.class_of(f);
        for t in NpnTransform::all().step_by(13) {
            assert_eq!(reg.class_of(t.apply(f)), id);
        }
    }

    #[test]
    fn representative_is_canonical_minimum() {
        let reg = ClassRegistry::global();
        for &rep in reg.representatives().iter().step_by(17) {
            assert_eq!(canon(rep).0, rep);
        }
    }

    #[test]
    fn transform_to_rep_lands_on_rep() {
        let reg = ClassRegistry::global();
        for raw in [0x8000u16, 0x7FFF, 0x6996, 0xDEAD] {
            let f = Tt4::from_raw(raw);
            let t = reg.transform_to_rep(f);
            assert_eq!(t.apply(f), reg.representative(reg.class_of(f)));
        }
    }

    #[test]
    fn practical_subset_is_deterministic_and_sorted() {
        let reg = ClassRegistry::global();
        let a = reg.practical(134);
        let b = reg.practical(134);
        assert_eq!(a, b);
        assert_eq!(a.len(), 134);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(reg.practical(222).len(), 222);
    }

    #[test]
    fn class_counts_by_support_match_the_literature() {
        // NPN classes of 4-input functions by exact support size:
        // constants 1, single-variable 1, 2-var 2, 3-var 10, 4-var 208
        // (totalling the well-known 222).
        let reg = ClassRegistry::global();
        let mut by_support = [0usize; 5];
        for &rep in reg.representatives() {
            by_support[rep.support_size()] += 1;
        }
        assert_eq!(by_support, [1, 1, 2, 10, 208]);
    }

    #[test]
    fn orbits_partition_the_function_space() {
        // Summing each representative's orbit size must cover all 65536
        // functions exactly once.
        let reg = ClassRegistry::global();
        let total: usize = reg
            .representatives()
            .iter()
            .map(|&rep| crate::orbit(rep).len())
            .sum();
        assert_eq!(total, 1 << 16);
    }

    #[test]
    fn every_function_has_a_class() {
        let reg = ClassRegistry::global();
        // Spot-check a spread of functions.
        for raw in (0..=u16::MAX).step_by(997) {
            let id = reg.class_of(Tt4::from_raw(raw));
            assert!((id as usize) < reg.len());
        }
    }
}
