//! Truth tables of Boolean functions over (up to) four variables.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Truth table of a 4-input Boolean function, one bit per minterm.
///
/// Bit `m` holds `f(x0, x1, x2, x3)` where `x_k` is bit `k` of `m`.
///
/// # Example
///
/// ```
/// use dacpara_npn::Tt4;
/// let x0 = Tt4::var(0);
/// let x1 = Tt4::var(1);
/// let and = x0 & x1;
/// assert_eq!(and.count_ones(), 4); // x2, x3 free
/// assert!(and.eval([true, true, false, false]));
/// assert!(!and.eval([true, false, false, false]));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tt4(u16);

/// Elementary truth tables of the four variables.
pub const VAR_TT: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

impl Tt4 {
    /// The constant-false function.
    pub const FALSE: Tt4 = Tt4(0x0000);
    /// The constant-true function.
    pub const TRUE: Tt4 = Tt4(0xFFFF);

    /// Builds a table from its raw 16-bit encoding.
    #[inline]
    pub const fn from_raw(bits: u16) -> Tt4 {
        Tt4(bits)
    }

    /// Raw 16-bit encoding.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The projection onto variable `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 4`.
    #[inline]
    pub const fn var(k: usize) -> Tt4 {
        Tt4(VAR_TT[k])
    }

    /// Evaluates the function on an assignment.
    #[inline]
    pub fn eval(self, xs: [bool; 4]) -> bool {
        let m =
            xs[0] as usize | (xs[1] as usize) << 1 | (xs[2] as usize) << 2 | (xs[3] as usize) << 3;
        self.0 >> m & 1 != 0
    }

    /// Bit `m` of the table.
    #[inline]
    pub fn bit(self, m: usize) -> bool {
        debug_assert!(m < 16);
        self.0 >> m & 1 != 0
    }

    /// Number of satisfying minterms.
    #[inline]
    pub fn count_ones(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the function is constant (true or false).
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 == 0 || self.0 == 0xFFFF
    }

    /// Positive cofactor with respect to variable `k`.
    #[inline]
    pub fn cofactor1(self, k: usize) -> Tt4 {
        let v = VAR_TT[k];
        let hi = self.0 & v;
        Tt4(hi | hi >> (1 << k))
    }

    /// Negative cofactor with respect to variable `k`.
    #[inline]
    pub fn cofactor0(self, k: usize) -> Tt4 {
        let v = !VAR_TT[k];
        let lo = self.0 & v;
        Tt4(lo | lo << (1 << k))
    }

    /// Whether the function depends on variable `k`.
    #[inline]
    pub fn depends_on(self, k: usize) -> bool {
        self.cofactor0(k) != self.cofactor1(k)
    }

    /// Bitmask of the variables the function depends on.
    pub fn support(self) -> u8 {
        let mut s = 0u8;
        for k in 0..4 {
            if self.depends_on(k) {
                s |= 1 << k;
            }
        }
        s
    }

    /// Number of variables the function depends on.
    pub fn support_size(self) -> usize {
        self.support().count_ones() as usize
    }

    /// The function with variable `k` negated.
    #[inline]
    pub fn flip_var(self, k: usize) -> Tt4 {
        let v = VAR_TT[k];
        let shift = 1 << k;
        Tt4((self.0 & v) >> shift | (self.0 & !v) << shift)
    }

    /// The function with its variables renamed: the result `g` satisfies
    /// `g(x0..x3) = self(x_perm[0], .., x_perm[3])`.
    pub fn permute(self, perm: [u8; 4]) -> Tt4 {
        let mut g = 0u16;
        for a in 0..16u16 {
            let mut b = 0u16;
            for (j, &p) in perm.iter().enumerate() {
                b |= (a >> p & 1) << j;
            }
            if self.0 >> b & 1 != 0 {
                g |= 1 << a;
            }
        }
        Tt4(g)
    }
}

impl Not for Tt4 {
    type Output = Tt4;
    #[inline]
    fn not(self) -> Tt4 {
        Tt4(!self.0)
    }
}

impl BitAnd for Tt4 {
    type Output = Tt4;
    #[inline]
    fn bitand(self, rhs: Tt4) -> Tt4 {
        Tt4(self.0 & rhs.0)
    }
}

impl BitOr for Tt4 {
    type Output = Tt4;
    #[inline]
    fn bitor(self, rhs: Tt4) -> Tt4 {
        Tt4(self.0 | rhs.0)
    }
}

impl BitXor for Tt4 {
    type Output = Tt4;
    #[inline]
    fn bitxor(self, rhs: Tt4) -> Tt4 {
        Tt4(self.0 ^ rhs.0)
    }
}

impl fmt::Debug for Tt4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tt4(0x{:04x})", self.0)
    }
}

impl fmt::Display for Tt4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

impl fmt::LowerHex for Tt4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Tt4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementary_tables_are_projections() {
        for k in 0..4 {
            let v = Tt4::var(k);
            for m in 0..16 {
                assert_eq!(v.bit(m), m >> k & 1 != 0);
            }
        }
    }

    #[test]
    fn cofactors_shannon_expand() {
        for raw in [0x8001u16, 0x1234, 0xCAFE, 0x6996] {
            let f = Tt4::from_raw(raw);
            for k in 0..4 {
                let x = Tt4::var(k);
                let expanded = (x & f.cofactor1(k)) | (!x & f.cofactor0(k));
                assert_eq!(expanded, f, "var {k} of {f}");
                assert!(!f.cofactor0(k).depends_on(k));
                assert!(!f.cofactor1(k).depends_on(k));
            }
        }
    }

    #[test]
    fn support_detects_dependence() {
        let f = Tt4::var(0) & Tt4::var(2);
        assert_eq!(f.support(), 0b0101);
        assert_eq!(f.support_size(), 2);
        assert_eq!(Tt4::TRUE.support(), 0);
    }

    #[test]
    fn flip_var_is_involution() {
        for raw in [0x8001u16, 0x1234, 0xCAFE] {
            let f = Tt4::from_raw(raw);
            for k in 0..4 {
                assert_eq!(f.flip_var(k).flip_var(k), f);
                // flipping changes evaluation accordingly
                for m in 0..16usize {
                    assert_eq!(f.flip_var(k).bit(m), f.bit(m ^ (1 << k)));
                }
            }
        }
    }

    #[test]
    fn permute_identity_and_composition() {
        let f = Tt4::from_raw(0x1ee7);
        assert_eq!(f.permute([0, 1, 2, 3]), f);
        let p = [2u8, 0, 3, 1];
        let q = [1u8, 3, 0, 2]; // inverse of p
        assert_eq!(f.permute(p).permute(q), f);
    }

    #[test]
    fn permute_swaps_variables() {
        let f = Tt4::var(0);
        let g = f.permute([1, 0, 2, 3]);
        assert_eq!(g, Tt4::var(1));
    }
}
