//! Exhaustive NPN round-trip over every 4-input function.
//!
//! For all 65536 truth tables: canonicalization must return a transform
//! that actually maps the function to its canonical representative, the
//! inverse transform must map it back exactly, and the set of distinct
//! representatives must be the textbook 222 NPN classes. This pins the
//! transform algebra (`apply`/`inverse`/`wire` composition) that every
//! engine's replacement builder leans on — a silent off-by-one in the
//! permutation tables would corrupt rewrites only on rare functions that
//! unit tests never sample.
//!
//! Ignored by default (it sweeps 65536 × 768 transform applications);
//! CI runs it in the release test step via `--ignored`.

use std::collections::HashSet;

use dacpara_npn::{canon_uncached, ClassRegistry, NpnTransform, Tt4};

#[test]
#[ignore = "exhaustive sweep; run with --ignored (CI release tests do)"]
fn all_65536_functions_round_trip_through_canon() {
    let registry = ClassRegistry::global();
    let mut representatives = HashSet::new();
    for raw in 0..=u16::MAX {
        let f = Tt4::from_raw(raw);
        let (canonical, t) = canon_uncached(f);
        assert_eq!(
            t.apply(f),
            canonical,
            "transform does not achieve the canonical form for {raw:#06x}"
        );
        assert_eq!(
            t.inverse().apply(canonical),
            f,
            "inverse transform does not restore {raw:#06x}"
        );
        // The canonical representative is its own canonical form, and the
        // registry agrees both functions live in the same class.
        assert_eq!(canon_uncached(canonical).0, canonical);
        assert_eq!(registry.class_of(f), registry.class_of(canonical));
        representatives.insert(canonical.raw());
    }
    assert_eq!(
        representatives.len(),
        222,
        "distinct canonical representatives must be the 222 NPN classes"
    );
}

#[test]
#[ignore = "exhaustive sweep; run with --ignored (CI release tests do)"]
fn inverse_composes_to_identity_for_every_transform() {
    // 768 transforms × a basket of functions: t⁻¹∘t and t∘t⁻¹ are both the
    // identity on every sampled point, and (t⁻¹)⁻¹ is t again.
    let basket: Vec<Tt4> = (0..=u16::MAX).step_by(257).map(Tt4::from_raw).collect();
    for t in NpnTransform::all() {
        let inv = t.inverse();
        assert_eq!(inv.inverse(), t);
        for &f in &basket {
            assert_eq!(inv.apply(t.apply(f)), f);
            assert_eq!(t.apply(inv.apply(f)), f);
        }
    }
}
