//! A hash-consed AND-inverter forest over four variables.
//!
//! The structure library is itself a miniature AIG whose primary inputs are
//! the four cut variables. Hash-consing makes structures generated for
//! different NPN classes share subgraphs, exactly like ABC's `Rwr_Man`
//! forest.

use std::collections::HashMap;

use dacpara_npn::Tt4;

/// Edge literal inside the forest: `2 * node + complement`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FLit(u32);

impl FLit {
    /// Constant false (node 0, plain).
    pub const FALSE: FLit = FLit(0);
    /// Constant true (node 0, complemented).
    pub const TRUE: FLit = FLit(1);

    fn new(node: u32, neg: bool) -> FLit {
        FLit(node << 1 | neg as u32)
    }

    /// The plain (non-complemented) literal on forest node `node`.
    pub fn positive(node: u32) -> FLit {
        FLit::new(node, false)
    }

    /// The forest node this literal points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }
}

impl std::ops::Not for FLit {
    type Output = FLit;
    fn not(self) -> FLit {
        FLit(self.0 ^ 1)
    }
}

#[derive(Clone, Debug)]
struct FNode {
    fanin: [FLit; 2],
    tt: Tt4,
    /// Number of gates in the node's cone (for cost ranking).
    cone_size: u32,
}

/// Hash-consed forest of AND gates over variables `x0..x3`.
///
/// Node 0 is the constant, nodes 1–4 the variables.
///
/// # Example
///
/// ```
/// use dacpara_nst::Forest;
/// use dacpara_npn::Tt4;
///
/// let mut forest = Forest::new();
/// let x0 = Forest::var(0);
/// let x1 = Forest::var(1);
/// let a = forest.add_and(x0, x1);
/// assert_eq!(forest.tt(a), Tt4::var(0) & Tt4::var(1));
/// assert_eq!(forest.add_and(x1, x0), a); // hash-consed
/// ```
#[derive(Clone, Debug)]
pub struct Forest {
    nodes: Vec<FNode>,
    strash: HashMap<(FLit, FLit), u32>,
}

impl Default for Forest {
    fn default() -> Self {
        Self::new()
    }
}

impl Forest {
    /// Creates a forest containing the constant and the four variables.
    pub fn new() -> Forest {
        let mut nodes = Vec::with_capacity(64);
        nodes.push(FNode {
            fanin: [FLit::FALSE; 2],
            tt: Tt4::FALSE,
            cone_size: 0,
        });
        for k in 0..4 {
            nodes.push(FNode {
                fanin: [FLit::FALSE; 2],
                tt: Tt4::var(k),
                cone_size: 0,
            });
        }
        Forest {
            nodes,
            strash: HashMap::new(),
        }
    }

    /// The literal of variable `k` (0..=3).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 4`.
    pub fn var(k: usize) -> FLit {
        assert!(k < 4);
        FLit::new(k as u32 + 1, false)
    }

    /// Number of nodes (constant + variables + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the forest holds no gates yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 5
    }

    /// The function computed by a literal.
    pub fn tt(&self, l: FLit) -> Tt4 {
        let t = self.nodes[l.node() as usize].tt;
        if l.is_complement() {
            !t
        } else {
            t
        }
    }

    /// Number of gates in the cone of `l`.
    pub fn cone_size(&self, l: FLit) -> u32 {
        self.nodes[l.node() as usize].cone_size
    }

    /// Fanins of a gate node.
    ///
    /// # Panics
    ///
    /// Panics if `l` points at a variable or the constant.
    pub fn fanins(&self, l: FLit) -> [FLit; 2] {
        assert!(l.node() >= 5, "no fanins on leaves");
        self.nodes[l.node() as usize].fanin
    }

    /// Whether the literal points at a gate (not a leaf or constant).
    pub fn is_gate(&self, l: FLit) -> bool {
        l.node() >= 5
    }

    /// AND with folding and hash-consing.
    pub fn add_and(&mut self, a: FLit, b: FLit) -> FLit {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        // One-level folding.
        if a == FLit::FALSE {
            return FLit::FALSE;
        }
        if a == FLit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if a.node() == b.node() {
            return FLit::FALSE;
        }
        if let Some(&n) = self.strash.get(&(a, b)) {
            return FLit::new(n, false);
        }
        let tt = self.tt(a) & self.tt(b);
        // Gate count of the cone: union of the two cones plus this gate —
        // approximate with an exact DFS (forests stay small).
        let cone_size = self.union_cone_size(a, b) + 1;
        let idx = self.nodes.len() as u32;
        self.nodes.push(FNode {
            fanin: [a, b],
            tt,
            cone_size,
        });
        self.strash.insert((a, b), idx);
        FLit::new(idx, false)
    }

    /// OR via De Morgan.
    pub fn add_or(&mut self, a: FLit, b: FLit) -> FLit {
        !self.add_and(!a, !b)
    }

    /// XOR (three gates).
    pub fn add_xor(&mut self, a: FLit, b: FLit) -> FLit {
        let x = self.add_and(a, !b);
        let y = self.add_and(!a, b);
        self.add_or(x, y)
    }

    /// Multiplexer `if s then t else e`.
    pub fn add_mux(&mut self, s: FLit, t: FLit, e: FLit) -> FLit {
        let st = self.add_and(s, t);
        let se = self.add_and(!s, e);
        self.add_or(st, se)
    }

    fn union_cone_size(&self, a: FLit, b: FLit) -> u32 {
        let mut seen: Vec<u32> = Vec::new();
        let mut stack = vec![a.node(), b.node()];
        let mut count = 0u32;
        while let Some(n) = stack.pop() {
            if n < 5 || seen.contains(&n) {
                continue;
            }
            seen.push(n);
            count += 1;
            let [fa, fb] = self.nodes[n as usize].fanin;
            stack.push(fa.node());
            stack.push(fb.node());
        }
        count
    }

    /// The gate nodes in the cone of `root`, in topological order.
    pub fn cone(&self, root: FLit) -> Vec<u32> {
        let mut order = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        let mut stack: Vec<(u32, bool)> = vec![(root.node(), false)];
        while let Some((n, done)) = stack.pop() {
            if n < 5 {
                continue;
            }
            if done {
                order.push(n);
                continue;
            }
            if seen.contains(&n) {
                continue;
            }
            seen.push(n);
            stack.push((n, true));
            let [a, b] = self.nodes[n as usize].fanin;
            stack.push((a.node(), false));
            stack.push((b.node(), false));
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_and_consing() {
        let mut f = Forest::new();
        let x = Forest::var(0);
        let y = Forest::var(1);
        assert_eq!(f.add_and(x, FLit::FALSE), FLit::FALSE);
        assert_eq!(f.add_and(x, FLit::TRUE), x);
        assert_eq!(f.add_and(x, !x), FLit::FALSE);
        let a = f.add_and(x, y);
        assert_eq!(f.add_and(y, x), a);
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn tts_compose() {
        let mut f = Forest::new();
        let x = Forest::var(0);
        let y = Forest::var(1);
        let z = Forest::var(2);
        let m = f.add_mux(x, y, z);
        let expect = (Tt4::var(0) & Tt4::var(1)) | (!Tt4::var(0) & Tt4::var(2));
        assert_eq!(f.tt(m), expect);
    }

    #[test]
    fn cone_sizes_count_gates() {
        let mut f = Forest::new();
        let x = Forest::var(0);
        let y = Forest::var(1);
        let a = f.add_and(x, y);
        let b = f.add_xor(x, y);
        assert_eq!(f.cone_size(a), 1);
        assert_eq!(f.cone_size(b), 3);
        assert_eq!(f.cone(b).len(), 3);
    }

    #[test]
    fn cone_is_topological() {
        let mut f = Forest::new();
        let x = Forest::var(0);
        let y = Forest::var(1);
        let z = Forest::var(2);
        let m = f.add_mux(x, y, z);
        let cone = f.cone(m);
        for (i, &n) in cone.iter().enumerate() {
            let [a, b] = f.nodes[n as usize].fanin;
            for l in [a, b] {
                if l.node() >= 5 {
                    let pos = cone.iter().position(|&c| c == l.node()).unwrap();
                    assert!(pos < i);
                }
            }
        }
    }
}
