//! Bounded bottom-up enumeration that *refines* the synthesized library:
//! starting from the best known implementation of every function reached so
//! far, repeatedly AND together cheap implementations (all four input
//! polarities) and keep any strictly better result. This recovers
//! optimal-size structures that decomposition heuristics miss, in the
//! spirit of how ABC's precomputed library was originally enumerated.

use std::collections::HashMap;

use dacpara_npn::Tt4;

use crate::forest::{FLit, Forest};

/// Parameters of the refinement sweep.
#[derive(Copy, Clone, Debug)]
pub struct RefineParams {
    /// Enumeration rounds (each round combines current best implementations).
    pub rounds: usize,
    /// Only implementations with at most this many gates participate as
    /// operands (bounds the quadratic pair loop).
    pub max_operand_cost: u32,
    /// Results larger than this are not recorded.
    pub max_result_cost: u32,
    /// At most this many cheapest operands participate per round.
    pub max_operands: usize,
}

impl Default for RefineParams {
    fn default() -> Self {
        RefineParams {
            rounds: 3,
            max_operand_cost: 5,
            max_result_cost: 11,
            max_operands: 1200,
        }
    }
}

/// Tracks the cheapest known forest literal per function.
#[derive(Debug, Default)]
pub struct BestTable {
    best: HashMap<u16, FLit>,
}

impl BestTable {
    /// Creates an empty table.
    pub fn new() -> BestTable {
        BestTable::default()
    }

    /// Records `lit` (computing `tt` in `forest`) if it beats the current
    /// best; the complemented entry is recorded for free (complements live
    /// on edges). Returns whether the table changed.
    pub fn record(&mut self, forest: &Forest, tt: Tt4, lit: FLit) -> bool {
        let cost = forest.cone_size(lit);
        let mut changed = false;
        for (t, l) in [(tt, lit), (!tt, !lit)] {
            match self.best.get(&t.raw()) {
                Some(&old) if forest.cone_size(old) <= cost => {}
                _ => {
                    self.best.insert(t.raw(), l);
                    changed = true;
                }
            }
        }
        changed
    }

    /// The cheapest known implementation of `tt`, if any.
    pub fn get(&self, tt: Tt4) -> Option<FLit> {
        self.best.get(&tt.raw()).copied()
    }

    /// Number of distinct functions with a known implementation.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// Whether no function has been recorded.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }
}

/// Seeds a [`BestTable`] from every node already present in `forest`.
pub fn seed_from_forest(forest: &Forest, table: &mut BestTable) {
    // Constants and variables.
    table.record(forest, Tt4::FALSE, FLit::FALSE);
    for k in 0..4 {
        table.record(forest, Tt4::var(k), Forest::var(k));
    }
    for node in 5..forest.len() as u32 {
        let lit = FLit::positive(node);
        table.record(forest, forest.tt(lit), lit);
    }
}

/// Runs the bounded enumeration; returns how many functions got a strictly
/// cheaper implementation.
pub fn refine(forest: &mut Forest, table: &mut BestTable, params: &RefineParams) -> usize {
    let mut improvements = 0usize;
    for _ in 0..params.rounds {
        // Snapshot the cheap operands, cheapest first.
        let mut operands: Vec<FLit> = table
            .best
            .values()
            .copied()
            .filter(|&l| forest.cone_size(l) <= params.max_operand_cost)
            .collect();
        operands.sort_by_key(|&l| forest.cone_size(l));
        operands.dedup();
        operands.truncate(params.max_operands);

        let mut round_improved = 0usize;
        for i in 0..operands.len() {
            for j in i..operands.len() {
                let (a, b) = (operands[i], operands[j]);
                if forest.cone_size(a) + forest.cone_size(b) + 1 > params.max_result_cost {
                    // Operands are sorted by cost; later `j` only get bigger.
                    break;
                }
                for (ca, cb) in [(false, false), (false, true), (true, false), (true, true)] {
                    let la = if ca { !a } else { a };
                    let lb = if cb { !b } else { b };
                    let tt = forest.tt(la) & forest.tt(lb);
                    if tt == Tt4::FALSE || tt == Tt4::TRUE {
                        continue;
                    }
                    // Conservative pre-check: the new node costs at most
                    // cost(a) + cost(b) + 1 (sharing can only lower it); if
                    // the current best is already within that bound, skip
                    // without allocating. This may miss sharing-driven wins
                    // but keeps the sweep cheap.
                    let bound = forest.cone_size(la) + forest.cone_size(lb) + 1;
                    if let Some(existing) = table.get(tt) {
                        if forest.cone_size(existing) <= bound.saturating_sub(bound / 4) {
                            continue;
                        }
                    }
                    let lit = forest.add_and(la, lb);
                    if table.record(forest, tt, lit) {
                        round_improved += 1;
                    }
                }
            }
        }
        improvements += round_improved;
        if round_improved == 0 {
            break;
        }
    }
    improvements
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shannon::{synthesize_candidates, BuildMemo};
    use dacpara_npn::ClassRegistry;

    fn seeded() -> (Forest, BestTable) {
        let mut forest = Forest::new();
        let mut memo = BuildMemo::new();
        // Seed with the decomposition candidates of a spread of classes.
        let reg = ClassRegistry::global();
        for &rep in reg.representatives().iter().step_by(5) {
            let _ = synthesize_candidates(&mut forest, rep, &mut memo);
        }
        let mut table = BestTable::new();
        seed_from_forest(&forest, &mut table);
        (forest, table)
    }

    #[test]
    fn refinement_never_worsens() {
        let (mut forest, mut table) = seeded();
        let before: HashMap<u16, u32> = table
            .best
            .iter()
            .map(|(&tt, &l)| (tt, forest.cone_size(l)))
            .collect();
        refine(
            &mut forest,
            &mut table,
            &RefineParams {
                rounds: 1,
                max_operands: 300,
                ..RefineParams::default()
            },
        );
        for (&tt, &cost) in &before {
            let after = forest.cone_size(table.get(Tt4::from_raw(tt)).unwrap());
            assert!(
                after <= cost,
                "function 0x{tt:04x} got worse: {cost} -> {after}"
            );
        }
    }

    #[test]
    fn refinement_results_stay_correct() {
        let (mut forest, mut table) = seeded();
        refine(
            &mut forest,
            &mut table,
            &RefineParams {
                rounds: 1,
                max_operands: 300,
                ..RefineParams::default()
            },
        );
        for (&tt, &lit) in table.best.iter() {
            assert_eq!(forest.tt(lit).raw(), tt, "0x{tt:04x}");
        }
    }

    #[test]
    fn refinement_finds_improvements_somewhere() {
        let (mut forest, mut table) = seeded();
        let improved = refine(
            &mut forest,
            &mut table,
            &RefineParams {
                rounds: 2,
                max_operands: 600,
                ..RefineParams::default()
            },
        );
        assert!(
            improved > 0,
            "enumeration should beat pure decomposition somewhere"
        );
    }

    #[test]
    fn majority_stays_at_four_gates() {
        let (mut forest, mut table) = seeded();
        let maj = Tt4::from_raw(0xE8E8);
        // Ensure majority is present (factoring gives 4 gates).
        let root = crate::factor::factor_build(&mut forest, maj);
        table.record(&forest, maj, root);
        refine(&mut forest, &mut table, &RefineParams::default());
        let best = table.get(maj).unwrap();
        assert!(forest.cone_size(best) <= 4);
        assert_eq!(forest.tt(best), maj);
    }
}
