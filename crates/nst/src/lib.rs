#![warn(missing_docs)]
//! NPN structure library ("NST") for DAG-aware AIG rewriting.
//!
//! The rewriting algorithm of Mishchenko et al. replaces a 4-input cut by a
//! precomputed, logically equivalent subgraph drawn from a library indexed
//! by NPN class. ABC ships this library as an opaque precomputed blob; this
//! crate *generates* an equivalent one at startup:
//!
//! * a hash-consed [`Forest`] of AND gates over the four cut variables,
//! * synthesis strategies ([`shannon`]-style decomposition with XOR
//!   detection, plus [`isop`]-based two-level factoring) producing several
//!   alternative implementations per class,
//! * [`NpnLibrary`] — the resulting 222-class library, every structure
//!   validated by simulation against its class representative.
//!
//! # Example
//!
//! ```
//! use dacpara_npn::{ClassRegistry, Tt4};
//! use dacpara_nst::NpnLibrary;
//!
//! let lib = NpnLibrary::global();
//! assert_eq!(lib.num_classes(), 222);
//! let reg = ClassRegistry::global();
//! let maj = Tt4::from_raw(0xE8E8);
//! for s in lib.structures(reg.class_of(maj)) {
//!     assert_eq!(s.function(), reg.representative(reg.class_of(maj)));
//! }
//! ```

mod factor;
mod forest;
mod isop;
mod library;
mod refine;
mod shannon;

pub use factor::factor_build;
pub use forest::{FLit, Forest};
pub use isop::{isop, Cube};
pub use library::{NpnLibrary, StructIn, Structure};
pub use refine::{refine, seed_from_forest, BestTable, RefineParams};
pub use shannon::{isop_build, shannon, shannon_split, synthesize_candidates, BuildMemo};
