//! Algebraic "quick factoring" of SOP covers (the classic literal-division
//! heuristic). Two-level ISOP covers are poor AIG structures — factoring
//! `ab + ac + bc` into `a(b + c) + bc` is what turns the 5-gate majority
//! into the optimal 4-gate one, and similarly across the library.

use dacpara_npn::Tt4;

use crate::forest::{FLit, Forest};
use crate::isop::{isop, Cube};

/// A literal of a cube: variable index plus polarity (`true` = negated).
type CubeLit = (u8, bool);

fn cube_literals(cube: &Cube) -> Vec<CubeLit> {
    let mut lits = Vec::new();
    for k in 0..4u8 {
        if cube.pos >> k & 1 != 0 {
            lits.push((k, false));
        }
        if cube.neg >> k & 1 != 0 {
            lits.push((k, true));
        }
    }
    lits
}

fn cube_contains(cube: &Cube, lit: CubeLit) -> bool {
    let mask = 1u8 << lit.0;
    if lit.1 {
        cube.neg & mask != 0
    } else {
        cube.pos & mask != 0
    }
}

fn cube_without(cube: &Cube, lit: CubeLit) -> Cube {
    let mask = 1u8 << lit.0;
    if lit.1 {
        Cube {
            pos: cube.pos,
            neg: cube.neg & !mask,
        }
    } else {
        Cube {
            pos: cube.pos & !mask,
            neg: cube.neg,
        }
    }
}

fn forest_lit(lit: CubeLit) -> FLit {
    let base = Forest::var(lit.0 as usize);
    if lit.1 {
        !base
    } else {
        base
    }
}

/// Builds one cube as a (left-leaning) AND chain.
fn build_cube(forest: &mut Forest, cube: &Cube) -> FLit {
    let lits = cube_literals(cube);
    if lits.is_empty() {
        return FLit::TRUE;
    }
    let mut acc = forest_lit(lits[0]);
    for &l in &lits[1..] {
        let fl = forest_lit(l);
        acc = forest.add_and(acc, fl);
    }
    acc
}

/// Recursive quick factor: pull out the most frequent literal, divide, and
/// recurse on quotient and remainder.
fn quick_factor(forest: &mut Forest, cubes: &[Cube]) -> FLit {
    if cubes.is_empty() {
        return FLit::FALSE;
    }
    if cubes.len() == 1 {
        return build_cube(forest, &cubes[0]);
    }
    // Most frequent literal across the cover.
    let mut best: Option<(CubeLit, usize)> = None;
    for k in 0..4u8 {
        for neg in [false, true] {
            let lit = (k, neg);
            let count = cubes.iter().filter(|c| cube_contains(c, lit)).count();
            if count >= 2 && best.is_none_or(|(_, bc)| count > bc) {
                best = Some((lit, count));
            }
        }
    }
    let Some((lit, _)) = best else {
        // No common literal: plain OR of the cubes.
        let mut acc = build_cube(forest, &cubes[0]);
        for c in &cubes[1..] {
            let term = build_cube(forest, c);
            acc = forest.add_or(acc, term);
        }
        return acc;
    };
    let quotient: Vec<Cube> = cubes
        .iter()
        .filter(|c| cube_contains(c, lit))
        .map(|c| cube_without(c, lit))
        .collect();
    let remainder: Vec<Cube> = cubes
        .iter()
        .filter(|c| !cube_contains(c, lit))
        .cloned()
        .collect();
    let q = quick_factor(forest, &quotient);
    let l = forest_lit(lit);
    let lq = forest.add_and(l, q);
    if remainder.is_empty() {
        lq
    } else {
        let r = quick_factor(forest, &remainder);
        forest.add_or(lq, r)
    }
}

/// Builds `f` from the quick-factored form of its irredundant SOP.
///
/// # Example
///
/// ```
/// use dacpara_npn::Tt4;
/// use dacpara_nst::{factor_build, Forest};
///
/// let mut forest = Forest::new();
/// let maj = Tt4::from_raw(0xE8E8); // maj(x0, x1, x2)
/// let root = factor_build(&mut forest, maj);
/// assert_eq!(forest.tt(root), maj);
/// assert_eq!(forest.cone_size(root), 4); // a(b+c) + bc
/// ```
pub fn factor_build(forest: &mut Forest, f: Tt4) -> FLit {
    if f == Tt4::FALSE {
        return FLit::FALSE;
    }
    if f == Tt4::TRUE {
        return FLit::TRUE;
    }
    let cover = isop(f);
    let root = quick_factor(forest, &cover);
    debug_assert_eq!(forest.tt(root), f);
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factoring_is_exact_everywhere() {
        let mut forest = Forest::new();
        for raw in (0..=u16::MAX).step_by(61) {
            let f = Tt4::from_raw(raw);
            let root = factor_build(&mut forest, f);
            assert_eq!(forest.tt(root), f, "0x{raw:04x}");
        }
    }

    #[test]
    fn majority_factors_to_four_gates() {
        let mut forest = Forest::new();
        let maj = Tt4::from_raw(0xE8E8);
        let root = factor_build(&mut forest, maj);
        assert_eq!(forest.tt(root), maj);
        assert!(
            forest.cone_size(root) <= 4,
            "got {}",
            forest.cone_size(root)
        );
    }

    #[test]
    fn factoring_never_loses_to_flat_isop() {
        use crate::shannon::isop_build;
        let mut f1 = Forest::new();
        let mut f2 = Forest::new();
        let mut wins = 0;
        for raw in (0..=u16::MAX).step_by(257) {
            let f = Tt4::from_raw(raw);
            let fact = factor_build(&mut f1, f);
            let flat = isop_build(&mut f2, f);
            if f1.cone_size(fact) < f2.cone_size(flat) {
                wins += 1;
            }
        }
        assert!(
            wins > 20,
            "factoring should often beat flat ISOP, won {wins}"
        );
    }

    #[test]
    fn single_literal_functions() {
        let mut forest = Forest::new();
        for k in 0..4 {
            let root = factor_build(&mut forest, Tt4::var(k));
            assert_eq!(root, Forest::var(k));
            let rootn = factor_build(&mut forest, !Tt4::var(k));
            assert_eq!(forest.tt(rootn), !Tt4::var(k));
        }
    }
}
