//! Structure synthesis strategies: Shannon/XOR decomposition and ISOP
//! factoring, each producing an alternative implementation of a function.

use std::collections::HashMap;

use dacpara_npn::Tt4;

use crate::factor::factor_build;
use crate::forest::{FLit, Forest};
use crate::isop::isop;

/// Memo table shared across one library build: function → forest literal.
pub type BuildMemo = HashMap<u16, FLit>;

/// Returns a forest literal computing `f`, looking for constant/projection
/// short-cuts first.
fn leaf_shortcut(f: Tt4) -> Option<FLit> {
    if f == Tt4::FALSE {
        return Some(FLit::FALSE);
    }
    if f == Tt4::TRUE {
        return Some(FLit::TRUE);
    }
    for k in 0..4 {
        if f == Tt4::var(k) {
            return Some(Forest::var(k));
        }
        if f == !Tt4::var(k) {
            return Some(!Forest::var(k));
        }
    }
    None
}

/// Recursive Shannon/XOR decomposition choosing the lowest dependent
/// variable at every level, memoized for cross-class sharing.
pub fn shannon(forest: &mut Forest, f: Tt4, memo: &mut BuildMemo) -> FLit {
    if let Some(l) = leaf_shortcut(f) {
        return l;
    }
    if let Some(&hit) = memo.get(&f.raw()) {
        return hit;
    }
    let k = (0..4)
        .find(|&k| f.depends_on(k))
        .expect("non-leaf depends somewhere");
    let lit = shannon_split(forest, f, k, memo);
    memo.insert(f.raw(), lit);
    lit
}

/// One Shannon/XOR split on variable `k`, recursing with [`shannon`].
pub fn shannon_split(forest: &mut Forest, f: Tt4, k: usize, memo: &mut BuildMemo) -> FLit {
    debug_assert!(f.depends_on(k));
    let f0 = f.cofactor0(k);
    let f1 = f.cofactor1(k);
    let x = Forest::var(k);
    if f0 == !f1 {
        // f = x_k XOR f0
        let g = shannon(forest, f0, memo);
        return forest.add_xor(x, g);
    }
    let hi = shannon(forest, f1, memo);
    let lo = shannon(forest, f0, memo);
    forest.add_mux(x, hi, lo)
}

/// Builds `f` from its irredundant SOP: balanced AND trees per cube, a
/// balanced OR tree across cubes.
pub fn isop_build(forest: &mut Forest, f: Tt4) -> FLit {
    if let Some(l) = leaf_shortcut(f) {
        return l;
    }
    let cover = isop(f);
    let mut terms: Vec<FLit> = cover
        .iter()
        .map(|cube| {
            let mut lits: Vec<FLit> = Vec::new();
            for k in 0..4 {
                if cube.pos >> k & 1 != 0 {
                    lits.push(Forest::var(k));
                }
                if cube.neg >> k & 1 != 0 {
                    lits.push(!Forest::var(k));
                }
            }
            balanced(forest, &mut lits, true)
        })
        .collect();
    balanced(forest, &mut terms, false)
}

/// Balanced AND (`conj`) or OR tree over the given literals.
fn balanced(forest: &mut Forest, lits: &mut Vec<FLit>, conj: bool) -> FLit {
    if lits.is_empty() {
        return if conj { FLit::TRUE } else { FLit::FALSE };
    }
    while lits.len() > 1 {
        let mut next = Vec::with_capacity(lits.len() / 2 + 1);
        for pair in lits.chunks(2) {
            if pair.len() == 2 {
                next.push(if conj {
                    forest.add_and(pair[0], pair[1])
                } else {
                    forest.add_or(pair[0], pair[1])
                });
            } else {
                next.push(pair[0]);
            }
        }
        *lits = next;
    }
    lits[0]
}

/// All candidate implementations of `f` this crate knows how to synthesize:
/// one Shannon/XOR split per dependent variable, plus ISOP factorings of
/// both polarities. Deduplicated and sorted by cone size.
pub fn synthesize_candidates(forest: &mut Forest, f: Tt4, memo: &mut BuildMemo) -> Vec<FLit> {
    let mut roots: Vec<FLit> = Vec::new();
    if let Some(l) = leaf_shortcut(f) {
        return vec![l];
    }
    for k in 0..4 {
        if f.depends_on(k) {
            roots.push(shannon_split(forest, f, k, memo));
        }
    }
    roots.push(isop_build(forest, f));
    roots.push(!isop_build(forest, !f));
    roots.push(factor_build(forest, f));
    roots.push(!factor_build(forest, !f));
    roots.sort_by_key(|&l| (forest.cone_size(l), l));
    roots.dedup();
    debug_assert!(roots.iter().all(|&l| forest.tt(l) == f));
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_computes_the_function() {
        let mut forest = Forest::new();
        let mut memo = BuildMemo::new();
        for raw in [0x6996u16, 0xCAFE, 0x8000, 0xE8E8, 0x1234] {
            let f = Tt4::from_raw(raw);
            let l = shannon(&mut forest, f, &mut memo);
            assert_eq!(forest.tt(l), f, "0x{raw:04x}");
        }
    }

    #[test]
    fn isop_build_computes_the_function() {
        let mut forest = Forest::new();
        for raw in (0..=u16::MAX).step_by(131) {
            let f = Tt4::from_raw(raw);
            let l = isop_build(&mut forest, f);
            assert_eq!(forest.tt(l), f, "0x{raw:04x}");
        }
    }

    #[test]
    fn xor_shortcut_is_small() {
        let mut forest = Forest::new();
        let mut memo = BuildMemo::new();
        // 4-input parity: pure Shannon muxing would need many gates; the
        // XOR detection caps it at 9 (three 3-gate XORs).
        let parity = Tt4::var(0) ^ Tt4::var(1) ^ Tt4::var(2) ^ Tt4::var(3);
        let l = shannon(&mut forest, parity, &mut memo);
        assert_eq!(forest.tt(l), parity);
        assert!(forest.cone_size(l) <= 9, "got {}", forest.cone_size(l));
    }

    #[test]
    fn candidates_are_valid_and_sorted() {
        let mut forest = Forest::new();
        let mut memo = BuildMemo::new();
        let f = Tt4::from_raw(0xE8E8); // maj(x0,x1,x2)
        let cands = synthesize_candidates(&mut forest, f, &mut memo);
        assert!(!cands.is_empty());
        for &c in &cands {
            assert_eq!(forest.tt(c), f);
        }
        for w in cands.windows(2) {
            assert!(forest.cone_size(w[0]) <= forest.cone_size(w[1]));
        }
    }

    #[test]
    fn projections_need_no_gates() {
        let mut forest = Forest::new();
        let mut memo = BuildMemo::new();
        let cands = synthesize_candidates(&mut forest, !Tt4::var(2), &mut memo);
        assert_eq!(cands, vec![!Forest::var(2)]);
    }
}
