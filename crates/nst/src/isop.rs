//! Irredundant sum-of-products extraction (Minato–Morreale).

use dacpara_npn::Tt4;

/// A product term over up to four variables.
///
/// Bit `k` of `pos` requires `x_k`, bit `k` of `neg` requires `!x_k`; the
/// masks are disjoint. An all-zero cube is the constant-true term.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Cube {
    /// Variables appearing positively.
    pub pos: u8,
    /// Variables appearing negatively.
    pub neg: u8,
}

impl Cube {
    /// The function of this product term.
    pub fn tt(&self) -> Tt4 {
        let mut t = Tt4::TRUE;
        for k in 0..4 {
            if self.pos >> k & 1 != 0 {
                t = t & Tt4::var(k);
            }
            if self.neg >> k & 1 != 0 {
                t = t & !Tt4::var(k);
            }
        }
        t
    }

    /// Number of literals in the cube.
    pub fn literals(&self) -> u32 {
        (self.pos | self.neg).count_ones() + (self.pos & self.neg).count_ones()
    }
}

/// Computes an irredundant SOP cover of `f` with the Minato–Morreale
/// procedure. The returned cubes OR together to exactly `f`.
///
/// # Example
///
/// ```
/// use dacpara_npn::Tt4;
/// use dacpara_nst::isop;
///
/// let f = (Tt4::var(0) & Tt4::var(1)) | Tt4::var(2);
/// let cover = isop(f);
/// let mut or = Tt4::FALSE;
/// for cube in &cover {
///     or = or | cube.tt();
/// }
/// assert_eq!(or, f);
/// ```
pub fn isop(f: Tt4) -> Vec<Cube> {
    let (cover, g) = isop_rec(f, f, 0);
    debug_assert_eq!(g, f);
    cover
}

/// `lower <= cover <= upper`; `var` is the next variable to split on.
fn isop_rec(lower: Tt4, upper: Tt4, var: usize) -> (Vec<Cube>, Tt4) {
    debug_assert_eq!(lower & !upper, Tt4::FALSE, "lower must imply upper");
    if lower == Tt4::FALSE {
        return (Vec::new(), Tt4::FALSE);
    }
    if upper == Tt4::TRUE {
        return (vec![Cube { pos: 0, neg: 0 }], Tt4::TRUE);
    }
    // Find a splitting variable on which lower or upper depends.
    let mut k = var;
    while k < 4 && !lower.depends_on(k) && !upper.depends_on(k) {
        k += 1;
    }
    debug_assert!(k < 4, "non-constant bounds must depend on some variable");

    let l0 = lower.cofactor0(k);
    let l1 = lower.cofactor1(k);
    let u0 = upper.cofactor0(k);
    let u1 = upper.cofactor1(k);

    // Terms that must carry !x_k (needed when x_k = 0 but not allowed at 1).
    let (mut c0, f0) = isop_rec(l0 & !u1, u0, k + 1);
    // Terms that must carry x_k.
    let (mut c1, f1) = isop_rec(l1 & !u0, u1, k + 1);
    // Remainder, shared between both cofactors.
    let lnew = (l0 & !f0) | (l1 & !f1);
    let (cd, fd) = isop_rec(lnew, u0 & u1, k + 1);

    for c in &mut c0 {
        c.neg |= 1 << k;
    }
    for c in &mut c1 {
        c.pos |= 1 << k;
    }
    let mut cover = c0;
    cover.extend(c1);
    cover.extend(cd);

    let x = Tt4::var(k);
    let func = (!x & f0) | (x & f1) | fd;
    (cover, func)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_tt(cover: &[Cube]) -> Tt4 {
        cover.iter().fold(Tt4::FALSE, |acc, c| acc | c.tt())
    }

    #[test]
    fn covers_are_exact() {
        for raw in [0x0000u16, 0xFFFF, 0x8000, 0x6996, 0xCAFE, 0x1ee7, 0xF0E1] {
            let f = Tt4::from_raw(raw);
            assert_eq!(cover_tt(&isop(f)), f, "function 0x{raw:04x}");
        }
    }

    #[test]
    fn exhaustive_exactness() {
        // Every 4-input function must be covered exactly.
        for raw in (0..=u16::MAX).step_by(37) {
            let f = Tt4::from_raw(raw);
            assert_eq!(cover_tt(&isop(f)), f);
        }
    }

    #[test]
    fn covers_are_irredundant() {
        for raw in [0x8000u16, 0x6996, 0xCAFE, 0xACCA] {
            let f = Tt4::from_raw(raw);
            let cover = isop(f);
            for skip in 0..cover.len() {
                let without: Vec<Cube> = cover
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, c)| *c)
                    .collect();
                assert_ne!(
                    cover_tt(&without),
                    f,
                    "cube {skip} of 0x{raw:04x} redundant"
                );
            }
        }
    }

    #[test]
    fn constant_covers() {
        assert!(isop(Tt4::FALSE).is_empty());
        let t = isop(Tt4::TRUE);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].literals(), 0);
    }
}
