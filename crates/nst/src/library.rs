//! The NPN structure library ("NST" in the paper): per NPN class, a ranked
//! list of precomputed AIG subgraphs computing the class representative.

use std::sync::OnceLock;

use dacpara_npn::{ClassId, ClassRegistry, Tt4};

use crate::forest::{FLit, Forest};
use crate::refine::{refine, seed_from_forest, BestTable, RefineParams};
use crate::shannon::{synthesize_candidates, BuildMemo};

/// Input of a structure gate (or the structure's root).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StructIn {
    /// A constant.
    Const(bool),
    /// Cut variable `var` (0..=3), optionally complemented.
    Leaf {
        /// Which cut variable (0..=3).
        var: u8,
        /// Whether the edge is complemented.
        neg: bool,
    },
    /// Output of gate `idx` (an earlier entry of [`Structure::gates`]),
    /// optionally complemented.
    Gate {
        /// Index of the driving gate within [`Structure::gates`].
        idx: u16,
        /// Whether the edge is complemented.
        neg: bool,
    },
}

impl StructIn {
    /// Applies an extra complementation.
    #[must_use]
    pub fn xor(self, c: bool) -> StructIn {
        match self {
            StructIn::Const(b) => StructIn::Const(b ^ c),
            StructIn::Leaf { var, neg } => StructIn::Leaf { var, neg: neg ^ c },
            StructIn::Gate { idx, neg } => StructIn::Gate { idx, neg: neg ^ c },
        }
    }
}

/// A self-contained replacement structure: AND gates in topological order
/// over four cut variables.
///
/// # Example
///
/// ```
/// use dacpara_npn::{ClassRegistry, Tt4};
/// use dacpara_nst::NpnLibrary;
///
/// let lib = NpnLibrary::global();
/// let reg = ClassRegistry::global();
/// let class = reg.class_of(Tt4::var(0) & Tt4::var(1));
/// let s = &lib.structures(class)[0];
/// assert_eq!(s.function(), reg.representative(class));
/// assert_eq!(s.size(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Structure {
    gates: Vec<[StructIn; 2]>,
    root: StructIn,
}

impl Structure {
    /// Extracts the cone of `root` from a forest.
    pub fn from_forest(forest: &Forest, root: FLit) -> Structure {
        let cone = forest.cone(root);
        let map_in = |l: FLit, cone: &[u32]| -> StructIn {
            let n = l.node();
            if n == 0 {
                StructIn::Const(l.is_complement())
            } else if n <= 4 {
                StructIn::Leaf {
                    var: (n - 1) as u8,
                    neg: l.is_complement(),
                }
            } else {
                let idx = cone.iter().position(|&c| c == n).expect("cone closed") as u16;
                StructIn::Gate {
                    idx,
                    neg: l.is_complement(),
                }
            }
        };
        let gates = cone
            .iter()
            .map(|&n| {
                let [a, b] = forest.fanins(FLit::positive(n));
                [map_in(a, &cone), map_in(b, &cone)]
            })
            .collect();
        Structure {
            gates,
            root: map_in(root, &cone),
        }
    }

    /// The gates, in topological order.
    pub fn gates(&self) -> &[[StructIn; 2]] {
        &self.gates
    }

    /// The root reference (a gate, leaf or constant).
    pub fn root(&self) -> StructIn {
        self.root
    }

    /// Number of AND gates.
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// Simulates the structure on arbitrary leaf functions.
    pub fn simulate(&self, leaves: [Tt4; 4]) -> Tt4 {
        let mut values: Vec<Tt4> = Vec::with_capacity(self.gates.len());
        let eval = |i: StructIn, values: &[Tt4]| -> Tt4 {
            match i {
                StructIn::Const(b) => {
                    if b {
                        Tt4::TRUE
                    } else {
                        Tt4::FALSE
                    }
                }
                StructIn::Leaf { var, neg } => {
                    let t = leaves[var as usize];
                    if neg {
                        !t
                    } else {
                        t
                    }
                }
                StructIn::Gate { idx, neg } => {
                    let t = values[idx as usize];
                    if neg {
                        !t
                    } else {
                        t
                    }
                }
            }
        };
        for g in &self.gates {
            let a = eval(g[0], &values);
            let b = eval(g[1], &values);
            values.push(a & b);
        }
        eval(self.root, &values)
    }

    /// The function computed over the elementary variables.
    pub fn function(&self) -> Tt4 {
        self.simulate([Tt4::var(0), Tt4::var(1), Tt4::var(2), Tt4::var(3)])
    }

    /// Logic depth of the root given the depth of each leaf.
    pub fn eval_depth(&self, leaf_depths: [u32; 4]) -> u32 {
        let mut depths: Vec<u32> = Vec::with_capacity(self.gates.len());
        let d = |i: StructIn, depths: &[u32]| -> u32 {
            match i {
                StructIn::Const(_) => 0,
                StructIn::Leaf { var, .. } => leaf_depths[var as usize],
                StructIn::Gate { idx, .. } => depths[idx as usize],
            }
        };
        for g in &self.gates {
            let v = 1 + d(g[0], &depths).max(d(g[1], &depths));
            depths.push(v);
        }
        d(self.root, &depths)
    }
}

/// The per-class structure library.
pub struct NpnLibrary {
    per_class: Vec<Vec<Structure>>,
}

impl NpnLibrary {
    /// Builds the library for every NPN class (Shannon/XOR splits on each
    /// dependent variable plus both-polarity flat and factored ISOP; see
    /// `DESIGN.md` for how this substitutes ABC's precomputed blob).
    pub fn build() -> NpnLibrary {
        NpnLibrary::build_inner(None)
    }

    /// Like [`NpnLibrary::build`], followed by a bounded bottom-up
    /// enumeration sweep ([`refine`]) that replaces any class's front
    /// structure when enumeration finds a strictly smaller one.
    pub fn build_refined(params: &RefineParams) -> NpnLibrary {
        NpnLibrary::build_inner(Some(params))
    }

    fn build_inner(refinement: Option<&RefineParams>) -> NpnLibrary {
        let reg = ClassRegistry::global();
        let mut forest = Forest::new();
        let mut memo = BuildMemo::new();
        let roots: Vec<Vec<FLit>> = reg
            .representatives()
            .iter()
            .map(|&rep| synthesize_candidates(&mut forest, rep, &mut memo))
            .collect();

        let mut extra: Vec<Option<FLit>> = vec![None; roots.len()];
        if let Some(params) = refinement {
            let mut table = BestTable::new();
            seed_from_forest(&forest, &mut table);
            refine(&mut forest, &mut table, params);
            for (id, rep) in reg.representatives().iter().enumerate() {
                if let Some(best) = table.get(*rep) {
                    let current_min = roots[id]
                        .first()
                        .map(|&r| forest.cone_size(r))
                        .unwrap_or(u32::MAX);
                    if forest.cone_size(best) < current_min {
                        extra[id] = Some(best);
                    }
                }
            }
        }

        let per_class = roots
            .into_iter()
            .enumerate()
            .map(|(id, cands)| {
                let rep = reg.representative(id as ClassId);
                let mut structures: Vec<Structure> = Vec::with_capacity(cands.len() + 1);
                if let Some(best) = extra[id] {
                    let s = Structure::from_forest(&forest, best);
                    debug_assert_eq!(s.function(), rep);
                    structures.push(s);
                }
                for root in cands {
                    let s = Structure::from_forest(&forest, root);
                    debug_assert_eq!(s.function(), rep);
                    structures.push(s);
                }
                structures
            })
            .collect();
        NpnLibrary { per_class }
    }

    /// The process-wide library (built once on first use).
    pub fn global() -> &'static NpnLibrary {
        static LIB: OnceLock<NpnLibrary> = OnceLock::new();
        LIB.get_or_init(NpnLibrary::build)
    }

    /// The process-wide *refined* library (default refinement parameters;
    /// built once on first use — the enumeration sweep takes a few seconds).
    pub fn global_refined() -> &'static NpnLibrary {
        static LIB: OnceLock<NpnLibrary> = OnceLock::new();
        LIB.get_or_init(|| NpnLibrary::build_refined(&RefineParams::default()))
    }

    /// The candidate structures of a class, sorted by ascending size.
    pub fn structures(&self, id: ClassId) -> &[Structure] {
        &self.per_class[id as usize]
    }

    /// Size of the smallest structure of a class.
    pub fn min_size(&self, id: ClassId) -> usize {
        self.per_class[id as usize]
            .first()
            .map(Structure::size)
            .unwrap_or(0)
    }

    /// Number of classes covered (always 222).
    pub fn num_classes(&self) -> usize {
        self.per_class.len()
    }

    /// Total number of structures across all classes.
    pub fn num_structures(&self) -> usize {
        self.per_class.iter().map(Vec::len).sum()
    }
}

impl std::fmt::Debug for NpnLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NpnLibrary")
            .field("classes", &self.num_classes())
            .field("structures", &self.num_structures())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_is_covered() {
        let lib = NpnLibrary::global();
        let reg = ClassRegistry::global();
        assert_eq!(lib.num_classes(), 222);
        for id in 0..reg.len() as ClassId {
            assert!(
                !lib.structures(id).is_empty(),
                "class {id} has no structures"
            );
        }
    }

    #[test]
    fn structures_compute_their_representative() {
        let lib = NpnLibrary::global();
        let reg = ClassRegistry::global();
        for id in (0..reg.len() as ClassId).step_by(11) {
            let rep = reg.representative(id);
            for s in lib.structures(id) {
                assert_eq!(s.function(), rep, "class {id}");
            }
        }
    }

    #[test]
    fn structures_sorted_by_size() {
        let lib = NpnLibrary::global();
        for id in 0..lib.num_classes() as ClassId {
            let sizes: Vec<usize> = lib.structures(id).iter().map(Structure::size).collect();
            assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "class {id}");
        }
    }

    #[test]
    fn refined_library_is_never_worse_and_sometimes_better() {
        let base = NpnLibrary::global();
        let refined = NpnLibrary::build_refined(&crate::refine::RefineParams {
            rounds: 2,
            max_operands: 600,
            ..crate::refine::RefineParams::default()
        });
        let reg = ClassRegistry::global();
        let mut strictly_better = 0;
        for id in 0..reg.len() as ClassId {
            let b = base.min_size(id);
            let r = refined.min_size(id);
            assert!(r <= b, "class {id}: refined {r} > base {b}");
            if r < b {
                strictly_better += 1;
            }
            for s in refined.structures(id).iter().take(2) {
                assert_eq!(s.function(), reg.representative(id), "class {id}");
            }
        }
        assert!(strictly_better > 0, "refinement should win somewhere");
    }

    #[test]
    fn depth_evaluation_matches_balanced_and() {
        let lib = NpnLibrary::global();
        let reg = ClassRegistry::global();
        let and4 = Tt4::var(0) & Tt4::var(1) & Tt4::var(2) & Tt4::var(3);
        let id = reg.class_of(and4);
        let best = &lib.structures(id)[0];
        // Balanced 4-AND has depth 2 from equal-depth leaves.
        assert!(best.eval_depth([0, 0, 0, 0]) <= 3);
        assert!(best.eval_depth([5, 0, 0, 0]) >= 6);
    }
}
