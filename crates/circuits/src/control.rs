//! Random/control benchmark generators (the EPFL random_control set,
//! scaled): a majority voter and a memory-controller-like control fabric.

use dacpara_aig::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::Builder;

/// `voter`: majority of `n` single-bit inputs (`n` odd), built as a
/// popcount tree plus a threshold comparator — the same structure as the
/// EPFL `voter` (1001 inputs).
pub fn voter(n: usize) -> Aig {
    assert!(n % 2 == 1, "voter needs an odd number of inputs");
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let bits: Vec<Lit> = (0..n).map(|_| b.aig().add_input()).collect();
    let count = b.popcount(&bits);
    let threshold = b.constant(count.width(), (n / 2 + 1) as u64);
    let majority = b.ge(&count, &threshold);
    b.aig().add_output(majority);
    aig
}

/// `mem_ctrl` stand-in: a wide control fabric of address decoders, request
/// arbiters and byte-enable muxing. The EPFL `mem_ctrl` is proprietary RTL;
/// this generator reproduces its *shape* — very wide I/O, shallow-to-medium
/// depth, heavily shared decoder logic (see `DESIGN.md` §2).
pub fn mem_ctrl(ports: usize, addr_bits: usize, data_bits: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);

    // Per port: an address, a request line and a data word.
    let addrs: Vec<_> = (0..ports).map(|_| b.input_word(addr_bits)).collect();
    let reqs: Vec<Lit> = (0..ports).map(|_| b.aig().add_input()).collect();
    let datas: Vec<_> = (0..ports).map(|_| b.input_word(data_bits)).collect();

    // Bank decoders: each port's address selects one of 2^k banks; the
    // decoder logic is shared between ports that look at the same bits.
    let bank_bits = addr_bits.min(4);
    let mut grant_any = Vec::new();
    for bank in 0..(1usize << bank_bits) {
        // Fixed-priority arbiter across ports for this bank.
        let mut granted = Lit::FALSE;
        let mut bank_data = b.constant(data_bits, 0);
        for p in 0..ports {
            let mut hit = reqs[p];
            for k in 0..bank_bits {
                let bit = addrs[p].bits()[k];
                let want = bank >> k & 1 != 0;
                let cond = if want { bit } else { !bit };
                hit = b.aig().add_and(hit, cond);
            }
            let win = b.aig().add_and(hit, !granted);
            bank_data = b.mux_word(win, &datas[p], &bank_data);
            granted = b.aig().add_or(granted, hit);
        }
        b.aig().add_output(granted);
        b.output_word(&bank_data);
        grant_any.push(granted);
    }

    // A little random glue logic (status flags), as real controllers have.
    let mut pool: Vec<Lit> = grant_any;
    pool.extend(reqs.iter().copied());
    for _ in 0..ports * 4 {
        let i = rng.gen_range(0..pool.len());
        let j = rng.gen_range(0..pool.len());
        let ci = rng.gen::<bool>();
        let cj = rng.gen::<bool>();
        let g = b.aig().add_and(pool[i].xor(ci), pool[j].xor(cj));
        pool.push(g);
    }
    for &flag in pool.iter().rev().take(ports) {
        b.aig().add_output(flag);
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_aig::AigRead;
    use dacpara_equiv::simulate_bools;

    #[test]
    fn voter_votes() {
        let aig = voter(7);
        aig.check().unwrap();
        let cases: [(&[bool], bool); 4] = [
            (&[true, true, true, true, false, false, false], true),
            (&[true, true, false, true, false, false, false], false),
            (&[true; 7], true),
            (&[false; 7], false),
        ];
        for (inputs, expect) in cases {
            assert_eq!(simulate_bools(&aig, inputs)[0], expect, "{inputs:?}");
        }
    }

    #[test]
    fn voter_is_symmetric() {
        // Any permutation of the same multiset of inputs gives the same
        // output — the defining property of a symmetric function.
        let aig = voter(5);
        let base = [true, true, false, false, true];
        let rotations: Vec<Vec<bool>> = (0..5)
            .map(|r| (0..5).map(|i| base[(i + r) % 5]).collect())
            .collect();
        let first = simulate_bools(&aig, &rotations[0])[0];
        for rot in &rotations[1..] {
            assert_eq!(simulate_bools(&aig, rot)[0], first);
        }
    }

    #[test]
    fn mem_ctrl_is_deterministic_and_valid() {
        let a = mem_ctrl(4, 6, 8, 7);
        let b = mem_ctrl(4, 6, 8, 7);
        a.check().unwrap();
        assert_eq!(a.num_ands(), b.num_ands());
        assert!(a.num_inputs() > 4 * 6);
        assert!(a.num_outputs() > 16);
        let c = mem_ctrl(4, 6, 8, 8);
        assert_ne!(
            dacpara_aig::aiger::to_string(&a),
            dacpara_aig::aiger::to_string(&c),
            "different seeds must differ structurally"
        );
    }

    #[test]
    fn mem_ctrl_routes_granted_data() {
        // One port requesting: its data must appear on the addressed bank.
        let aig = mem_ctrl(2, 4, 4, 1);
        // inputs: addr0 (4), addr1 (4), req0, req1, data0 (4), data1 (4)
        let mut inputs = vec![false; aig.num_inputs()];
        // port0 -> bank 0b0011, requesting, data 0b1010
        inputs[0] = true;
        inputs[1] = true;
        inputs[8] = true; // req0
        inputs[10] = false;
        for (k, bit) in [false, true, false, true].iter().enumerate() {
            inputs[10 + k] = *bit;
        }
        let out = simulate_bools(&aig, &inputs);
        // Outputs: per bank (granted, data[4]); bank 3 is at offset 3*5.
        let bank = 3usize;
        assert!(out[bank * 5], "bank 3 must be granted");
        let data: Vec<bool> = out[bank * 5 + 1..bank * 5 + 5].to_vec();
        assert_eq!(data, vec![false, true, false, true]);
    }
}
