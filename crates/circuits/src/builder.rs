//! Word-level construction helpers over an [`Aig`].
//!
//! The benchmark generators assemble datapaths (adders, multipliers,
//! dividers, …) out of these combinators. A [`Word`] is a little-endian
//! vector of AIG literals.

use dacpara_aig::{Aig, Lit};

/// A little-endian bit vector of AIG literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Word(pub Vec<Lit>);

impl Word {
    /// Width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The bits, least significant first.
    pub fn bits(&self) -> &[Lit] {
        &self.0
    }

    /// Truncates or zero-extends to `width`.
    pub fn resized(&self, width: usize) -> Word {
        let mut bits = self.0.clone();
        bits.resize(width, Lit::FALSE);
        bits.truncate(width);
        Word(bits)
    }

    /// Left shift by a constant number of bits (width grows).
    pub fn shifted_left(&self, k: usize) -> Word {
        let mut bits = vec![Lit::FALSE; k];
        bits.extend_from_slice(&self.0);
        Word(bits)
    }
}

/// Word-level circuit builder borrowing an [`Aig`].
///
/// # Example
///
/// ```
/// use dacpara_aig::Aig;
/// use dacpara_circuits::Builder;
///
/// let mut aig = Aig::new();
/// let mut b = Builder::new(&mut aig);
/// let x = b.input_word(4);
/// let y = b.input_word(4);
/// let sum = b.add(&x, &y);
/// b.output_word(&sum);
/// assert_eq!(aig.num_outputs(), 5); // 4 bits + carry
/// ```
#[derive(Debug)]
pub struct Builder<'a> {
    aig: &'a mut Aig,
}

impl<'a> Builder<'a> {
    /// Wraps an AIG for word-level construction.
    pub fn new(aig: &'a mut Aig) -> Builder<'a> {
        Builder { aig }
    }

    /// The underlying graph.
    pub fn aig(&mut self) -> &mut Aig {
        self.aig
    }

    /// A fresh input word of `width` bits.
    pub fn input_word(&mut self, width: usize) -> Word {
        Word((0..width).map(|_| self.aig.add_input()).collect())
    }

    /// A constant word.
    pub fn constant(&self, width: usize, value: u64) -> Word {
        Word(
            (0..width)
                .map(|k| {
                    if value >> k & 1 != 0 {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    }
                })
                .collect(),
        )
    }

    /// Registers every bit as a primary output.
    pub fn output_word(&mut self, w: &Word) {
        for &b in w.bits() {
            self.aig.add_output(b);
        }
    }

    /// Full adder returning `(sum, carry)`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
        let axb = self.aig.add_xor(a, b);
        let sum = self.aig.add_xor(axb, c);
        let ab = self.aig.add_and(a, b);
        let axbc = self.aig.add_and(axb, c);
        let carry = self.aig.add_or(ab, axbc);
        (sum, carry)
    }

    /// Ripple-carry addition; the result is one bit wider than the longest
    /// operand (carry out is the MSB).
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        let width = a.width().max(b.width());
        let a = a.resized(width);
        let b = b.resized(width);
        let mut carry = Lit::FALSE;
        let mut bits = Vec::with_capacity(width + 1);
        for k in 0..width {
            let (s, c) = self.full_adder(a.0[k], b.0[k], carry);
            bits.push(s);
            carry = c;
        }
        bits.push(carry);
        Word(bits)
    }

    /// Two's-complement subtraction `a - b` over `max(width)` bits; the MSB
    /// of the result is the *borrow-free* flag (1 when `a >= b`).
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        let width = a.width().max(b.width());
        let a = a.resized(width);
        let b = b.resized(width);
        let mut carry = Lit::TRUE;
        let mut bits = Vec::with_capacity(width + 1);
        for k in 0..width {
            let (s, c) = self.full_adder(a.0[k], !b.0[k], carry);
            bits.push(s);
            carry = c;
        }
        bits.push(carry);
        Word(bits)
    }

    /// Word multiplexer `if s then t else e` (widths equalized).
    pub fn mux_word(&mut self, s: Lit, t: &Word, e: &Word) -> Word {
        let width = t.width().max(e.width());
        let t = t.resized(width);
        let e = e.resized(width);
        Word(
            (0..width)
                .map(|k| self.aig.add_mux(s, t.0[k], e.0[k]))
                .collect(),
        )
    }

    /// Array multiplier; result has `a.width() + b.width()` bits.
    pub fn mul(&mut self, a: &Word, b: &Word) -> Word {
        let out_width = a.width() + b.width();
        let mut acc = self.constant(0, 0);
        for (k, &bk) in b.bits().iter().enumerate() {
            let partial: Vec<Lit> = a
                .bits()
                .iter()
                .map(|&ai| self.aig.add_and(ai, bk))
                .collect();
            let partial = Word(partial).shifted_left(k);
            acc = self.add(&acc, &partial);
        }
        acc.resized(out_width)
    }

    /// Squarer (a multiplier specialized to `x * x`).
    pub fn square(&mut self, a: &Word) -> Word {
        self.mul(&a.clone(), a)
    }

    /// Unsigned comparison `a >= b`.
    pub fn ge(&mut self, a: &Word, b: &Word) -> Lit {
        let diff = self.sub(a, b);
        *diff.bits().last().expect("sub yields a borrow flag")
    }

    /// Restoring division: returns `(quotient, remainder)` of the
    /// `a.width()`-bit unsigned division `a / b` (b must be nonzero for a
    /// meaningful remainder; the circuit itself is total).
    pub fn div(&mut self, a: &Word, b: &Word) -> (Word, Word) {
        let w = a.width();
        let mut rem = self.constant(b.width() + 1, 0);
        let mut quotient = vec![Lit::FALSE; w];
        for k in (0..w).rev() {
            // rem = (rem << 1) | a[k]
            let mut shifted = rem.shifted_left(1);
            shifted.0[0] = a.0[k];
            let shifted = shifted.resized(b.width() + 1);
            let diff = self.sub(&shifted, &b.resized(b.width() + 1));
            let fits = *diff.bits().last().expect("borrow flag");
            quotient[k] = fits;
            rem = self.mux_word(fits, &diff.resized(b.width() + 1), &shifted);
        }
        (Word(quotient), rem.resized(b.width()))
    }

    /// Restoring square root of a `2w`-bit word, returning the `w`-bit root.
    pub fn sqrt(&mut self, a: &Word) -> Word {
        let w2 = a.width();
        let w = w2 / 2;
        let mut root = self.constant(w2 + 2, 0);
        let mut rem = self.constant(w2 + 2, 0);
        for k in (0..w).rev() {
            // Bring down the next two bits of `a`.
            let mut r2 = rem.shifted_left(2).resized(w2 + 2);
            if 2 * k + 1 < w2 {
                r2.0[1] = a.0[2 * k + 1];
            }
            r2.0[0] = a.0[2 * k];
            // Trial subtrahend: (root << 2) | 1.
            let mut trial = root.shifted_left(2).resized(w2 + 2);
            trial.0[0] = Lit::TRUE;
            let diff = self.sub(&r2, &trial);
            let fits = *diff.bits().last().expect("borrow flag");
            rem = self.mux_word(fits, &diff.resized(w2 + 2), &r2);
            // root = (root << 1) | fits.
            let mut r = root.shifted_left(1).resized(w2 + 2);
            r.0[0] = fits;
            root = r;
        }
        root.resized(w)
    }

    /// Popcount: the number of set bits among `lits`, as a word.
    pub fn popcount(&mut self, lits: &[Lit]) -> Word {
        let mut words: Vec<Word> = lits.iter().map(|&l| Word(vec![l])).collect();
        if words.is_empty() {
            return self.constant(1, 0);
        }
        while words.len() > 1 {
            let mut next = Vec::with_capacity(words.len() / 2 + 1);
            for pair in words.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.add(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0].clone());
                }
            }
            words = next;
        }
        words.pop().expect("non-empty")
    }

    /// Priority encoder: index of the most significant set bit (0 when the
    /// input is zero) plus a "nonzero" flag.
    pub fn priority_encode(&mut self, a: &Word) -> (Word, Lit) {
        let w = a.width();
        let idx_width = usize::BITS as usize - (w.max(2) - 1).leading_zeros() as usize;
        let mut found = Lit::FALSE;
        let mut index = self.constant(idx_width, 0);
        for k in (0..w).rev() {
            let bit = a.0[k];
            let take = self.aig.add_and(bit, !found);
            let kword = self.constant(idx_width, k as u64);
            index = self.mux_word(take, &kword, &index);
            found = self.aig.add_or(found, bit);
        }
        (index, found)
    }

    /// Logical barrel shifter `a >> s` (zero filled).
    pub fn shr_barrel(&mut self, a: &Word, s: &Word) -> Word {
        let mut cur = a.clone();
        for (stage, &sel) in s.bits().iter().enumerate() {
            let k = 1usize << stage;
            let shifted = Word(
                (0..cur.width())
                    .map(|i| cur.0.get(i + k).copied().unwrap_or(Lit::FALSE))
                    .collect(),
            );
            cur = self.mux_word(sel, &shifted, &cur);
        }
        cur
    }

    /// Logical barrel shifter `a << s` (width preserved, zero filled).
    pub fn shl_barrel(&mut self, a: &Word, s: &Word) -> Word {
        let mut cur = a.clone();
        for (stage, &sel) in s.bits().iter().enumerate() {
            let k = 1usize << stage;
            let shifted = Word(
                (0..cur.width())
                    .map(|i| if i >= k { cur.0[i - k] } else { Lit::FALSE })
                    .collect(),
            );
            cur = self.mux_word(sel, &shifted, &cur);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_equiv::simulate_bools;

    fn eval(aig: &Aig, inputs: u64, n_in: usize) -> u64 {
        let bits: Vec<bool> = (0..n_in).map(|k| inputs >> k & 1 != 0).collect();
        let out = simulate_bools(aig, &bits);
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (k, &b)| acc | (b as u64) << k)
    }

    #[test]
    fn adder_adds() {
        let mut aig = Aig::new();
        let mut b = Builder::new(&mut aig);
        let x = b.input_word(4);
        let y = b.input_word(4);
        let s = b.add(&x, &y);
        b.output_word(&s);
        for (a, c) in [(3u64, 9u64), (15, 15), (0, 0), (7, 8)] {
            let got = eval(&aig, a | c << 4, 8);
            assert_eq!(got, a + c, "{a} + {c}");
        }
    }

    #[test]
    fn subtractor_flags_order() {
        let mut aig = Aig::new();
        let mut b = Builder::new(&mut aig);
        let x = b.input_word(4);
        let y = b.input_word(4);
        let d = b.sub(&x, &y);
        b.output_word(&d);
        for (a, c) in [(9u64, 3u64), (3, 9), (5, 5)] {
            let got = eval(&aig, a | c << 4, 8);
            let expect = (a.wrapping_sub(c) & 0xF) | ((a >= c) as u64) << 4;
            assert_eq!(got, expect, "{a} - {c}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let mut aig = Aig::new();
        let mut b = Builder::new(&mut aig);
        let x = b.input_word(4);
        let y = b.input_word(4);
        let p = b.mul(&x, &y);
        b.output_word(&p);
        for (a, c) in [(3u64, 5u64), (15, 15), (0, 7), (12, 11)] {
            assert_eq!(eval(&aig, a | c << 4, 8), a * c, "{a} * {c}");
        }
    }

    #[test]
    fn divider_divides() {
        let mut aig = Aig::new();
        let mut b = Builder::new(&mut aig);
        let x = b.input_word(6);
        let y = b.input_word(3);
        let (q, r) = b.div(&x, &y);
        b.output_word(&q);
        b.output_word(&r);
        for (a, c) in [(42u64, 5u64), (63, 7), (9, 1), (13, 4)] {
            let got = eval(&aig, a | c << 6, 9);
            let expect = (a / c) | (a % c) << 6;
            assert_eq!(got, expect, "{a} / {c}");
        }
    }

    #[test]
    fn sqrt_roots() {
        let mut aig = Aig::new();
        let mut b = Builder::new(&mut aig);
        let x = b.input_word(8);
        let r = b.sqrt(&x);
        b.output_word(&r);
        for a in [0u64, 1, 4, 10, 81, 100, 255] {
            let got = eval(&aig, a, 8);
            assert_eq!(got, (a as f64).sqrt().floor() as u64, "sqrt({a})");
        }
    }

    #[test]
    fn popcount_counts() {
        let mut aig = Aig::new();
        let mut b = Builder::new(&mut aig);
        let x = b.input_word(7);
        let bits: Vec<Lit> = x.bits().to_vec();
        let c = b.popcount(&bits);
        b.output_word(&c);
        for a in [0u64, 0b1111111, 0b1010101, 0b0011100] {
            assert_eq!(eval(&aig, a, 7), a.count_ones() as u64, "{a:07b}");
        }
    }

    #[test]
    fn priority_encoder_and_shifters() {
        let mut aig = Aig::new();
        let mut b = Builder::new(&mut aig);
        let x = b.input_word(8);
        let (idx, nz) = b.priority_encode(&x);
        let sh = b.shr_barrel(&x, &idx.resized(3));
        b.output_word(&idx);
        b.aig().add_output(nz);
        b.output_word(&sh);
        for a in [1u64, 0b10000000, 0b00101000, 0] {
            let out = eval(&aig, a, 8);
            let idx_got = out & 0x7;
            let nz_got = out >> 3 & 1;
            let sh_got = out >> 4 & 0xFF;
            if a == 0 {
                assert_eq!(nz_got, 0);
            } else {
                let msb = 63 - a.leading_zeros() as u64;
                assert_eq!(idx_got, msb, "msb of {a:08b}");
                assert_eq!(nz_got, 1);
                assert_eq!(sh_got, a >> msb, "normalized {a:08b}");
            }
        }
    }
}
