//! Additional EPFL-style generators beyond the paper's Table 1 set: the
//! rest of the arithmetic/control families a downstream user would expect
//! (`bar`, `max`, `dec`, `arbiter`, `priority`, `int2float`-ish). They are
//! not used by the paper-reproduction harness but round out the suite for
//! general benchmarking.

use dacpara_aig::{Aig, Lit};

use crate::builder::{Builder, Word};

/// `bar`: a logarithmic barrel shifter (`data >> shift`, zero filled).
pub fn barrel_shifter(data_bits: usize) -> Aig {
    let shift_bits = usize::BITS as usize - (data_bits.max(2) - 1).leading_zeros() as usize;
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let data = b.input_word(data_bits);
    let shift = b.input_word(shift_bits);
    let out = b.shr_barrel(&data, &shift);
    b.output_word(&out);
    aig
}

/// `max`: the maximum of four unsigned words (a comparator/mux tree).
pub fn max4(w: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let xs: Vec<Word> = (0..4).map(|_| b.input_word(w)).collect();
    let m01 = {
        let ge = b.ge(&xs[0], &xs[1]);
        b.mux_word(ge, &xs[0], &xs[1])
    };
    let m23 = {
        let ge = b.ge(&xs[2], &xs[3]);
        b.mux_word(ge, &xs[2], &xs[3])
    };
    let ge = b.ge(&m01, &m23);
    let m = b.mux_word(ge, &m01, &m23);
    b.output_word(&m);
    aig
}

/// `dec`: a full `n`-to-`2^n` decoder.
pub fn decoder(n: usize) -> Aig {
    assert!(n <= 12, "decoder width capped at 12 (4096 outputs)");
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let sel = b.input_word(n);
    // Build recursively: half-decoders ANDed pairwise, sharing subterms.
    // Bits are consumed MSB-first so that output `i` corresponds to the
    // select value `i` (the first-processed bit lands in the high digit).
    let mut terms: Vec<Lit> = vec![Lit::TRUE];
    for &bit in sel.bits().iter().rev() {
        let mut next = Vec::with_capacity(terms.len() * 2);
        for &t in &terms {
            next.push(b.aig().add_and(t, !bit));
            next.push(b.aig().add_and(t, bit));
        }
        terms = next;
    }
    for t in terms {
        b.aig().add_output(t);
    }
    aig
}

/// `arbiter`: a round-robin-free fixed-priority arbiter with `n`
/// requesters: grant goes to the lowest-index active request.
pub fn arbiter(n: usize) -> Aig {
    let mut aig = Aig::new();
    let reqs: Vec<Lit> = (0..n).map(|_| aig.add_input()).collect();
    let mut blocked = Lit::FALSE;
    for &r in &reqs {
        let grant = aig.add_and(r, !blocked);
        aig.add_output(grant);
        blocked = aig.add_or(blocked, r);
    }
    aig.add_output(blocked); // "any grant" flag
    aig
}

/// `priority`: a priority encoder over `n` request lines (index of the
/// highest-priority = lowest-index active line, plus a valid flag).
pub fn priority(n: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let reqs = b.input_word(n);
    // Reverse so the *lowest* index wins in the shared priority encoder
    // (which prefers the most significant set bit).
    let reversed = Word(reqs.bits().iter().rev().copied().collect());
    let (idx, valid) = b.priority_encode(&reversed);
    // Convert back: winner = n-1-idx.
    let nm1 = b.constant(idx.width(), (n - 1) as u64);
    let winner = b.sub(&nm1, &idx).resized(idx.width());
    b.output_word(&winner);
    b.aig().add_output(valid);
    aig
}

/// `int2float`-style converter: unsigned integer to a tiny custom float
/// (exponent = position of the leading one, mantissa = next bits) —
/// normalization via priority encoder + barrel shifter, like the EPFL
/// `int2float`.
pub fn int2float(int_bits: usize, mantissa_bits: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(int_bits);
    let (exp, nonzero) = b.priority_encode(&x);
    let top = b.constant(exp.width(), (int_bits - 1) as u64);
    let shift = b.sub(&top, &exp).resized(exp.width());
    let normalized = b.shl_barrel(&x, &shift);
    let mantissa: Vec<Lit> = (0..mantissa_bits)
        .map(|k| normalized.bits()[int_bits - 1 - mantissa_bits + k])
        .collect();
    b.output_word(&exp);
    b.output_word(&Word(mantissa));
    b.aig().add_output(nonzero);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_aig::AigRead;
    use dacpara_equiv::simulate_bools;

    fn eval(aig: &Aig, inputs: u64, n_in: usize) -> u64 {
        let bits: Vec<bool> = (0..n_in).map(|k| inputs >> k & 1 != 0).collect();
        let out = simulate_bools(aig, &bits);
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (k, &b)| acc | (b as u64) << k)
    }

    #[test]
    fn barrel_shifts() {
        let aig = barrel_shifter(8); // 3 shift bits
        for (x, s) in [(0b1011_0000u64, 4u64), (0xFF, 1), (0x81, 7), (0x5A, 0)] {
            let got = eval(&aig, x | s << 8, 11) & 0xFF;
            assert_eq!(got, x >> s, "{x:#x} >> {s}");
        }
    }

    #[test]
    fn max4_selects_maximum() {
        let aig = max4(4);
        for vals in [[3u64, 9, 1, 7], [15, 15, 0, 2], [0, 0, 0, 0], [1, 2, 3, 4]] {
            let packed = vals
                .iter()
                .enumerate()
                .fold(0u64, |acc, (k, &v)| acc | v << (4 * k));
            let got = eval(&aig, packed, 16);
            assert_eq!(got, *vals.iter().max().unwrap(), "{vals:?}");
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let aig = decoder(4);
        assert_eq!(aig.num_outputs(), 16);
        for sel in 0..16u64 {
            let out = eval(&aig, sel, 4);
            assert_eq!(out, 1 << sel, "select {sel}");
        }
    }

    #[test]
    fn arbiter_grants_lowest_active() {
        let aig = arbiter(6);
        for reqs in [0b000000u64, 0b010100, 0b100000, 0b111111] {
            let out = eval(&aig, reqs, 6);
            let grants = out & 0b111111;
            let any = out >> 6 & 1;
            if reqs == 0 {
                assert_eq!(grants, 0);
                assert_eq!(any, 0);
            } else {
                let lowest = reqs.trailing_zeros();
                assert_eq!(grants, 1 << lowest, "reqs {reqs:06b}");
                assert_eq!(any, 1);
            }
        }
    }

    #[test]
    fn priority_reports_lowest_index() {
        let aig = priority(8);
        for reqs in [0b0000_0001u64, 0b1000_0000, 0b0101_0100, 0] {
            let out = eval(&aig, reqs, 8);
            let idx = out & 0x7;
            let valid = out >> 3 & 1;
            if reqs == 0 {
                assert_eq!(valid, 0);
            } else {
                assert_eq!(valid, 1);
                assert_eq!(idx, reqs.trailing_zeros() as u64, "reqs {reqs:08b}");
            }
        }
    }

    #[test]
    fn int2float_normalizes() {
        let aig = int2float(8, 3);
        for x in [1u64, 2, 5, 128, 255] {
            let out = eval(&aig, x, 8);
            let exp = out & 0x7;
            assert_eq!(
                exp,
                63 - x.leading_zeros() as u64,
                "int2float({x}) exponent"
            );
        }
    }

    #[test]
    fn all_extra_generators_check() {
        for aig in [
            barrel_shifter(8),
            max4(4),
            decoder(5),
            arbiter(8),
            priority(8),
            int2float(8, 3),
        ] {
            aig.check().unwrap();
            assert!(aig.num_ands() > 0);
        }
    }
}
