//! MtM-style ("More-than-a-Million gates") benchmark generator.
//!
//! The EPFL MtM set (`sixteen`, `twenty`, `twentythree`) consists of very
//! large circuits with remarkably few PIs/POs and moderate depth — the
//! paper uses them as its "large-scale complex" stress set because their
//! many high-fanout nodes provoke lock conflicts in the ICCAD'18 scheme.
//! This generator reproduces those characteristics: a seeded random
//! composition of AND/XOR/MUX/MAJ macro-patterns over a signal pool, with a
//! deliberately hot subset of high-fanout signals, and enough macro-level
//! redundancy for rewriting to find gains.

use dacpara_aig::{Aig, AigRead, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the MtM-style generator.
#[derive(Copy, Clone, Debug)]
pub struct MtmParams {
    /// Number of primary inputs (the EPFL set has 117–153).
    pub inputs: usize,
    /// Target number of AND gates.
    pub gates: usize,
    /// Number of primary outputs (the EPFL set has 50–68).
    pub outputs: usize,
    /// RNG seed; same seed, same circuit.
    pub seed: u64,
}

/// Generates an MtM-style circuit.
///
/// # Panics
///
/// Panics if `inputs < 2` or `outputs == 0`.
///
/// # Example
///
/// ```
/// use dacpara_aig::AigRead;
/// use dacpara_circuits::{mtm, MtmParams};
///
/// let aig = mtm(&MtmParams { inputs: 32, gates: 500, outputs: 8, seed: 1 });
/// // dead logic is cleaned up, so a substantial share of the gates remains
/// assert!(aig.num_ands() >= 150);
/// assert_eq!(aig.num_inputs(), 32);
/// ```
pub fn mtm(params: &MtmParams) -> Aig {
    assert!(params.inputs >= 2, "need at least two inputs");
    assert!(params.outputs > 0, "need at least one output");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..params.inputs).map(|_| aig.add_input()).collect();
    // A small hot set creates the high-fanout nodes characteristic of the
    // MtM circuits; refreshed occasionally so fanout spreads over levels.
    let mut hot: Vec<Lit> = pool.iter().copied().take(16).collect();

    let pick = |pool: &[Lit], hot: &[Lit], rng: &mut StdRng| -> Lit {
        let base = if rng.gen_bool(0.15) {
            hot[rng.gen_range(0..hot.len())]
        } else if rng.gen_bool(0.5) {
            // Recency bias grows depth without making a pure chain.
            let w = pool.len().min(64);
            pool[pool.len() - 1 - rng.gen_range(0..w)]
        } else {
            pool[rng.gen_range(0..pool.len())]
        };
        base.xor(rng.gen())
    };

    while aig.num_ands() < params.gates {
        let a = pick(&pool, &hot, &mut rng);
        let b = pick(&pool, &hot, &mut rng);
        let out = match rng.gen_range(0..10) {
            // Plain AND dominates, as in strashed random control logic.
            0..=5 => aig.add_and(a, b),
            6 | 7 => aig.add_xor(a, b),
            8 => {
                let s = pick(&pool, &hot, &mut rng);
                aig.add_mux(s, a, b)
            }
            _ => {
                let c = pick(&pool, &hot, &mut rng);
                aig.add_maj(a, b, c)
            }
        };
        if !out.is_const() {
            pool.push(out);
            if aig.num_ands().is_multiple_of(1013) {
                let slot = rng.gen_range(0..hot.len());
                hot[slot] = out;
            }
        }
    }

    // Outputs: the most recent signals (deep roots keep everything alive).
    let mut roots: Vec<Lit> = pool.iter().rev().take(params.outputs).copied().collect();
    while roots.len() < params.outputs {
        roots.push(*pool.last().expect("pool non-empty"));
    }
    for r in roots {
        aig.add_output(r);
    }
    // Dead logic may remain (signals never reaching an output): remove it so
    // "area" means the same as in the paper's tables.
    aig.cleanup();
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MtmParams {
        MtmParams {
            inputs: 40,
            gates: 2000,
            outputs: 16,
            seed: 16,
        }
    }

    #[test]
    fn deterministic_and_valid() {
        let a = mtm(&small());
        let b = mtm(&small());
        a.check().unwrap();
        assert_eq!(a.num_ands(), b.num_ands());
        assert_eq!(
            dacpara_aig::aiger::to_string(&a),
            dacpara_aig::aiger::to_string(&b)
        );
    }

    #[test]
    fn respects_interface_parameters() {
        let p = small();
        let aig = mtm(&p);
        assert_eq!(aig.num_inputs(), p.inputs);
        assert_eq!(aig.num_outputs(), p.outputs);
        assert!(aig.num_ands() >= p.gates / 2, "cleanup kept the bulk");
    }

    #[test]
    fn has_high_fanout_nodes() {
        let aig = mtm(&small());
        let max_fanout = (0..aig.slot_count() as u32)
            .map(|i| aig.fanouts(dacpara_aig::NodeId::new(i)).len())
            .max()
            .unwrap_or(0);
        assert!(
            max_fanout >= 16,
            "hot set must create fanout, got {max_fanout}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = mtm(&small());
        let b = mtm(&MtmParams {
            seed: 17,
            ..small()
        });
        assert_ne!(
            dacpara_aig::aiger::to_string(&a),
            dacpara_aig::aiger::to_string(&b)
        );
    }
}
