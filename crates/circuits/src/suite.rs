//! Named benchmark suites mirroring the paper's Table 1, plus the ABC
//! `double` command.

use dacpara_aig::{Aig, AigRead, Lit};

use crate::arith;
use crate::control;
use crate::mtm::{mtm, MtmParams};

/// `k` disjoint copies of `aig` (fresh inputs per copy, outputs
/// concatenated) — `replicate(aig, 2)` is exactly ABC's `double`.
pub fn replicate(aig: &Aig, k: usize) -> Aig {
    assert!(k >= 1);
    let mut out = Aig::with_capacity(k * aig.num_nodes());
    for _ in 0..k {
        let mut map = vec![Lit::FALSE; aig.slot_count()];
        for &i in aig.inputs() {
            map[i.index()] = out.add_input();
        }
        for n in dacpara_aig::topo_ands(aig) {
            let [a, b] = aig.fanins(n);
            let la = map[a.node().index()].xor(a.is_complement());
            let lb = map[b.node().index()].xor(b.is_complement());
            map[n.index()] = out.add_and(la, lb);
        }
        for &po in aig.outputs() {
            out.add_output(map[po.node().index()].xor(po.is_complement()));
        }
    }
    out
}

/// The ABC `double` command: two disjoint copies.
pub fn double(aig: &Aig) -> Aig {
    replicate(aig, 2)
}

/// `double` applied `times` times (`2^times` copies), as in the paper's
/// `_10xd` benchmark names.
pub fn doubled(aig: &Aig, times: u32) -> Aig {
    replicate(aig, 1usize << times)
}

/// One named benchmark.
#[derive(Debug)]
pub struct Benchmark {
    /// Name following the paper's convention (`mult_3xd`, `sixteen`, …).
    pub name: String,
    /// Which Table 1 source group the benchmark belongs to.
    pub source: &'static str,
    /// The circuit.
    pub aig: Aig,
}

impl Benchmark {
    /// Table 1 row: (name, PIs, POs, area, delay).
    pub fn table1_row(&self) -> (String, usize, usize, usize, u32) {
        (
            self.name.clone(),
            self.aig.num_inputs(),
            self.aig.num_outputs(),
            self.aig.num_ands(),
            self.aig.depth(),
        )
    }
}

/// Suite scale. The paper runs 5–58 M-node circuits on a 64-core server;
/// these presets shrink every generator proportionally so the whole
/// evaluation fits a small container while keeping the *relative* size,
/// depth and complexity profile of Table 1.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Seconds-scale: for unit and integration tests.
    Test,
    /// Default for `cargo bench` smoke runs.
    Small,
    /// Default for the `tables` harness.
    Medium,
}

impl Scale {
    /// How many times the arithmetic benchmarks are doubled.
    fn doubles(self) -> u32 {
        match self {
            Scale::Test => 1,
            Scale::Small => 2,
            Scale::Medium => 3,
        }
    }

    /// Generic width multiplier.
    fn w(self, test: usize, small: usize, medium: usize) -> usize {
        match self {
            Scale::Test => test,
            Scale::Small => small,
            Scale::Medium => medium,
        }
    }
}

/// The arithmetic + random/control suite of Table 1 (`*_Nxd` names, where
/// `N` is the number of `double` applications for this scale).
pub fn arithmetic_suite(scale: Scale) -> Vec<Benchmark> {
    let d = scale.doubles();
    let arith_src = "Arithmetic";
    let ctrl_src = "Random/Control";
    let named = |stem: &str| format!("{stem}_{d}xd");
    let mut out = Vec::new();
    let mut push = |name: String, source: &'static str, aig: Aig| {
        out.push(Benchmark {
            name,
            source,
            aig: doubled(&aig, d),
        });
    };
    push(named("sin"), arith_src, arith::sin(scale.w(6, 8, 10)));
    push(
        named("voter"),
        ctrl_src,
        control::voter(scale.w(25, 101, 201)),
    );
    push(
        named("square"),
        arith_src,
        arith::square(scale.w(6, 12, 18)),
    );
    push(named("sqrt"), arith_src, arith::sqrt(scale.w(5, 8, 12)));
    push(
        named("mult"),
        arith_src,
        arith::multiplier(scale.w(6, 12, 18)),
    );
    push(
        named("log2"),
        arith_src,
        arith::log2(scale.w(8, 12, 16), scale.w(2, 4, 6)),
    );
    push(
        named("mem"),
        ctrl_src,
        control::mem_ctrl(
            scale.w(3, 6, 10),
            scale.w(5, 7, 8),
            scale.w(4, 8, 12),
            0xC0FFEE,
        ),
    );
    push(
        named("hyp"),
        arith_src,
        arith::hypotenuse(scale.w(4, 7, 10)),
    );
    push(named("div"), arith_src, arith::divider(scale.w(6, 10, 14)));
    out
}

/// The MtM-style large/complex suite (`sixteen`, `twenty`, `twentythree`),
/// never doubled — matching the paper's protocol.
pub fn mtm_suite(scale: Scale) -> Vec<Benchmark> {
    let unit = match scale {
        Scale::Test => 800,
        Scale::Small => 4_000,
        Scale::Medium => 16_000,
    };
    [
        ("sixteen", 16usize, 117, 50),
        ("twenty", 20, 137, 60),
        ("twentythree", 23, 153, 68),
    ]
    .into_iter()
    .map(|(name, factor, inputs, outputs)| Benchmark {
        name: name.to_string(),
        source: "MtM",
        aig: mtm(&MtmParams {
            inputs,
            gates: unit * factor / 16,
            outputs,
            seed: factor as u64,
        }),
    })
    .collect()
}

/// The full Table 1 suite: arithmetic + random/control + MtM.
pub fn full_suite(scale: Scale) -> Vec<Benchmark> {
    let mut all = arithmetic_suite(scale);
    all.extend(mtm_suite(scale));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

    #[test]
    fn double_duplicates_everything() {
        let base = arith::adder(4);
        let d = double(&base);
        d.check().unwrap();
        assert_eq!(d.num_inputs(), 2 * base.num_inputs());
        assert_eq!(d.num_outputs(), 2 * base.num_outputs());
        assert_eq!(d.num_ands(), 2 * base.num_ands());
        assert_eq!(d.depth(), base.depth(), "double keeps complexity");
    }

    #[test]
    fn doubled_grows_geometrically() {
        let base = arith::adder(3);
        let d3 = doubled(&base, 3);
        assert_eq!(d3.num_ands(), 8 * base.num_ands());
    }

    #[test]
    fn each_copy_is_equivalent_to_the_original() {
        let base = arith::multiplier(3);
        let d = double(&base);
        // Extract copy #2 as its own AIG by restricting inputs/outputs.
        let mut second = Aig::new();
        let n_in = base.num_inputs();
        let n_out = base.num_outputs();
        let mut map = vec![Lit::FALSE; d.slot_count()];
        // Feed fresh inputs to copy 2, constants to copy 1.
        for (k, &i) in d.inputs().iter().enumerate() {
            map[i.index()] = if k < n_in {
                Lit::FALSE
            } else {
                second.add_input()
            };
        }
        for n in dacpara_aig::topo_ands(&d) {
            let [a, b] = d.fanins(n);
            let la = map[a.node().index()].xor(a.is_complement());
            let lb = map[b.node().index()].xor(b.is_complement());
            map[n.index()] = second.add_and(la, lb);
        }
        for &po in &d.outputs()[n_out..] {
            second.add_output(map[po.node().index()].xor(po.is_complement()));
        }
        assert_eq!(
            check_equivalence(&base, &second, &CecConfig::default()),
            CecResult::Equivalent
        );
    }

    #[test]
    fn test_scale_suite_is_complete_and_valid() {
        let suite = full_suite(Scale::Test);
        assert_eq!(suite.len(), 12);
        let names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"sixteen"));
        assert!(names.iter().any(|n| n.starts_with("mult_")));
        for b in &suite {
            b.aig.check().unwrap();
            assert!(b.aig.num_ands() > 0, "{} is empty", b.name);
        }
    }

    #[test]
    fn mtm_sizes_scale_by_name() {
        let suite = mtm_suite(Scale::Test);
        let area: Vec<usize> = suite.iter().map(|b| b.aig.num_ands()).collect();
        assert!(area[0] < area[1] && area[1] < area[2]);
    }
}
