#![warn(missing_docs)]
//! Benchmark circuit generators standing in for the EPFL suite.
//!
//! The paper evaluates on the EPFL Arithmetic and Random/Control sets
//! (enlarged with ABC's `double`) plus the MtM ("More than a Million
//! gates") set. Those exact netlists are external artifacts; this crate
//! generates circuits *of the same kind and shape* from scratch — a real
//! array multiplier for `mult`, a restoring divider for `div`, a popcount
//! majority for `voter`, an iterative-squaring `log2`, and a seeded
//! high-fanout random fabric for the MtM set. See `DESIGN.md` §2 for the
//! substitution argument.
//!
//! # Example
//!
//! ```
//! use dacpara_aig::AigRead;
//! use dacpara_circuits::{full_suite, Scale};
//!
//! let suite = full_suite(Scale::Test);
//! assert_eq!(suite.len(), 12); // 9 arithmetic/control + 3 MtM
//! for bench in &suite {
//!     assert!(bench.aig.num_ands() > 0, "{}", bench.name);
//! }
//! ```

pub mod arith;
mod builder;
pub mod control;
pub mod more;
mod mtm;
mod suite;

pub use builder::{Builder, Word};
pub use mtm::{mtm, MtmParams};
pub use suite::{
    arithmetic_suite, double, doubled, full_suite, mtm_suite, replicate, Benchmark, Scale,
};
