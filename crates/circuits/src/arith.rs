//! Arithmetic benchmark generators (the EPFL arithmetic set, scaled).
//!
//! Each generator builds a *real* datapath of the same kind as its EPFL
//! namesake — an array multiplier for `mult`, a restoring divider for `div`,
//! and so on — so the AIGs exhibit the cut/NPN-class mix, sharing and depth
//! profile that drive rewriting behaviour. Bit-widths are parameters so the
//! suite can be scaled to the host (see `DESIGN.md` §2).

use dacpara_aig::Aig;

use crate::builder::{Builder, Word};

/// `mult`: unsigned `w × w` array multiplier.
pub fn multiplier(w: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(w);
    let y = b.input_word(w);
    let p = b.mul(&x, &y);
    b.output_word(&p);
    aig
}

/// `square`: unsigned squarer.
pub fn square(w: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(w);
    let p = b.square(&x);
    b.output_word(&p);
    aig
}

/// `adder`: ripple-carry adder (used by tests and ablations).
pub fn adder(w: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(w);
    let y = b.input_word(w);
    let s = b.add(&x, &y);
    b.output_word(&s);
    aig
}

/// `div`: restoring divider producing quotient and remainder. Very deep
/// (the EPFL `div` has delay in the thousands; so does this one, scaled).
pub fn divider(w: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(w);
    let y = b.input_word(w);
    let (q, r) = b.div(&x, &y);
    b.output_word(&q);
    b.output_word(&r);
    aig
}

/// `sqrt`: restoring square root of a `2w`-bit radicand.
pub fn sqrt(w: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(2 * w);
    let r = b.sqrt(&x);
    b.output_word(&r);
    aig
}

/// `hyp`: hypotenuse `floor(sqrt(x² + y²))` — squares, an adder and a deep
/// square root, mirroring the EPFL `hyp`'s "deepest benchmark" role.
pub fn hypotenuse(w: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(w);
    let y = b.input_word(w);
    let x2 = b.square(&x);
    let y2 = b.square(&y);
    let sum = b.add(&x2, &y2).resized(2 * w + 2);
    let r = b.sqrt(&sum.resized(2 * (w + 1)));
    b.output_word(&r);
    aig
}

/// `log2`: integer part via priority encoder + barrel-shifter
/// normalization, fractional bits by the classic iterative-squaring method
/// (one full-width squarer per fractional bit — this is why the EPFL `log2`
/// is one of the largest arithmetic benchmarks).
pub fn log2(w: usize, frac_bits: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(w);
    let (exp, nonzero) = b.priority_encode(&x);
    // Normalize: mantissa = x << (w-1 - exp), so the MSB lands at w-1 and
    // the mantissa value m is in [1, 2) with w-1 fraction bits.
    let wconst = b.constant(exp.width(), (w - 1) as u64);
    let shift = b.sub(&wconst, &exp).resized(exp.width());
    let mut m = b.shl_barrel(&x, &shift);
    // Iterative squaring: m <- m²; the bit above the binade boundary is the
    // next fractional bit of log2(m), after which m is renormalized.
    let mut frac = Vec::with_capacity(frac_bits);
    for _ in 0..frac_bits {
        let sq = b.square(&m); // 2w bits, value in [2^(2w-2), 2^(2w))
        let top = sq.bits()[2 * w - 1]; // m² >= 2 ?
        let hi = Word(sq.bits()[w..2 * w].to_vec());
        let lo = Word(sq.bits()[w - 1..2 * w - 1].to_vec());
        m = b.mux_word(top, &hi, &lo);
        frac.push(top);
    }
    b.output_word(&exp);
    b.output_word(&Word(frac));
    b.aig().add_output(nonzero);
    aig
}

/// `sin`: fixed-point odd-polynomial approximation
/// `sin(x) ≈ x·(C0 − x²·(C1 − x²·C2))` with `w`-bit operands — the same
/// multiplier-dominated structure as the EPFL `sin`.
pub fn sin(w: usize) -> Aig {
    let mut aig = Aig::new();
    let mut b = Builder::new(&mut aig);
    let x = b.input_word(w);
    // Fixed-point constants with w fractional bits:
    // C0 = 1.0, C1 = 1/6, C2 = 1/120.
    let one = 1u64 << (w - 1);
    let c1 = b.constant(w, (one as f64 / 6.0) as u64);
    let c2 = b.constant(w, (one as f64 / 120.0) as u64);
    let x2 = b.square(&x); // 2w bits
    let x2 = scale_down(&x2, w); // back to w fractional bits
    let t2 = b.mul(&x2, &c2);
    let t2 = scale_down(&t2, w);
    let t1 = b.sub(&c1, &t2).resized(w);
    let t0 = b.mul(&x2, &t1);
    let t0 = scale_down(&t0, w);
    let one_w = b.constant(w, one);
    let poly = b.sub(&one_w, &t0).resized(w);
    let s = b.mul(&x, &poly);
    b.output_word(&s.resized(2 * w));
    aig
}

/// Drops the low `k` bits (fixed-point rescale after a multiply).
fn scale_down(w: &Word, k: usize) -> Word {
    Word(w.bits()[k.min(w.width())..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_aig::AigRead;
    use dacpara_equiv::simulate_bools;

    fn eval(aig: &Aig, inputs: u64, n_in: usize) -> u64 {
        let bits: Vec<bool> = (0..n_in).map(|k| inputs >> k & 1 != 0).collect();
        let out = simulate_bools(aig, &bits);
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (k, &b)| acc | (b as u64) << k)
    }

    #[test]
    fn generators_produce_valid_graphs() {
        for aig in [
            multiplier(6),
            square(6),
            adder(8),
            divider(6),
            sqrt(4),
            hypotenuse(4),
            log2(8, 4),
            sin(8),
        ] {
            aig.check().unwrap();
            assert!(aig.num_ands() > 0);
        }
    }

    #[test]
    fn hypotenuse_matches_reference() {
        let aig = hypotenuse(4);
        for (x, y) in [(3u64, 4u64), (5, 12), (0, 0), (15, 15), (7, 1)] {
            let got = eval(&aig, x | y << 4, 8);
            let expect = ((x * x + y * y) as f64).sqrt().floor() as u64;
            assert_eq!(got, expect, "hyp({x},{y})");
        }
    }

    #[test]
    fn log2_integer_part_is_msb_index() {
        let aig = log2(8, 4);
        for x in [1u64, 2, 3, 128, 200, 255] {
            let out = eval(&aig, x, 8);
            let exp = out & 0x7;
            assert_eq!(exp, 63 - x.leading_zeros() as u64, "log2({x})");
        }
    }

    #[test]
    fn log2_fractional_bits_via_squaring() {
        let aig = log2(8, 4);
        // Outputs: exp (3 bits), frac (4 bits, most significant first), nz.
        let frac_of = |x: u64| (eval(&aig, x, 8) >> 3) & 0xF;
        // log2(2) = 1.0 → no fractional part.
        assert_eq!(frac_of(2), 0);
        // log2(3) = 1.5849…; binary fraction .1001… → bits (msb first) 1,0,0,1.
        assert_eq!(frac_of(3), 0b1001);
        // log2(6) has the same fraction as log2(3).
        assert_eq!(frac_of(6), frac_of(3));
    }

    #[test]
    fn divider_depth_dwarfs_multiplier_depth() {
        let m = multiplier(8);
        let d = divider(8);
        assert!(d.depth() > 2 * m.depth(), "div must be much deeper");
    }

    #[test]
    fn sin_is_monotone_on_small_inputs() {
        // On [0, ~0.5) the fixed-point polynomial must be monotonically
        // nondecreasing — a smoke test that the datapath is wired sanely.
        let w = 8;
        let aig = sin(w);
        let mut last = 0u64;
        for x in 0..(1u64 << (w - 2)) {
            let got = eval(&aig, x, w);
            assert!(got >= last, "sin LUT dipped at {x}: {got} < {last}");
            last = got;
        }
    }
}
