//! Seeded randomized-interleaving stress for the work-stealing scheduler.
//!
//! The unit tests in `sched.rs`/`deque.rs` pin the deterministic contracts;
//! this suite hammers the concurrent ones: across many seeds, worker
//! counts, round lengths and injected scheduling jitter, no item may be
//! lost or duplicated, retry counts must be exact, and one pool/deque must
//! survive reset-reuse across rounds.
//!
//! Everything is derived from explicit seeds (the shim `StdRng` plus a
//! splitmix hash), so a failure reproduces from its printed seed.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use dacpara_galois::{run_spmd, ItemOutcome, Steal, StealDeque, StealPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-(seed, item) hash, so every thread agrees on an item's
/// scripted behavior without sharing state.
fn mix(seed: u64, item: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(item)
        .wrapping_add(0x1234_5678_9ABC_DEF1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How many times item `i` is scripted to conflict before completing.
fn scripted_retries(seed: u64, i: usize) -> u32 {
    (mix(seed, i as u64) % 5) as u32
}

#[test]
fn randomized_rounds_never_lose_or_duplicate_items() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let workers = rng.gen_range(1..5usize);
        let pool = StealPool::new(workers);
        let mut expected_retries = 0u64;
        for round in 0..4u64 {
            let len = rng.gen_range(0..2500usize);
            let round_seed = mix(seed, round);
            let runs: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
            let done: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
            pool.begin(len);
            let (pool, runs, done) = (&pool, &runs, &done);
            run_spmd(workers, |w| {
                // Per-worker jitter stream: occasional yields perturb the
                // interleaving differently on every (seed, round, worker).
                let mut jitter = StdRng::seed_from_u64(mix(round_seed, w.id as u64));
                pool.drive(w.id, |i, tries| {
                    runs[i].fetch_add(1, Ordering::Relaxed);
                    if jitter.gen_bool(0.05) {
                        std::thread::yield_now();
                    }
                    if tries < scripted_retries(round_seed, i) {
                        ItemOutcome::Retry
                    } else {
                        done[i].fetch_add(1, Ordering::Relaxed);
                        ItemOutcome::Done
                    }
                });
            });
            for i in 0..len {
                let want = 1 + scripted_retries(round_seed, i);
                assert_eq!(
                    runs[i].load(Ordering::Relaxed),
                    want,
                    "seed {seed} round {round} item {i}: wrong run count"
                );
                assert_eq!(
                    done[i].load(Ordering::Relaxed),
                    1,
                    "seed {seed} round {round} item {i}: completed != once"
                );
                expected_retries += u64::from(want - 1);
            }
        }
        // Retry accounting is exact across all reused rounds of the pool.
        assert_eq!(
            pool.stats().retries(),
            expected_retries,
            "seed {seed}: retry counter drifted"
        );
    }
}

#[test]
fn deque_survives_randomized_owner_thief_interleavings() {
    for seed in 0..6u64 {
        let deque = StealDeque::new(256);
        let total = 20_000usize;
        let taken: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
        let produced = AtomicUsize::new(0);
        let stop = AtomicU32::new(0);
        let (deque, taken, produced, stop) = (&deque, &taken, &produced, &stop);
        std::thread::scope(|s| {
            // Three thieves steal continuously until the owner is done and
            // the ring is drained.
            for t in 0..3u64 {
                s.spawn(move || {
                    let mut jitter = StdRng::seed_from_u64(mix(seed, 100 + t));
                    loop {
                        match deque.steal() {
                            Steal::Taken(v) => {
                                taken[v].fetch_add(1, Ordering::Relaxed);
                            }
                            Steal::Empty => {
                                if stop.load(Ordering::Acquire) == 1 {
                                    return;
                                }
                                std::hint::spin_loop();
                            }
                            Steal::Retry => std::hint::spin_loop(),
                        }
                        if jitter.gen_bool(0.01) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            // The owner interleaves seeded bursts of pushes with pops.
            let mut rng = StdRng::seed_from_u64(seed);
            while produced.load(Ordering::Relaxed) < total {
                let burst = rng.gen_range(1..9usize);
                for _ in 0..burst {
                    let next = produced.load(Ordering::Relaxed);
                    if next >= total || deque.push(next).is_err() {
                        break;
                    }
                    produced.store(next + 1, Ordering::Relaxed);
                }
                let pops = rng.gen_range(0..4usize);
                for _ in 0..pops {
                    if let Some(v) = deque.pop() {
                        taken[v].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = deque.pop() {
                taken[v].fetch_add(1, Ordering::Relaxed);
            }
            stop.store(1, Ordering::Release);
        });
        for (i, t) in taken.iter().enumerate() {
            assert_eq!(
                t.load(Ordering::Relaxed),
                1,
                "seed {seed}: item {i} taken != once"
            );
        }
        assert!(deque.is_empty());
    }
}

#[test]
fn pool_reset_reuse_interleaves_empty_and_skewed_rounds() {
    // Alternating empty, tiny, and heavily skewed rounds on one pool: the
    // begin/drain lifecycle must hold regardless of the previous round's
    // shape, and retry queues must come back empty every time.
    let pool = StealPool::new(3);
    let lens = [0usize, 1, 777, 0, 2, 1500, 3, 0, 64];
    for (round, &len) in lens.iter().enumerate() {
        let hits: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        pool.begin(len);
        let (pool, hits) = (&pool, &hits);
        run_spmd(3, |w| {
            pool.drive(w.id, |i, tries| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                // Skew: the first eighth of each round conflicts twice.
                if i < len / 8 && tries < 2 {
                    ItemOutcome::Retry
                } else {
                    ItemOutcome::Done
                }
            });
        });
        for (i, h) in hits.iter().enumerate() {
            let want = if i < len / 8 { 3 } else { 1 };
            assert_eq!(h.load(Ordering::Relaxed), want, "round {round} item {i}");
        }
    }
}

#[test]
fn retry_storm_with_blocking_fallback_terminates() {
    // Every item conflicts until the engine-style ceiling, at which point
    // the operator resolves it inline — the pattern the rewriting engines
    // use. The round must terminate with exact completion counts.
    use dacpara_galois::MAX_SCHED_RETRIES;
    let pool = StealPool::new(4);
    let len = 400usize;
    let completed: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
    pool.begin(len);
    let (pool, completed) = (&pool, &completed);
    run_spmd(4, |w| {
        pool.drive(w.id, |i, tries| {
            if tries < MAX_SCHED_RETRIES {
                ItemOutcome::Retry
            } else {
                completed[i].fetch_add(1, Ordering::Relaxed);
                ItemOutcome::Done
            }
        });
    });
    for (i, c) in completed.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
    }
    assert_eq!(
        pool.stats().retries(),
        u64::from(MAX_SCHED_RETRIES) * len as u64
    );
}
