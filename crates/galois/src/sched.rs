//! Work-stealing scheduler with in-round conflict retry.
//!
//! The barrier engines distribute a worklist through [`crate::WorkQueue`]:
//! workers grab fixed-size chunks from a shared atomic cursor, and a node
//! whose speculative commit keeps hitting lock conflicts pins its worker in
//! a spin-retry loop — the serialization-by-conflict waste that "Parallel
//! AIG Refactoring via Conflict Breaking" identifies as the dominant loss
//! in parallel AIG optimization. [`StealPool`] replaces that scheme:
//!
//! * **Per-worker Chase-Lev deques** ([`crate::StealDeque`]). Each worker
//!   seeds its own deque with one contiguous block of the worklist; idle
//!   workers steal the oldest (largest) outstanding range from a victim.
//! * **Adaptive chunk sizing.** A popped or stolen range larger than the
//!   quantum (seeded from [`crate::chunk_size`]) is halved: the tail half
//!   goes back on the worker's own deque — where thieves can take it —
//!   and the head half is halved again, so chunk granularity adapts to
//!   how much work is left instead of being fixed up front.
//! * **A per-worker conflict retry queue.** An item whose operator reports
//!   [`ItemOutcome::Retry`] (a Galois lock conflict) is re-enqueued on its
//!   worker's retry queue with exponential backoff — measured in locally
//!   processed items, not wall time — and retried *within the same round*
//!   once other useful work has had a chance to drain the contended
//!   region. The worker stays busy in the meantime.
//!
//! Termination: a round ends when every seeded item has reported
//! [`ItemOutcome::Done`]. Retried items stay pending, so a worker whose
//! deque and steal attempts come up empty keeps servicing its retry queue
//! (forcing overdue entries rather than idling) until the global pending
//! count reaches zero.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::deque::{Steal, StealDeque};
use crate::spmd::chunk_size;

/// What an operator did with a scheduled item.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ItemOutcome {
    /// The item is finished (committed, skipped, or abandoned) and must not
    /// be scheduled again.
    Done,
    /// The item hit a transient conflict; re-enqueue it on this worker's
    /// retry queue with backoff and try again later in the same round.
    Retry,
}

/// Retry ceiling: once an item has been rescheduled this many times the
/// caller should stop yielding and resolve it inline (e.g. by blocking
/// spin-retry, which is guaranteed to make progress).
pub const MAX_SCHED_RETRIES: u32 = 12;

struct ObsHandles {
    steals: Arc<dacpara_obs::ShardedCounter>,
    retries: Arc<dacpara_obs::ShardedCounter>,
    retry_commits: Arc<dacpara_obs::ShardedCounter>,
}

fn obs() -> &'static ObsHandles {
    static HANDLES: OnceLock<ObsHandles> = OnceLock::new();
    HANDLES.get_or_init(|| ObsHandles {
        steals: dacpara_obs::counter("sched.steals"),
        retries: dacpara_obs::counter("sched.retries"),
        retry_commits: dacpara_obs::counter("sched.retry_commits"),
    })
}

/// Counters describing one scheduler's activity. Like
/// [`crate::SpecStats`], the global observability counters (`sched.steals`,
/// `sched.retries`, `sched.retry_commits`) are fed only by the leaf-level
/// `record_*` calls, never by aggregation, so obs totals always equal the
/// sum of recordings.
#[derive(Debug, Default)]
pub struct SchedStats {
    steals: AtomicU64,
    retries: AtomicU64,
    retry_commits: AtomicU64,
}

impl SchedStats {
    /// Creates zeroed counters.
    pub fn new() -> SchedStats {
        SchedStats::default()
    }

    /// Records one successful steal of a range from another worker.
    pub fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
        if dacpara_obs::is_enabled() {
            obs().steals.incr();
        }
    }

    /// Records one conflict re-enqueue onto a retry queue.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        if dacpara_obs::is_enabled() {
            obs().retries.incr();
        }
    }

    /// Records an activity that committed on a retried item — work the
    /// barrier scheduler would have spun on (or lost until the next pass).
    pub fn record_retry_commit(&self) {
        self.retry_commits.fetch_add(1, Ordering::Relaxed);
        if dacpara_obs::is_enabled() {
            obs().retry_commits.incr();
        }
    }

    /// Ranges stolen from other workers.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Conflict re-enqueues.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Commits that landed on a retried item.
    pub fn retry_commits(&self) -> u64 {
        self.retry_commits.load(Ordering::Relaxed)
    }

    /// Plain-value snapshot for reporting.
    pub fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            steals: self.steals(),
            retries: self.retries(),
            retry_commits: self.retry_commits(),
        }
    }
}

/// A point-in-time copy of [`SchedStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// Ranges stolen from other workers.
    pub steals: u64,
    /// Conflict re-enqueues onto retry queues.
    pub retries: u64,
    /// Commits that landed on a retried item.
    pub retry_commits: u64,
}

impl std::fmt::Display for SchedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steals={} retries={} retry-commits={}",
            self.steals, self.retries, self.retry_commits
        )
    }
}

/// One retry-queue entry: an item index, how many times it has conflicted,
/// and the owner-local logical time before which it should not run again.
#[derive(Copy, Clone, Debug)]
struct RetryEntry {
    item: usize,
    tries: u32,
    not_before: u64,
}

/// Per-worker scheduler state, padded to its own cache-line neighborhood by
/// the surrounding allocation order (deque ring dominates the footprint).
struct WorkerSlot {
    deque: StealDeque,
    /// Conflict retry queue. Only the owning worker pushes and pops; the
    /// mutex (uncontended in that regime) keeps the slot `Sync` so the pool
    /// can be shared by reference across the SPMD team.
    retry: Mutex<Vec<RetryEntry>>,
    /// Owner-local logical clock: one tick per item execution. Backoff
    /// deadlines are expressed in these ticks.
    clock: AtomicU64,
}

impl WorkerSlot {
    fn new() -> WorkerSlot {
        WorkerSlot {
            deque: StealDeque::new(1024),
            retry: Mutex::new(Vec::new()),
            clock: AtomicU64::new(0),
        }
    }
}

/// Packs an index range into one deque item. Worklists are bounded by the
/// `u32` node-id space, so 32+32 bits always fit.
fn pack(start: usize, end: usize) -> usize {
    debug_assert!(end <= u32::MAX as usize && start <= end);
    (start << 32) | end
}

fn unpack(item: usize) -> (usize, usize) {
    (item >> 32, item & u32::MAX as usize)
}

/// A reusable work-stealing pool for one SPMD team.
///
/// Lifecycle per round: the leader calls [`StealPool::begin`] (between
/// barriers, or before the team starts), then every worker calls
/// [`StealPool::drive`] with the same operator closure. `begin` re-arms the
/// pool, so one pool serves every stage of every worklist of a pass.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use dacpara_galois::{run_spmd, ItemOutcome, StealPool};
///
/// let pool = StealPool::new(4);
/// let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
/// pool.begin(hits.len());
/// let (pool, hits) = (&pool, &hits);
/// run_spmd(4, |w| {
///     pool.drive(w.id, |i, _tries| {
///         hits[i].fetch_add(1, Ordering::Relaxed);
///         ItemOutcome::Done
///     });
/// });
/// assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
/// ```
pub struct StealPool {
    slots: Box<[WorkerSlot]>,
    /// Items seeded this round that have not yet reported `Done`.
    pending: AtomicUsize,
    /// Set when an operator panicked mid-round. The panicking worker's
    /// in-flight and queued items will never report `Done`, so the other
    /// workers' `drive` loops bail out instead of spinning on `pending`
    /// forever; the panic itself propagates through the SPMD scope join.
    poisoned: AtomicBool,
    len: AtomicUsize,
    quantum: AtomicUsize,
    stats: SchedStats,
}

impl StealPool {
    /// Creates a pool for a team of `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> StealPool {
        assert!(workers > 0, "need at least one worker");
        StealPool {
            slots: (0..workers).map(|_| WorkerSlot::new()).collect(),
            pending: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            len: AtomicUsize::new(0),
            quantum: AtomicUsize::new(1),
            stats: SchedStats::default(),
        }
    }

    /// Team size this pool was built for.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// The scheduler counters accumulated across every round so far.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Re-arms the pool for a round over `0..len`.
    ///
    /// Must be called while no worker is driving — from the leader between
    /// barriers, or before the team starts. Each worker seeds its own block
    /// at the top of [`StealPool::drive`], so no cross-thread deque pushes
    /// happen here.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the previous round did not drain — pending items
    /// or forgotten retry-queue entries mean `begin` is about to silently
    /// discard scheduled work.
    pub fn begin(&self, len: usize) {
        if self.poisoned.swap(false, Ordering::AcqRel) {
            // The previous round was abandoned by an operator panic; discard
            // its leftovers so the pool is reusable once the caller has
            // handled the panic. `begin` runs single-threaded, so popping
            // the other workers' deques here is race-free.
            for slot in self.slots.iter() {
                while slot.deque.pop().is_some() {}
                slot.retry.lock().clear();
            }
            self.pending.store(0, Ordering::Relaxed);
        }
        debug_assert_eq!(
            self.pending.load(Ordering::Relaxed),
            0,
            "StealPool::begin while {} items of the previous round are still pending",
            self.pending.load(Ordering::Relaxed),
        );
        debug_assert!(
            self.slots.iter().all(|s| s.retry.lock().is_empty()),
            "StealPool::begin with undrained retry queues"
        );
        debug_assert!(self.slots.iter().all(|s| s.deque.is_empty()));
        self.len.store(len, Ordering::Relaxed);
        let quantum = if len == 0 {
            1
        } else {
            chunk_size(len, self.slots.len())
        };
        self.quantum.store(quantum, Ordering::Relaxed);
        self.pending.store(len, Ordering::Release);
    }

    /// Runs worker `id`'s share of the round: seeds its block, then drains
    /// local work, steals, and services the conflict retry queue until every
    /// item of the round is done.
    ///
    /// `f(item, tries)` executes one item; `tries` is how many times this
    /// item has already been re-enqueued (0 on first execution). Returning
    /// [`ItemOutcome::Retry`] re-enqueues with backoff; the operator must
    /// stop yielding by [`MAX_SCHED_RETRIES`] — the scheduler trusts the
    /// closure to eventually return [`ItemOutcome::Done`].
    pub fn drive<F>(&self, id: usize, mut f: F)
    where
        F: FnMut(usize, u32) -> ItemOutcome,
    {
        let me = &self.slots[id];
        let workers = self.slots.len();
        let len = self.len.load(Ordering::Relaxed);
        let quantum = self.quantum.load(Ordering::Relaxed);
        // Seed this worker's contiguous block of the round.
        let (start, end) = (id * len / workers, (id + 1) * len / workers);
        if start < end {
            // A freshly begun round always has deque space.
            me.deque.push(pack(start, end)).expect("empty deque");
        }
        let mut victim = id;
        let mut idle = 0u32;
        loop {
            // 1. A retry entry whose backoff has expired takes priority:
            // the contended region has had the most time to clear.
            if let Some(entry) = self.take_retry(me, false) {
                self.run_item(me, entry.item, entry.tries, &mut f);
                idle = 0;
                continue;
            }
            // 2. Own deque (newest first: best locality, leaves the oldest
            // — largest — ranges for thieves).
            if let Some(range) = me.deque.pop() {
                self.run_range(me, range, quantum, &mut f);
                idle = 0;
                continue;
            }
            // 3. Steal a range from someone else.
            if let Some(range) = self.try_steal(id, &mut victim) {
                self.stats.record_steal();
                self.run_range(me, range, quantum, &mut f);
                idle = 0;
                continue;
            }
            // A panicked teammate can never finish its share of the round;
            // bail out so the team unwinds instead of spinning on `pending`.
            if self.poisoned.load(Ordering::Acquire) {
                return;
            }
            // 4. Only unready retries left locally: give the backoff a few
            // polls to expire, then force the earliest entry rather than
            // idle (there is no other useful work to interleave anyway).
            if !me.retry.lock().is_empty() {
                idle += 1;
                if idle > 32 {
                    if let Some(entry) = self.take_retry(me, true) {
                        self.run_item(me, entry.item, entry.tries, &mut f);
                        idle = 0;
                        continue;
                    }
                }
                std::thread::yield_now();
                continue;
            }
            // 5. Nothing local: the round is over when every item is done;
            // until then other workers may still publish stealable halves.
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            idle += 1;
            if idle < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Executes `start..end`, halving oversized ranges back onto the local
    /// deque so other workers can steal the tail while this one works the
    /// head (lazy binary splitting).
    fn run_range<F>(&self, me: &WorkerSlot, range: usize, quantum: usize, f: &mut F)
    where
        F: FnMut(usize, u32) -> ItemOutcome,
    {
        let (start, mut end) = unpack(range);
        while end - start > quantum {
            let mid = start + (end - start) / 2;
            if me.deque.push(pack(mid, end)).is_err() {
                // Ring full (pathological): just process the whole range.
                break;
            }
            end = mid;
        }
        for item in start..end {
            self.run_item(me, item, 0, f);
        }
    }

    fn run_item<F>(&self, me: &WorkerSlot, item: usize, tries: u32, f: &mut F)
    where
        F: FnMut(usize, u32) -> ItemOutcome,
    {
        let now = me.clock.fetch_add(1, Ordering::Relaxed);
        // Mark the pool if `f` unwinds: the panicking worker abandons its
        // queued items, so without the flag every other worker would spin
        // on `pending` forever (and the panic would never surface).
        struct PoisonOnUnwind<'a>(&'a AtomicBool);
        impl Drop for PoisonOnUnwind<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::Release);
                }
            }
        }
        let guard = PoisonOnUnwind(&self.poisoned);
        let outcome = f(item, tries);
        std::mem::forget(guard);
        match outcome {
            ItemOutcome::Done => {
                let prev = self.pending.fetch_sub(1, Ordering::AcqRel);
                debug_assert!(prev > 0, "more Done items than were seeded");
            }
            ItemOutcome::Retry => {
                self.stats.record_retry();
                let backoff = 1u64 << tries.min(8);
                me.retry.lock().push(RetryEntry {
                    item,
                    tries: tries + 1,
                    not_before: now + backoff,
                });
            }
        }
    }

    /// Pops one retry entry: the ready entry with the earliest deadline, or
    /// with `force` the earliest deadline regardless of readiness.
    fn take_retry(&self, me: &WorkerSlot, force: bool) -> Option<RetryEntry> {
        let now = me.clock.load(Ordering::Relaxed);
        let mut queue = me.retry.lock();
        let best = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.not_before)
            .map(|(i, e)| (i, e.not_before))?;
        if !force && best.1 > now {
            return None;
        }
        Some(queue.swap_remove(best.0))
    }

    /// One round-robin sweep over the other workers' deques.
    fn try_steal(&self, id: usize, victim: &mut usize) -> Option<usize> {
        let workers = self.slots.len();
        for _ in 0..workers.saturating_sub(1) {
            *victim = (*victim + 1) % workers;
            if *victim == id {
                *victim = (*victim + 1) % workers;
            }
            if *victim == id {
                return None; // single-worker pool
            }
            loop {
                match self.slots[*victim].deque.steal() {
                    Steal::Taken(range) => return Some(range),
                    Steal::Empty => break,
                    Steal::Retry => std::hint::spin_loop(),
                }
            }
        }
        None
    }
}

impl std::fmt::Debug for StealPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealPool")
            .field("workers", &self.slots.len())
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_spmd;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn single_worker_processes_in_order() {
        let pool = StealPool::new(1);
        pool.begin(100);
        let seen = Mutex::new(Vec::new());
        pool.drive(0, |i, tries| {
            assert_eq!(tries, 0);
            seen.lock().push(i);
            ItemOutcome::Done
        });
        let seen = seen.into_inner();
        assert_eq!(
            seen,
            (0..100).collect::<Vec<_>>(),
            "LIFO halving is in-order"
        );
        assert_eq!(pool.stats().steals(), 0);
    }

    #[test]
    fn empty_round_is_a_noop() {
        let pool = StealPool::new(4);
        pool.begin(0);
        let pool = &pool;
        run_spmd(4, |w| pool.drive(w.id, |_, _| panic!("no items")));
    }

    #[test]
    fn every_item_runs_once_under_stealing() {
        let pool = StealPool::new(4);
        let hits: Vec<AtomicU32> = (0..50_000).map(|_| AtomicU32::new(0)).collect();
        pool.begin(hits.len());
        let (pool, hits) = (&pool, &hits);
        run_spmd(4, |w| {
            pool.drive(w.id, |i, _| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                ItemOutcome::Done
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn retries_rerun_the_item_with_backoff() {
        let pool = StealPool::new(2);
        let runs: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        pool.begin(runs.len());
        let (pool, runs) = (&pool, &runs);
        run_spmd(2, |w| {
            pool.drive(w.id, |i, tries| {
                runs[i].fetch_add(1, Ordering::Relaxed);
                // Item i conflicts i % 3 times before completing.
                if (tries as usize) < i % 3 {
                    ItemOutcome::Retry
                } else {
                    ItemOutcome::Done
                }
            });
        });
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed) as usize, 1 + i % 3, "item {i}");
        }
        let expected: u64 = (0..200).map(|i| (i % 3) as u64).sum();
        assert_eq!(pool.stats().retries(), expected);
    }

    #[test]
    fn rounds_reuse_the_pool() {
        let pool = StealPool::new(3);
        for round in 1..=5usize {
            let len = round * 97;
            let hits: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
            pool.begin(len);
            let (pool, hits) = (&pool, &hits);
            run_spmd(3, |w| {
                pool.drive(w.id, |i, tries| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                    if tries == 0 && i % 7 == 0 {
                        ItemOutcome::Retry
                    } else {
                        ItemOutcome::Done
                    }
                });
            });
            assert_eq!(
                hits.iter()
                    .enumerate()
                    .map(|(i, h)| {
                        let expect = if i % 7 == 0 { 2 } else { 1 };
                        assert_eq!(h.load(Ordering::Relaxed), expect, "item {i}");
                        1usize
                    })
                    .sum::<usize>(),
                len
            );
        }
    }

    #[test]
    fn worker_panic_poisons_the_round_instead_of_hanging() {
        let pool = StealPool::new(2);
        pool.begin(1000);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let pool = &pool;
            run_spmd(2, |w| {
                pool.drive(w.id, |i, _| {
                    assert_ne!(i, 500, "operator bug");
                    ItemOutcome::Done
                });
            });
        }));
        assert!(caught.is_err(), "the operator panic must propagate");
        // The next `begin` discards the abandoned round and the pool works
        // again.
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        pool.begin(hits.len());
        let (pool, hits) = (&pool, &hits);
        run_spmd(2, |w| {
            pool.drive(w.id, |i, _| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                ItemOutcome::Done
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "still pending")]
    fn begin_without_drain_panics_in_debug() {
        let pool = StealPool::new(1);
        pool.begin(4);
        pool.begin(4); // nothing was driven: 4 items silently discarded
    }
}
