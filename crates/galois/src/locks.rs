//! Per-element exclusive try-locks with Galois abort semantics.
//!
//! Galois operators acquire exclusive locks on every graph element they will
//! touch; when a lock is already held by another activity the acquiring
//! activity *aborts* — releasing everything it held and retrying later —
//! rather than blocking (blocking could deadlock and would hide the wasted
//! work the paper's Fig. 2 is about).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use dacpara_obs::LogHistogram;

use crate::stats::SpecStats;

fn hold_time_histogram() -> &'static Arc<LogHistogram> {
    static H: OnceLock<Arc<LogHistogram>> = OnceLock::new();
    H.get_or_init(|| dacpara_obs::histogram("galois.lock_hold_ns"))
}

/// A table of exclusive try-locks, one per graph element.
///
/// Owners are identified by a non-zero `u32` (worker id + 1).
///
/// # Example
///
/// ```
/// use dacpara_galois::LockTable;
///
/// let table = LockTable::new(16);
/// let set = table.try_acquire(1, vec![3, 7, 7, 5]).expect("uncontended");
/// assert!(table.try_acquire(2, vec![5]).is_none()); // conflict
/// drop(set);
/// assert!(table.try_acquire(2, vec![5]).is_some());
/// ```
pub struct LockTable {
    slots: Box<[AtomicU32]>,
    stats: SpecStats,
}

impl LockTable {
    /// Creates a table covering `n` elements, all unlocked.
    pub fn new(n: usize) -> LockTable {
        LockTable {
            slots: (0..n).map(|_| AtomicU32::new(0)).collect(),
            stats: SpecStats::default(),
        }
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Grows the table to cover at least `n` elements, preserving the
    /// accumulated statistics. Existing locks must all be released (the
    /// slots are rebuilt unlocked). Lets a long-lived session reuse one
    /// table across passes even when the underlying arena grows.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any slot is currently held.
    pub fn ensure_capacity(&mut self, n: usize) {
        if n <= self.slots.len() {
            return;
        }
        debug_assert!(
            self.slots.iter().all(|s| s.load(Ordering::Relaxed) == 0),
            "growing a lock table with held locks"
        );
        self.slots = (0..n).map(|_| AtomicU32::new(0)).collect();
    }

    /// Whether the table covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The conflict statistics accumulated by this table.
    pub fn stats(&self) -> &SpecStats {
        &self.stats
    }

    /// Attempts to acquire every element in `ids` for `owner` (non-zero).
    ///
    /// The ids are sorted and deduplicated internally (sorted acquisition
    /// order prevents deadlock between concurrent all-or-nothing attempts).
    /// On any conflict every lock taken so far is released, the abort is
    /// recorded, and `None` is returned.
    ///
    /// Re-entrant acquisition by the same owner succeeds (the element stays
    /// locked until the outermost guard drops — callers must not rely on
    /// nested guards, which is why `normalize` dedupes).
    ///
    /// # Panics
    ///
    /// Panics if `owner` is zero or an id is out of range.
    pub fn try_acquire(&self, owner: u32, mut ids: Vec<u32>) -> Option<LockSet<'_>> {
        assert_ne!(owner, 0, "owner ids are non-zero");
        if dacpara_fault::point(dacpara_fault::points::LOCK_ACQUIRE) {
            // An injected conflict is indistinguishable from a real one:
            // nothing was taken, the abort is recorded, the caller retries.
            self.stats.record_conflict();
            return None;
        }
        ids.sort_unstable();
        ids.dedup();
        for (i, &id) in ids.iter().enumerate() {
            let slot = &self.slots[id as usize];
            if slot
                .compare_exchange(0, owner, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                for &held in &ids[..i] {
                    self.slots[held as usize].store(0, Ordering::Release);
                }
                self.stats.record_conflict();
                return None;
            }
        }
        Some(LockSet {
            table: self,
            owner,
            ids,
            acquired_ns: dacpara_obs::is_enabled().then(|| dacpara_obs::global().now_ns()),
        })
    }

    /// Whether an element is currently locked (racy — diagnostics only).
    pub fn is_locked(&self, id: u32) -> bool {
        self.slots[id as usize].load(Ordering::Relaxed) != 0
    }

    fn release(&self, ids: &[u32], owner: u32) {
        for &id in ids {
            let prev = self.slots[id as usize].swap(0, Ordering::Release);
            debug_assert_eq!(prev, owner, "released a lock held by someone else");
        }
    }
}

impl std::fmt::Debug for LockTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockTable")
            .field("len", &self.len())
            .finish()
    }
}

/// RAII guard over an acquired lock set; releases on drop.
#[must_use = "locks release immediately if the guard is dropped"]
pub struct LockSet<'a> {
    table: &'a LockTable,
    owner: u32,
    ids: Vec<u32>,
    /// Acquisition timestamp, recorded only while observability is enabled;
    /// feeds the `galois.lock_hold_ns` histogram on release.
    acquired_ns: Option<u64>,
}

impl LockSet<'_> {
    /// The sorted, deduplicated ids held by this guard.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

impl Drop for LockSet<'_> {
    fn drop(&mut self) {
        self.table.release(&self.ids, self.owner);
        if let Some(start) = self.acquired_ns {
            let held = dacpara_obs::global().now_ns().saturating_sub(start);
            hold_time_histogram().record(held);
        }
    }
}

impl std::fmt::Debug for LockSet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockSet").field("ids", &self.ids).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_or_nothing() {
        let t = LockTable::new(8);
        let g1 = t.try_acquire(1, vec![2, 4]).unwrap();
        // Overlap on 4: the whole set {1, 4, 6} must fail and leave 1 and 6
        // free.
        assert!(t.try_acquire(2, vec![1, 4, 6]).is_none());
        assert!(!t.is_locked(1));
        assert!(!t.is_locked(6));
        drop(g1);
        assert!(t.try_acquire(2, vec![1, 4, 6]).is_some());
    }

    #[test]
    fn duplicate_ids_are_tolerated() {
        let t = LockTable::new(4);
        let g = t.try_acquire(3, vec![1, 1, 1]).unwrap();
        assert_eq!(g.ids(), &[1]);
    }

    #[test]
    fn conflicts_are_counted() {
        let t = LockTable::new(4);
        let _g = t.try_acquire(1, vec![0]).unwrap();
        assert!(t.try_acquire(2, vec![0]).is_none());
        assert!(t.try_acquire(2, vec![0]).is_none());
        assert_eq!(t.stats().conflicts(), 2);
    }

    #[test]
    fn injected_acquire_fault_is_a_recorded_conflict() {
        let t = LockTable::new(4);
        let plan = dacpara_fault::FaultPlan::parse("lock.acquire=@1", 0).unwrap();
        {
            let _inj = dacpara_fault::inject(&plan);
            assert!(t.try_acquire(1, vec![0, 2]).is_none());
            assert!(!t.is_locked(0));
            assert!(!t.is_locked(2));
        }
        assert_eq!(t.stats().conflicts(), 1);
        // The very next (uninjected) attempt succeeds.
        assert!(t.try_acquire(1, vec![0, 2]).is_some());
    }

    #[test]
    fn concurrent_hammering_is_exclusive() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let t = LockTable::new(1);
        let counter = AtomicU64::new(0);
        let iterations = 2_000;
        let t = &t;
        let counter = &counter;
        std::thread::scope(|s| {
            for w in 0..4u32 {
                s.spawn(move || {
                    let owner = w + 1;
                    let mut done = 0;
                    while done < iterations {
                        if let Some(_g) = t.try_acquire(owner, vec![0]) {
                            // Non-atomic-looking critical section.
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                            done += 1;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4 * iterations);
    }
}
