//! A fixed-capacity Chase-Lev work-stealing deque over `usize` items.
//!
//! The owner pushes and pops at the *bottom* (LIFO); thieves steal from the
//! *top* (FIFO), so a thief always takes the oldest — in this runtime the
//! largest — outstanding item. The implementation is the weak-memory
//! Chase-Lev algorithm (Lê et al., PPoPP'13) with two deliberate
//! simplifications that keep it in safe Rust:
//!
//! * **No growth.** Items here are packed index ranges whose live count is
//!   bounded by the seeded worklist, so the ring never needs to resize;
//!   [`StealDeque::push`] reports a full ring instead (callers fall back to
//!   processing the item inline).
//! * **Atomic slots.** The ring stores `AtomicUsize` values, so the benign
//!   owner/thief races on slot contents that the classical algorithm
//!   tolerates via `memcpy` are ordinary relaxed atomics — no `unsafe`, and
//!   nothing for ThreadSanitizer to object to.

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

/// Result of a [`StealDeque::steal`] attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Steal {
    /// An item was stolen.
    Taken(usize),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; caller may retry.
    Retry,
}

/// A single-owner, multi-thief deque of `usize` items.
///
/// Only one thread (the owner) may call [`StealDeque::push`] and
/// [`StealDeque::pop`]; any thread may call [`StealDeque::steal`]. The
/// owner restriction is not enforced by the type system — the scheduler
/// hands each worker its own deque — but misuse is a logic error, not UB.
///
/// # Example
///
/// ```
/// use dacpara_galois::{Steal, StealDeque};
///
/// let d = StealDeque::new(8);
/// d.push(1).unwrap();
/// d.push(2).unwrap();
/// assert_eq!(d.steal(), Steal::Taken(1)); // thieves take the oldest
/// assert_eq!(d.pop(), Some(2)); // the owner takes the newest
/// assert_eq!(d.pop(), None);
/// ```
pub struct StealDeque {
    buf: Box<[AtomicUsize]>,
    mask: usize,
    /// Steal end; monotonically increasing.
    top: AtomicIsize,
    /// Owner end; increases on push, decreases transiently during pop.
    bottom: AtomicIsize,
}

impl StealDeque {
    /// Creates a deque holding at most `capacity` items (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> StealDeque {
        let cap = capacity.max(2).next_power_of_two();
        StealDeque {
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
        }
    }

    /// Number of items currently in the deque (racy — scheduling heuristics
    /// and tests only).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Whether the deque currently holds no items (racy).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes an item at the owner end, or returns it if the ring is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the ring has no free slot; the caller keeps
    /// ownership of the item (the scheduler processes it inline).
    pub fn push(&self, item: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= self.buf.len() as isize {
            return Err(item);
        }
        self.buf[(b as usize) & self.mask].store(item, Ordering::Relaxed);
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pops the most recently pushed item (owner only).
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; restore the canonical empty state.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        let item = self.buf[(b as usize) & self.mask].load(Ordering::Relaxed);
        if t == b {
            // Last item: race the thieves for it via `top`.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return won.then_some(item);
        }
        Some(item)
    }

    /// Attempts to steal the oldest item (any thread).
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let item = self.buf[(t as usize) & self.mask].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Taken(item)
        } else {
            Steal::Retry
        }
    }
}

impl std::fmt::Debug for StealDeque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealDeque")
            .field("capacity", &self.buf.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = StealDeque::new(4);
        d.push(10).unwrap();
        d.push(20).unwrap();
        d.push(30).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(), Some(30));
        assert_eq!(d.steal(), Steal::Taken(10));
        assert_eq!(d.pop(), Some(20));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_full_ring() {
        let d = StealDeque::new(2);
        d.push(1).unwrap();
        d.push(2).unwrap();
        assert_eq!(d.push(3), Err(3));
        assert_eq!(d.pop(), Some(2));
        d.push(3).unwrap();
    }

    #[test]
    fn ring_reuse_wraps_cleanly() {
        let d = StealDeque::new(2);
        for round in 0..100 {
            d.push(round).unwrap();
            assert_eq!(d.pop(), Some(round));
            assert_eq!(d.pop(), None);
        }
    }

    #[test]
    fn concurrent_thieves_never_duplicate_or_lose() {
        use std::sync::atomic::AtomicU64;
        const ITEMS: usize = 10_000;
        let d = StealDeque::new(ITEMS);
        let hits: Vec<AtomicU64> = (0..ITEMS).map(|_| AtomicU64::new(0)).collect();
        let taken = AtomicUsize::new(0);
        let (d, hits, taken) = (&d, &hits, &taken);
        std::thread::scope(|s| {
            // Owner interleaves pushes with pops.
            s.spawn(move || {
                for i in 0..ITEMS {
                    d.push(i).unwrap();
                    if i % 3 == 0 {
                        if let Some(x) = d.pop() {
                            hits[x].fetch_add(1, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                while let Some(x) = d.pop() {
                    hits[x].fetch_add(1, Ordering::Relaxed);
                    taken.fetch_add(1, Ordering::Relaxed);
                }
            });
            for _ in 0..3 {
                s.spawn(move || loop {
                    match d.steal() {
                        Steal::Taken(x) => {
                            hits[x].fetch_add(1, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if taken.load(Ordering::Relaxed) == ITEMS {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
