//! Conflict and wasted-work accounting for speculative execution.
//!
//! The paper's Fig. 2 argument is quantitative: when enumeration,
//! evaluation and replacement run as *one* operator (ICCAD'18), a conflict
//! discards all three stages' work; DACPara's split operators only ever
//! discard the (cheap) replacement attempt. These counters make that
//! difference measurable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use dacpara_obs::{LogHistogram, ShardedCounter};

/// Cached handles to the global observability instruments, so the record
/// paths never take the registry lock. The `Arc`s survive
/// `dacpara_obs::reset()` (reset zeroes values in place).
struct ObsHandles {
    attempts: Arc<ShardedCounter>,
    conflicts: Arc<ShardedCounter>,
    commits: Arc<ShardedCounter>,
    aborts: Arc<ShardedCounter>,
    commit_latency_ns: Arc<LogHistogram>,
    abort_latency_ns: Arc<LogHistogram>,
}

fn obs() -> &'static ObsHandles {
    static HANDLES: OnceLock<ObsHandles> = OnceLock::new();
    HANDLES.get_or_init(|| ObsHandles {
        attempts: dacpara_obs::counter("galois.attempts"),
        conflicts: dacpara_obs::counter("galois.conflicts"),
        commits: dacpara_obs::counter("galois.commits"),
        aborts: dacpara_obs::counter("galois.aborts"),
        commit_latency_ns: dacpara_obs::histogram("galois.commit_latency_ns"),
        abort_latency_ns: dacpara_obs::histogram("galois.abort_latency_ns"),
    })
}

/// Atomic counters describing a speculative execution run.
#[derive(Debug, Default)]
pub struct SpecStats {
    attempts: AtomicU64,
    conflicts: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    wasted_ns: AtomicU64,
    useful_ns: AtomicU64,
}

impl SpecStats {
    /// Creates zeroed counters.
    pub fn new() -> SpecStats {
        SpecStats::default()
    }

    /// Records the start of one speculative operator attempt. Every attempt
    /// must end in exactly one [`SpecStats::record_commit`] or
    /// [`SpecStats::record_abort`], so `commits + aborts == attempts` is an
    /// invariant at every quiescent point (checked by the rewrite property
    /// tests).
    pub fn record_attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        if dacpara_obs::is_enabled() {
            obs().attempts.incr();
        }
    }

    /// Records a lock-acquisition conflict.
    ///
    /// The observability events below are emitted *only* here (and in the
    /// other `record_*` methods), never in [`SpecStats::merge`], so the
    /// global obs counters always equal the sum of leaf-level recordings —
    /// the drift test in `crates/core/tests/obs_spec_drift.rs` relies on
    /// this.
    pub fn record_conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
        if dacpara_obs::is_enabled() {
            obs().conflicts.incr();
            dacpara_obs::instant("spec.conflict", "spec");
        }
    }

    /// Records a committed activity and the time it took.
    pub fn record_commit(&self, took: Duration) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.useful_ns
            .fetch_add(took.as_nanos() as u64, Ordering::Relaxed);
        if dacpara_obs::is_enabled() {
            obs().commits.incr();
            obs().commit_latency_ns.record(took.as_nanos() as u64);
            dacpara_obs::instant("spec.commit", "spec");
        }
    }

    /// Records an aborted activity whose computation of `took` was lost.
    pub fn record_abort(&self, took: Duration) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
        self.wasted_ns
            .fetch_add(took.as_nanos() as u64, Ordering::Relaxed);
        if dacpara_obs::is_enabled() {
            obs().aborts.incr();
            obs().abort_latency_ns.record(took.as_nanos() as u64);
            dacpara_obs::instant("spec.abort", "spec");
        }
    }

    /// Number of operator attempts started.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Number of lock conflicts observed.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Number of committed activities.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Number of aborted activities.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Total nanoseconds of computation discarded by aborts.
    pub fn wasted_ns(&self) -> u64 {
        self.wasted_ns.load(Ordering::Relaxed)
    }

    /// Total nanoseconds of committed computation.
    pub fn useful_ns(&self) -> u64 {
        self.useful_ns.load(Ordering::Relaxed)
    }

    /// Fraction of all operator time that was discarded (`0.0` when no time
    /// has been recorded).
    pub fn wasted_fraction(&self) -> f64 {
        let wasted = self.wasted_ns() as f64;
        let total = wasted + self.useful_ns() as f64;
        if total == 0.0 {
            0.0
        } else {
            wasted / total
        }
    }

    /// Adds another set of counters into this one.
    ///
    /// Deliberately emits no observability events: each event was already
    /// recorded once by the leaf-level `record_*` call, and re-emitting on
    /// merge would double-count.
    pub fn merge(&self, other: &SpecStats) {
        self.attempts.fetch_add(other.attempts(), Ordering::Relaxed);
        self.conflicts
            .fetch_add(other.conflicts(), Ordering::Relaxed);
        self.commits.fetch_add(other.commits(), Ordering::Relaxed);
        self.aborts.fetch_add(other.aborts(), Ordering::Relaxed);
        self.wasted_ns
            .fetch_add(other.wasted_ns(), Ordering::Relaxed);
        self.useful_ns
            .fetch_add(other.useful_ns(), Ordering::Relaxed);
    }

    /// Adds a plain-value snapshot (typically a [`SpecSnapshot::since`]
    /// delta) into these counters. Like [`SpecStats::merge`], emits no
    /// observability events.
    pub fn merge_snapshot(&self, snap: &SpecSnapshot) {
        self.attempts.fetch_add(snap.attempts, Ordering::Relaxed);
        self.conflicts.fetch_add(snap.conflicts, Ordering::Relaxed);
        self.commits.fetch_add(snap.commits, Ordering::Relaxed);
        self.aborts.fetch_add(snap.aborts, Ordering::Relaxed);
        self.wasted_ns.fetch_add(snap.wasted_ns, Ordering::Relaxed);
        self.useful_ns.fetch_add(snap.useful_ns, Ordering::Relaxed);
    }

    /// Plain-value snapshot for reporting.
    pub fn snapshot(&self) -> SpecSnapshot {
        SpecSnapshot {
            attempts: self.attempts(),
            conflicts: self.conflicts(),
            commits: self.commits(),
            aborts: self.aborts(),
            wasted_ns: self.wasted_ns(),
            useful_ns: self.useful_ns(),
        }
    }
}

/// A point-in-time copy of [`SpecStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SpecSnapshot {
    /// Operator attempts started (`commits + aborts` at quiescence).
    pub attempts: u64,
    /// Lock-acquisition conflicts.
    pub conflicts: u64,
    /// Committed activities.
    pub commits: u64,
    /// Aborted activities.
    pub aborts: u64,
    /// Nanoseconds discarded by aborts.
    pub wasted_ns: u64,
    /// Nanoseconds of committed work.
    pub useful_ns: u64,
}

impl SpecSnapshot {
    /// The counters accumulated since `baseline` was taken (saturating).
    /// Lets a long-lived [`crate::LockTable`] report per-pass deltas
    /// without double-counting earlier passes.
    pub fn since(&self, baseline: &SpecSnapshot) -> SpecSnapshot {
        SpecSnapshot {
            attempts: self.attempts.saturating_sub(baseline.attempts),
            conflicts: self.conflicts.saturating_sub(baseline.conflicts),
            commits: self.commits.saturating_sub(baseline.commits),
            aborts: self.aborts.saturating_sub(baseline.aborts),
            wasted_ns: self.wasted_ns.saturating_sub(baseline.wasted_ns),
            useful_ns: self.useful_ns.saturating_sub(baseline.useful_ns),
        }
    }

    /// Fraction of operator time discarded.
    pub fn wasted_fraction(&self) -> f64 {
        let total = (self.wasted_ns + self.useful_ns) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.wasted_ns as f64 / total
        }
    }
}

impl std::fmt::Display for SpecSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "commits={} aborts={} conflicts={} wasted={:.1}%",
            self.commits,
            self.aborts,
            self.conflicts,
            self.wasted_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let s = SpecStats::new();
        s.record_attempt();
        s.record_commit(Duration::from_nanos(100));
        s.record_attempt();
        s.record_abort(Duration::from_nanos(300));
        s.record_conflict();
        assert_eq!(s.attempts(), 2);
        assert_eq!(s.commits(), 1);
        assert_eq!(s.aborts(), 1);
        assert_eq!(s.commits() + s.aborts(), s.attempts());
        assert_eq!(s.conflicts(), 1);
        assert!((s.wasted_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_counters() {
        let a = SpecStats::new();
        let b = SpecStats::new();
        a.record_commit(Duration::from_nanos(10));
        b.record_abort(Duration::from_nanos(30));
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.aborts, 1);
        assert_eq!(snap.wasted_ns, 30);
    }

    #[test]
    fn empty_stats_waste_nothing() {
        assert_eq!(SpecStats::new().wasted_fraction(), 0.0);
        assert_eq!(SpecSnapshot::default().wasted_fraction(), 0.0);
    }
}
