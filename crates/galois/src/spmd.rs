//! SPMD execution: a fixed team of workers marching through barriers.
//!
//! The parallel engines run one team of threads per rewriting pass. Each
//! worker executes the same closure; level worklists and the three operator
//! stages are separated by barriers inside the closure. This avoids both
//! per-stage thread-spawn overhead and any `unsafe` lifetime laundering — a
//! `std::thread::scope` fits naturally because the team lives exactly as
//! long as the pass.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// Handle given to each SPMD worker.
pub struct Worker<'a> {
    /// This worker's index, `0..num_threads`.
    pub id: usize,
    /// Team size.
    pub num_threads: usize,
    barrier: &'a Barrier,
}

impl Worker<'_> {
    /// Blocks until every worker in the team reaches this point. Returns
    /// `true` on exactly one (unspecified) worker — the "leader" for any
    /// serial work that must happen at the synchronization point.
    pub fn barrier(&self) -> bool {
        self.barrier.wait().is_leader()
    }
}

impl std::fmt::Debug for Worker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Worker({}/{})", self.id, self.num_threads)
    }
}

/// Runs `f` on `num_threads` workers and waits for all of them.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use dacpara_galois::run_spmd;
///
/// let sum = AtomicUsize::new(0);
/// run_spmd(4, |w| {
///     sum.fetch_add(w.id, Ordering::Relaxed);
///     w.barrier();
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 0 + 1 + 2 + 3);
/// ```
///
/// # Panics
///
/// Panics if `num_threads` is zero, or propagates a worker panic.
pub fn run_spmd<F>(num_threads: usize, f: F)
where
    F: Fn(&Worker<'_>) + Sync,
{
    assert!(num_threads > 0, "need at least one worker");
    let barrier = Barrier::new(num_threads);
    if num_threads == 1 {
        // Fast path, also keeps single-threaded debugging simple.
        let _obs = dacpara_obs::span_cat("worker", "runtime");
        f(&Worker {
            id: 0,
            num_threads: 1,
            barrier: &barrier,
        });
        return;
    }
    std::thread::scope(|s| {
        for id in 0..num_threads {
            let barrier = &barrier;
            let f = &f;
            s.spawn(move || {
                {
                    // One lifetime span per worker: each thread gets its
                    // own lane in the exported trace.
                    let _obs = dacpara_obs::span!("worker", id = id);
                    f(&Worker {
                        id,
                        num_threads,
                        barrier,
                    });
                }
                // Flush before the closure returns: `scope` unblocks as
                // soon as the closure's result lands, which can be before
                // the thread's TLS destructors (the backstop flush) run —
                // an exporter called right after `run_spmd` would miss
                // this worker's lane.
                dacpara_obs::flush_thread();
            });
        }
    });
}

/// A shared index dispenser for dynamic load balancing: workers repeatedly
/// grab disjoint chunks of `0..len` until it is drained.
///
/// Reset it (from the barrier leader) before reusing for the next worklist.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    len: AtomicUsize,
    /// Debug guard: consecutive drained polls since the last reset. In the
    /// barrier engines every worker observes drainage exactly once per
    /// round, so a large count means a round started without `reset` — the
    /// new worklist is being silently skipped.
    #[cfg(debug_assertions)]
    drained_polls: AtomicUsize,
}

/// Debug ceiling on drained [`WorkQueue::next_chunk`] polls between resets
/// (far above any legitimate team size).
#[cfg(debug_assertions)]
const DRAINED_POLL_LIMIT: usize = 1024;

impl WorkQueue {
    /// Creates a dispenser over `0..len`.
    pub fn new(len: usize) -> WorkQueue {
        WorkQueue {
            next: AtomicUsize::new(0),
            len: AtomicUsize::new(len),
            #[cfg(debug_assertions)]
            drained_polls: AtomicUsize::new(0),
        }
    }

    /// Grabs the next chunk of at most `chunk` indices, or `None` when
    /// drained.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero. Panics (debug) after [`DRAINED_POLL_LIMIT`]
    /// consecutive drained polls — the signature of reusing a spent queue
    /// without [`WorkQueue::reset`].
    pub fn next_chunk(&self, chunk: usize) -> Option<Range<usize>> {
        assert!(chunk > 0);
        let len = self.len.load(Ordering::Relaxed);
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= len {
            #[cfg(debug_assertions)]
            {
                let polls = self.drained_polls.fetch_add(1, Ordering::Relaxed);
                debug_assert!(
                    polls < DRAINED_POLL_LIMIT,
                    "WorkQueue drained {polls} consecutive times — missing reset() between rounds?"
                );
            }
            None
        } else {
            Some(start..(start + chunk).min(len))
        }
    }

    /// Re-arms the dispenser over `0..len`. Only call while no worker is
    /// pulling (i.e. from the barrier leader between stages).
    pub fn reset(&self, len: usize) {
        self.len.store(len, Ordering::Relaxed);
        self.next.store(0, Ordering::Relaxed);
        #[cfg(debug_assertions)]
        self.drained_polls.store(0, Ordering::Relaxed);
    }
}

/// Heuristic chunk size: small enough to balance, large enough to amortize
/// the atomic increment.
///
/// # Panics
///
/// Panics (debug) if `len` or `num_threads` is zero — a zero-length
/// worklist has no meaningful chunk size (callers must skip empty lists),
/// and zero threads would divide by zero anyway.
pub fn chunk_size(len: usize, num_threads: usize) -> usize {
    debug_assert!(num_threads > 0, "chunk size for a zero-thread team");
    debug_assert!(len > 0, "chunk size of an empty worklist");
    (len / (num_threads.max(1) * 8)).clamp(1, 256)
}

/// Convenience: applies `f` to every item of `items` on a team of
/// `num_threads` workers with dynamic chunked load balancing.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use dacpara_galois::parallel_for;
///
/// let data: Vec<usize> = (0..1000).collect();
/// let sum = AtomicUsize::new(0);
/// parallel_for(4, &data, |_, &x| {
///     sum.fetch_add(x, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 499_500);
/// ```
pub fn parallel_for<T, F>(num_threads: usize, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&Worker<'_>, &T) + Sync,
{
    if items.is_empty() {
        return;
    }
    let queue = WorkQueue::new(items.len());
    let chunk = chunk_size(items.len(), num_threads.max(1));
    let queue = &queue;
    let f = &f;
    run_spmd(num_threads.max(1), |w| {
        while let Some(range) = queue.next_chunk(chunk) {
            for i in range {
                f(w, &items[i]);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn work_queue_covers_every_index_once() {
        let queue = WorkQueue::new(10_000);
        let hits: Vec<AtomicU64> = (0..10_000).map(|_| AtomicU64::new(0)).collect();
        let queue = &queue;
        let hits = &hits;
        run_spmd(4, |_w| {
            while let Some(range) = queue.next_chunk(64) {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn barrier_elects_exactly_one_leader() {
        let leaders = AtomicUsize::new(0);
        let leaders = &leaders;
        run_spmd(3, |w| {
            for _ in 0..5 {
                if w.barrier() {
                    leaders.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn reset_rearms_queue() {
        let q = WorkQueue::new(3);
        assert_eq!(q.next_chunk(8), Some(0..3));
        assert_eq!(q.next_chunk(8), None);
        q.reset(2);
        assert_eq!(q.next_chunk(8), Some(0..2));
    }

    #[test]
    fn single_thread_fast_path() {
        let flag = AtomicUsize::new(0);
        run_spmd(1, |w| {
            assert_eq!(w.id, 0);
            assert!(w.barrier());
            flag.store(1, Ordering::Relaxed);
        });
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_for_visits_everything_once() {
        let data: Vec<usize> = (0..5_000).collect();
        let hits: Vec<AtomicU64> = (0..5_000).map(|_| AtomicU64::new(0)).collect();
        let hits_ref = &hits;
        parallel_for(3, &data, |_, &x| {
            hits_ref[x].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_on_empty_slice_is_fine() {
        let data: Vec<u32> = Vec::new();
        parallel_for(4, &data, |_, _| panic!("must not be called"));
    }

    #[test]
    fn chunk_size_is_sane() {
        assert!(chunk_size(1_000_000, 4) <= 256);
        assert!(chunk_size(100, 4) >= 1);
        assert_eq!(chunk_size(1, 64), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "empty worklist")]
    fn chunk_size_rejects_empty_worklists_in_debug() {
        let _ = chunk_size(0, 4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "zero-thread team")]
    fn chunk_size_rejects_zero_threads_in_debug() {
        let _ = chunk_size(100, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "missing reset()")]
    fn reuse_without_reset_panics_in_debug() {
        let q = WorkQueue::new(4);
        assert_eq!(q.next_chunk(8), Some(0..4));
        // A forgotten reset: the queue looks permanently empty. The debug
        // guard trips once the drained polls exceed any plausible team size.
        for _ in 0..=DRAINED_POLL_LIMIT {
            assert_eq!(q.next_chunk(8), None);
        }
    }

    #[test]
    fn reset_clears_the_drained_poll_guard() {
        let q = WorkQueue::new(2);
        for round in 0..8 {
            let mut seen = 0;
            while let Some(r) = q.next_chunk(1) {
                seen += r.len();
            }
            assert_eq!(seen, 2, "round {round}");
            q.reset(2);
        }
    }
}
