#![warn(missing_docs)]
//! A miniature Galois-style runtime for amorphous data parallelism.
//!
//! The paper implements both ICCAD'18's single-operator rewriting and
//! DACPara on the Galois system, whose relevant ingredients are:
//!
//! * **speculative parallelism with per-element exclusive locks** — an
//!   activity acquires every element it will touch; a conflict *aborts* the
//!   activity, discarding all of its computation ([`LockTable`]),
//! * **conflict accounting** — the cost model behind the paper's Fig. 2 is
//!   exactly "how much computation do aborts discard" ([`SpecStats`]),
//! * **worklist execution** — a team of workers draining shared worklists
//!   ([`run_spmd`], [`WorkQueue`]),
//! * **work stealing with in-round conflict retry** — per-worker Chase-Lev
//!   deques with adaptive range splitting and per-worker retry queues, so
//!   an aborted activity is re-tried within the same round instead of
//!   serializing its worker or waiting for the next pass ([`StealPool`],
//!   [`StealDeque`], [`SchedStats`]).
//!
//! # Example
//!
//! ```
//! use dacpara_galois::{run_spmd, LockTable, WorkQueue};
//! use std::sync::atomic::{AtomicU32, Ordering};
//!
//! // Increment 100 shared cells, each protected by a Galois lock.
//! let cells: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
//! let locks = LockTable::new(100);
//! let queue = WorkQueue::new(100);
//! let (cells, locks, queue) = (&cells, &locks, &queue);
//! run_spmd(4, |w| {
//!     while let Some(range) = queue.next_chunk(4) {
//!         for i in range {
//!             loop {
//!                 if let Some(_guard) = locks.try_acquire(w.id as u32 + 1, vec![i as u32]) {
//!                     cells[i].fetch_add(1, Ordering::Relaxed);
//!                     break;
//!                 }
//!                 std::hint::spin_loop();
//!             }
//!         }
//!     }
//! });
//! assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) == 1));
//! ```

mod deque;
mod locks;
mod sched;
mod spmd;
mod stats;

pub use deque::{Steal, StealDeque};
pub use locks::{LockSet, LockTable};
pub use sched::{ItemOutcome, SchedSnapshot, SchedStats, StealPool, MAX_SCHED_RETRIES};
pub use spmd::{chunk_size, parallel_for, run_spmd, WorkQueue, Worker};
pub use stats::{SpecSnapshot, SpecStats};
