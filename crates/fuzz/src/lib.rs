#![warn(missing_docs)]
//! dacpara-fuzz: differential fuzzing for the DACPara rewriting engines.
//!
//! The hand-built benchmark suites pin the behaviours the authors thought
//! of; this crate hunts the rest of the space. Four pieces:
//!
//! * [`gen`] — a seeded random AIG generator (node/input/depth budgets,
//!   reconvergence and XOR/MUX-richness knobs),
//! * [`mutate`] — structurally-valid-by-construction mutations over
//!   existing AIGs (edge retarget, complement flip, function-preserving
//!   node duplication, cone swap),
//! * [`oracle`] — the differential oracle: every engine × scheduler ×
//!   thread count, cross-checked with budgeted CEC and the structural
//!   invariant checker, optionally under `dacpara-fault` injection,
//! * [`shrink`] — a delta-debugging minimizer that keeps a failure alive
//!   while the circuit shrinks (cone removal, node bypass, input merging),
//! * [`corpus`] — replayable one-file entries (seed + AIGER + oracle
//!   setup) under `fuzz/corpus/`.
//!
//! The crate's own self-test (`tests/selftest.rs`) closes the loop: with
//! the `inject-drain-bug` feature re-introducing the PR 4 steal-scheduler
//! drain bug, the fuzzer must find a failing circuit within a bounded seed
//! budget and shrink the witness below 60 nodes.
//!
//! # Example
//!
//! ```
//! use dacpara_fuzz::{fuzz_run, FuzzConfig};
//!
//! let report = fuzz_run(&FuzzConfig::smoke(4), 0xF00D);
//! assert_eq!(report.iterations, 4);
//! assert!(report.failing.is_none(), "healthy engines must pass");
//! ```

pub mod corpus;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;

use dacpara_aig::{Aig, AigRead};

use gen::GenConfig;
use oracle::{check_circuit, Failure, OracleConfig};
use shrink::{shrink, ShrinkConfig};

/// Configuration of a [`fuzz_run`] campaign.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of circuits to generate and check.
    pub iters: usize,
    /// Generator budgets.
    pub gen: GenConfig,
    /// Oracle sweep per circuit.
    pub oracle: OracleConfig,
    /// Every `mutate_every`-th iteration additionally checks a mutant of
    /// the fresh circuit (0 disables mutation).
    pub mutate_every: usize,
}

impl FuzzConfig {
    /// A bounded smoke campaign: small circuits, the full engine matrix at
    /// 1 and 2 threads, mutation on every third iteration.
    pub fn smoke(iters: usize) -> Self {
        FuzzConfig {
            iters,
            gen: GenConfig::small(),
            oracle: OracleConfig {
                points: dacpara::testkit::engine_matrix(&[1, 2]),
                ..OracleConfig::default()
            },
            mutate_every: 3,
        }
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 100,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            mutate_every: 3,
        }
    }
}

/// A failing circuit found by [`fuzz_run`].
#[derive(Clone, Debug)]
pub struct FailingCase {
    /// The seed of the iteration that found it.
    pub seed: u64,
    /// The failing circuit (pre-shrink).
    pub aig: Aig,
    /// The failing matrix cells.
    pub failures: Vec<Failure>,
}

/// Summary of a [`fuzz_run`] campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Iterations actually executed (stops early on the first failure).
    pub iterations: usize,
    /// Circuits checked (fresh + mutants).
    pub circuits: usize,
    /// The first failing case, when one was found.
    pub failing: Option<FailingCase>,
}

/// Per-iteration seed derivation: decorrelates the campaign seed from the
/// iteration index (SplitMix64 finalizer).
pub fn iteration_seed(campaign: u64, iter: u64) -> u64 {
    let mut z = campaign.wrapping_add(iter.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs a fuzzing campaign: generate, optionally mutate, check; stop at the
/// first failing circuit (or after `cfg.iters` clean iterations).
pub fn fuzz_run(cfg: &FuzzConfig, campaign_seed: u64) -> FuzzReport {
    let _span = dacpara_obs::span("fuzz.run");
    let mut circuits = 0usize;
    for iter in 0..cfg.iters {
        dacpara_obs::counter("fuzz.iterations").incr();
        let seed = iteration_seed(campaign_seed, iter as u64);
        let golden = gen::generate(&cfg.gen, seed);
        circuits += 1;
        let failures = check_circuit(&golden, &cfg.oracle);
        if !failures.is_empty() {
            return FuzzReport {
                iterations: iter + 1,
                circuits,
                failing: Some(FailingCase {
                    seed,
                    aig: golden,
                    failures,
                }),
            };
        }
        if cfg.mutate_every != 0 && iter % cfg.mutate_every == cfg.mutate_every - 1 {
            let mutant = mutate::mutate(&golden, 2, seed ^ 0xDEAD_BEEF);
            circuits += 1;
            let failures = check_circuit(&mutant, &cfg.oracle);
            if !failures.is_empty() {
                return FuzzReport {
                    iterations: iter + 1,
                    circuits,
                    failing: Some(FailingCase {
                        seed,
                        aig: mutant,
                        failures,
                    }),
                };
            }
        }
    }
    FuzzReport {
        iterations: cfg.iters,
        circuits,
        failing: None,
    }
}

/// Shrinks a failing case against the same oracle that convicted it: a
/// candidate "still fails" when any of `repeats` fresh sweeps reports a
/// failure (parallel failures are probabilistic; repetition trades shrink
/// time for reproducibility).
pub fn shrink_failing(case: &FailingCase, oracle: &OracleConfig, shrink_cfg: &ShrinkConfig) -> Aig {
    let _span = dacpara_obs::span("fuzz.shrink");
    let repeats = shrink_cfg.repeats.max(1);
    shrink(&case.aig, shrink_cfg, |candidate| {
        (0..repeats).any(|_| !check_circuit(candidate, oracle).is_empty())
    })
}

/// Renders a one-line human summary of a report.
pub fn summarize(report: &FuzzReport) -> String {
    match &report.failing {
        Some(case) => format!(
            "FAIL after {} iterations ({} circuits): seed {} area {} — {}",
            report.iterations,
            report.circuits,
            case.seed,
            case.aig.num_ands(),
            case.failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ),
        None => format!(
            "ok: {} iterations, {} circuits, zero oracle failures",
            report.iterations, report.circuits
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_seeds_decorrelate() {
        let a = iteration_seed(1, 0);
        let b = iteration_seed(1, 1);
        let c = iteration_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, iteration_seed(1, 0));
    }
}
