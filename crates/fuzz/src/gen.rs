//! Seeded random AIG generation.
//!
//! The generator grows a strash-canonical [`Aig`] gate by gate from a seeded
//! PRNG. Every knob is a budget or a bias, never a hard shape, so the space
//! it covers is much wider than the hand-built `dacpara-circuits` suite:
//! reconvergent fanout (the same pair of literals reused by several gates),
//! XOR/MUX-rich cones (the structures the 4-cut rewriting library trades
//! on), deep chains and wide bundles all appear at different seeds.
//!
//! Generation is deterministic in `(config, seed)`: the same pair always
//! produces the same circuit, which is what makes corpus entries replayable
//! from just a header line.

use dacpara_aig::{Aig, AigRead, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Budgets and biases for [`generate`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Target AND-node count (structural hashing may land slightly under).
    pub nodes: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Soft depth budget: fanins are only drawn from literals whose level is
    /// below this, so chains stop growing past it.
    pub max_depth: u32,
    /// Probability that a gate draws both fanins from a narrow window of
    /// recently created literals, producing reconvergent fanout.
    pub reconvergence: f64,
    /// Probability that a growth step emits an XOR or MUX macro instead of
    /// a plain AND gate.
    pub xor_mux: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            inputs: 8,
            nodes: 120,
            outputs: 4,
            max_depth: 24,
            reconvergence: 0.35,
            xor_mux: 0.4,
        }
    }
}

impl GenConfig {
    /// A small configuration for high-volume smoke loops and shrinker food:
    /// enough structure for every engine to find rewrites, small enough for
    /// a full SAT equivalence proof per oracle cell.
    pub fn small() -> Self {
        GenConfig {
            inputs: 6,
            nodes: 60,
            outputs: 3,
            max_depth: 16,
            ..GenConfig::default()
        }
    }
}

/// Generates one random AIG, deterministic in `(cfg, seed)`.
///
/// The result always has exactly `cfg.inputs` inputs and `cfg.outputs`
/// outputs; the AND count approaches `cfg.nodes` but strashing and
/// dead-cone cleanup may leave it lower. The graph always passes
/// [`Aig::check`] — it is built exclusively through the canonical builder.
pub fn generate(cfg: &GenConfig, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::with_capacity(cfg.inputs + 2 * cfg.nodes);
    let mut pool: Vec<Lit> = (0..cfg.inputs.max(1)).map(|_| aig.add_input()).collect();

    let pick = |rng: &mut StdRng, aig: &Aig, pool: &[Lit]| -> Lit {
        // Reconvergence knob: draw from the tail window so nearby gates
        // share fanins; otherwise draw uniformly.
        let window = 8.min(pool.len());
        let i = if rng.gen_bool(cfg.reconvergence) {
            pool.len() - 1 - rng.gen_range(0..window)
        } else {
            rng.gen_range(0..pool.len())
        };
        let mut lit = pool[i].xor(rng.gen_bool(0.5));
        // Depth budget: resample (bounded) toward shallower literals.
        let mut tries = 0;
        while aig.level(lit.node()) >= cfg.max_depth && tries < 8 {
            lit = pool[rng.gen_range(0..pool.len())].xor(rng.gen_bool(0.5));
            tries += 1;
        }
        lit
    };

    let mut steps = 0usize;
    while aig.num_ands() < cfg.nodes && steps < cfg.nodes * 4 {
        steps += 1;
        let a = pick(&mut rng, &aig, &pool);
        let b = pick(&mut rng, &aig, &pool);
        let lit = if rng.gen_bool(cfg.xor_mux) {
            if rng.gen_bool(0.5) {
                aig.add_xor(a, b)
            } else {
                let s = pick(&mut rng, &aig, &pool);
                aig.add_mux(s, a, b)
            }
        } else {
            aig.add_and(a, b)
        };
        if !lit.is_const() {
            pool.push(lit.regular());
        }
    }

    // Outputs: bias toward recent (deep, otherwise-dead) literals so most
    // of the generated structure stays live through cleanup.
    for k in 0..cfg.outputs.max(1) {
        let lit = if k == 0 && !pool.is_empty() {
            *pool.last().unwrap()
        } else {
            let half = pool.len().div_ceil(2);
            pool[pool.len() - 1 - rng.gen_range(0..half)]
        };
        aig.add_output(lit.xor(rng.gen_bool(0.5)));
    }
    aig.cleanup();
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(
            dacpara_aig::aiger::to_string(&a),
            dacpara_aig::aiger::to_string(&b)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = generate(&cfg, 1);
        let b = generate(&cfg, 2);
        assert_ne!(
            dacpara_aig::aiger::to_string(&a),
            dacpara_aig::aiger::to_string(&b)
        );
    }

    #[test]
    fn budgets_are_respected() {
        let cfg = GenConfig {
            inputs: 5,
            nodes: 80,
            outputs: 3,
            max_depth: 10,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let aig = generate(&cfg, seed);
            aig.check().unwrap();
            assert_eq!(aig.num_inputs(), 5);
            assert_eq!(aig.num_outputs(), 3);
            assert!(
                aig.num_ands() <= 2 * cfg.nodes,
                "macro steps may overshoot a little"
            );
            assert!(
                aig.depth() <= cfg.max_depth + 2,
                "xor/mux macros add at most 2 levels"
            );
        }
    }

    #[test]
    fn generated_circuits_have_live_logic() {
        let mut total = 0usize;
        for seed in 0..10 {
            total += generate(&GenConfig::small(), seed).num_ands();
        }
        assert!(total / 10 >= 20, "average area {} too small", total / 10);
    }
}
