//! Structure-preserving-by-construction mutations over existing AIGs.
//!
//! Every mutation is expressed as a [`RebuildPlan`] and replayed through the
//! strash-canonical builder, so a mutant is always a valid AIG — acyclic,
//! folded, hashed — no matter how aggressive the edit. *Functionally* most
//! mutations change the circuit, which is exactly what the fuzzer wants:
//! the differential oracle treats the mutant as a fresh golden input, and
//! the oracle-soundness tests use a guaranteed-changing mutation to prove
//! the CEC stage would actually catch a miscompile.

use dacpara_aig::{Aig, AigRead, Lit, NodeId, RebuildPlan};
use dacpara_equiv::{check_equivalence_budgeted, CecBudget, CecResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The mutation catalog.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Redirect one fanin edge of an AND gate to a topologically earlier
    /// literal (random complement).
    EdgeRetarget,
    /// Flip the complement bit of one fanin edge or one output.
    ComplementFlip,
    /// Function-preserving redundancy: re-express `n = a & b` as
    /// `(a & b) & (a | b)` — three gates that strashing cannot fold back.
    NodeDuplicate,
    /// Replace a node (and with it the cone feeding its fanouts) by the
    /// literal of a topologically earlier node.
    ConeSwap,
}

impl Mutation {
    /// All catalog entries, for weighted selection.
    pub const ALL: [Mutation; 4] = [
        Mutation::EdgeRetarget,
        Mutation::ComplementFlip,
        Mutation::NodeDuplicate,
        Mutation::ConeSwap,
    ];
}

/// Applies `ops` random catalog mutations, deterministic in `seed`.
///
/// Returns the mutant (always structurally valid) — functionally it usually
/// differs from the input. Mutations that happen to degenerate (a retarget
/// folding the gate away entirely, say) are still applied; the rebuild
/// machinery guarantees the result stays well-formed.
pub fn mutate(aig: &Aig, ops: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = aig.clone();
    for _ in 0..ops {
        let Some(next) = mutate_once(&current, &mut rng) else {
            break;
        };
        current = next;
    }
    current
}

fn mutate_once(aig: &Aig, rng: &mut StdRng) -> Option<Aig> {
    let ands: Vec<NodeId> = dacpara_aig::topo_ands(aig);
    if ands.is_empty() {
        return None;
    }
    // Topological rank of every node: inputs and constants rank 0, ANDs by
    // position. Used to restrict retarget/swap targets to earlier nodes so
    // the plan never contains a forward reference.
    let mut rank = vec![0usize; aig.slot_count()];
    for (i, &n) in ands.iter().enumerate() {
        rank[n.index()] = i + 1;
    }
    let earlier = |rng: &mut StdRng, bound: usize, aig: &Aig, ands: &[NodeId]| -> Lit {
        // Inputs and strictly earlier ANDs are fair targets.
        let inputs = aig.input_ids();
        let choices = inputs.len() + bound;
        let k = rng.gen_range(0..choices.max(1));
        let node = if k < inputs.len() {
            inputs[k]
        } else {
            ands[k - inputs.len()]
        };
        node.lit().xor(rng.gen_bool(0.5))
    };

    let mut plan = RebuildPlan::new();
    let kind = Mutation::ALL[rng.gen_range(0..Mutation::ALL.len())];
    match kind {
        Mutation::EdgeRetarget => {
            let i = rng.gen_range(0..ands.len());
            let n = ands[i];
            let target = earlier(rng, rank[n.index()] - 1, aig, &ands);
            if rng.gen_bool(0.5) {
                plan.refanin(n, Some(target), None);
            } else {
                plan.refanin(n, None, Some(target));
            }
        }
        Mutation::ComplementFlip => {
            if rng.gen_bool(0.3) || aig.num_ands() == 0 {
                let po = rng.gen_range(0..aig.num_outputs());
                plan.flip_output(po);
            } else {
                let n = ands[rng.gen_range(0..ands.len())];
                let [fa, fb] = aig.fanins(n);
                if rng.gen_bool(0.5) {
                    plan.refanin(n, Some(!fa), None);
                } else {
                    plan.refanin(n, None, Some(!fb));
                }
            }
        }
        Mutation::NodeDuplicate => {
            // Handled below: needs builder access, not just a plan.
            let n = ands[rng.gen_range(0..ands.len())];
            return Some(duplicate_node(aig, n));
        }
        Mutation::ConeSwap => {
            if ands.len() < 2 {
                return None;
            }
            let vi = rng.gen_range(1..ands.len());
            let v = ands[vi];
            let target = earlier(rng, vi, aig, &ands);
            plan.replace_node(v, target);
        }
    }
    plan.apply(aig).ok()
}

/// Re-expresses `n = a & b` as `(a & b) & (a | b)` — function-preserving
/// redundancy that survives structural hashing (the two inner gates have
/// different fanin pairs).
fn duplicate_node(aig: &Aig, n: NodeId) -> Aig {
    let [fa, fb] = aig.fanins(n);
    // Build the redundant expression manually: copy everything, but wire
    // n's fanouts to the redundant form. Expressed as a rebuild where the
    // "or" gate is created via a refanin chain is awkward, so copy by hand.
    let mut out = Aig::with_capacity(aig.slot_count() + 4);
    let mut map = vec![Lit::FALSE; aig.slot_count()];
    for i in aig.input_ids() {
        map[i.index()] = out.add_input();
    }
    for m in dacpara_aig::topo_ands(aig) {
        if m == n {
            let a = map[fa.node().index()].xor(fa.is_complement());
            let b = map[fb.node().index()].xor(fb.is_complement());
            let conj = out.add_and(a, b);
            let disj = out.add_or(a, b);
            map[m.index()] = out.add_and(conj, disj);
        } else {
            let [ma, mb] = aig.fanins(m);
            let la = map[ma.node().index()].xor(ma.is_complement());
            let lb = map[mb.node().index()].xor(mb.is_complement());
            map[m.index()] = out.add_and(la, lb);
        }
    }
    for po in aig.output_lits() {
        let l = map[po.node().index()].xor(po.is_complement());
        out.add_output(l);
    }
    out.cleanup();
    out
}

/// Mutates until the mutant is provably inequivalent to `aig` (the oracle
/// soundness tests need a guaranteed function change, and a random retarget
/// can accidentally preserve function). Returns the mutant and the
/// counterexample input assignment, or `None` after `max_tries` attempts.
pub fn mutate_until_inequivalent(
    aig: &Aig,
    seed: u64,
    max_tries: usize,
) -> Option<(Aig, Vec<bool>)> {
    let budget = CecBudget::default();
    for t in 0..max_tries {
        let mutant = mutate(aig, 1 + t % 3, seed.wrapping_add(t as u64));
        if mutant.num_inputs() != aig.num_inputs() || mutant.num_outputs() != aig.num_outputs() {
            continue;
        }
        if let CecResult::Inequivalent(cex) = check_equivalence_budgeted(aig, &mutant, &budget) {
            return Some((mutant, cex));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn mutants_are_always_structurally_valid() {
        let aig = generate(&GenConfig::small(), 7);
        for seed in 0..30 {
            let m = mutate(&aig, 1 + (seed as usize % 4), seed);
            m.check().unwrap();
            assert_eq!(m.num_inputs(), aig.num_inputs());
        }
    }

    #[test]
    fn duplicate_preserves_function() {
        let aig = generate(&GenConfig::small(), 11);
        let ands: Vec<NodeId> = dacpara_aig::topo_ands(&aig);
        let m = duplicate_node(&aig, *ands.last().unwrap());
        m.check().unwrap();
        assert_eq!(
            check_equivalence_budgeted(&aig, &m, &CecBudget::default()),
            CecResult::Equivalent
        );
    }

    #[test]
    fn inequivalent_mutants_are_findable() {
        let aig = generate(&GenConfig::small(), 3);
        let (mutant, cex) = mutate_until_inequivalent(&aig, 99, 50).expect("mutation space dry");
        mutant.check().unwrap();
        assert_eq!(cex.len(), aig.num_inputs());
        let oa = dacpara_equiv::simulate_bools(&aig, &cex);
        let ob = dacpara_equiv::simulate_bools(&mutant, &cex);
        assert_ne!(oa, ob, "counterexample must separate the pair");
    }
}
