//! Delta-debugging minimization of failing circuits.
//!
//! Classic ddmin adapted to DAGs: every reduction step is a [`RebuildPlan`]
//! (cone-to-constant removal in halving chunks, per-node bypass to a fanin,
//! input merging, output dropping), so a candidate is always a valid AIG
//! and the only question is whether the caller's failure predicate still
//! fires on it. Greedy accept: whenever a smaller candidate still fails,
//! restart the strategy ladder from it. The predicate is re-run by the
//! caller as many times as it likes per candidate — nondeterministic
//! parallel failures are its problem to reproduce, typically by repeating
//! the oracle sweep a few times (see [`ShrinkConfig::repeats`] plumbing in
//! the CLI).

use dacpara_aig::{Aig, AigRead, Lit, NodeId, RebuildPlan};

/// Knobs for [`shrink`].
#[derive(Copy, Clone, Debug)]
pub struct ShrinkConfig {
    /// Upper bound on full strategy-ladder rounds (each round only runs
    /// when the previous one made progress, so this is a safety net, not
    /// the usual exit).
    pub max_rounds: usize,
    /// How many times the caller's predicate should be consulted per
    /// candidate before declaring the failure gone. The shrinker itself
    /// calls the predicate once per `repeats` — callers with
    /// nondeterministic failures fold the repetition into their closure;
    /// this knob exists so the CLI can surface it uniformly.
    pub repeats: usize,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            max_rounds: 12,
            repeats: 1,
        }
    }
}

/// Minimizes `aig` while `still_fails` keeps returning `true`, and returns
/// the smallest failing circuit found.
///
/// The predicate receives structurally valid candidates only. It is never
/// called on the input itself — the caller asserts that the input fails.
pub fn shrink<F>(aig: &Aig, cfg: &ShrinkConfig, mut still_fails: F) -> Aig
where
    F: FnMut(&Aig) -> bool,
{
    let mut best = aig.clone();
    for _round in 0..cfg.max_rounds {
        let mut progressed = false;

        // Strategy 1: drop outputs in halving chunks (only when >1 left).
        progressed |= drop_outputs(&mut best, &mut still_fails);

        // Strategy 2: cone removal — tie whole chunks of AND nodes to
        // constant false, halving the chunk size on failure-to-reproduce.
        progressed |= const_chunks(&mut best, &mut still_fails);

        // Strategy 3: per-node bypass to one of its fanins.
        progressed |= bypass_nodes(&mut best, &mut still_fails);

        // Strategy 4: merge inputs pairwise (keeps arity, kills logic).
        progressed |= merge_inputs(&mut best, &mut still_fails);

        if !progressed {
            break;
        }
    }
    dacpara_obs::counter("fuzz.shrink.accepted_area").add(best.num_ands() as u64);
    best
}

fn try_accept<F>(best: &mut Aig, plan: &RebuildPlan, still_fails: &mut F) -> bool
where
    F: FnMut(&Aig) -> bool,
{
    let Ok(candidate) = plan.apply(best) else {
        return false;
    };
    dacpara_obs::counter("fuzz.shrink.candidates").incr();
    // Only accept strict size progress (the measure is a sum of bounded
    // naturals, so greedy accept terminates); equal-size rewrites could
    // cycle forever.
    let size = |a: &Aig| a.num_ands() + a.num_outputs();
    if size(&candidate) >= size(best) {
        return false;
    }
    if still_fails(&candidate) {
        *best = candidate;
        true
    } else {
        false
    }
}

fn drop_outputs<F: FnMut(&Aig) -> bool>(best: &mut Aig, still_fails: &mut F) -> bool {
    let mut progressed = false;
    let mut chunk = best.num_outputs() / 2;
    while chunk >= 1 {
        let outs = best.num_outputs();
        if outs <= 1 {
            break;
        }
        let mut start = 0;
        let mut moved = false;
        while start < best.num_outputs() && best.num_outputs() > 1 {
            let end = (start + chunk).min(best.num_outputs());
            if end - start == best.num_outputs() {
                break; // never drop every output
            }
            let mut plan = RebuildPlan::new();
            for pos in start..end {
                plan.drop_output(pos);
            }
            if try_accept(best, &plan, still_fails) {
                progressed = true;
                moved = true;
                // indices shifted; restart this chunk sweep
                start = 0;
            } else {
                start = end;
            }
        }
        if !moved {
            chunk /= 2;
        }
    }
    progressed
}

fn const_chunks<F: FnMut(&Aig) -> bool>(best: &mut Aig, still_fails: &mut F) -> bool {
    let mut progressed = false;
    loop {
        let ands: Vec<NodeId> = dacpara_aig::topo_ands(&*best);
        if ands.is_empty() {
            break;
        }
        let mut chunk = (ands.len() / 2).max(1);
        let mut accepted = false;
        while chunk >= 1 {
            let ands: Vec<NodeId> = dacpara_aig::topo_ands(&*best);
            let mut start = 0;
            let mut moved = false;
            while start < ands.len() {
                let end = (start + chunk).min(ands.len());
                let mut plan = RebuildPlan::new();
                // Reverse topo order: tie off the shallowest cones last so
                // a chunk is a contiguous band of the DAG's tail.
                for &n in &ands[ands.len() - end..ands.len() - start] {
                    plan.replace_node(n, Lit::FALSE);
                }
                if try_accept(best, &plan, still_fails) {
                    accepted = true;
                    moved = true;
                    break; // node list invalidated; restart outer loop
                }
                start = end;
            }
            if moved {
                break;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if accepted {
            progressed = true;
        } else {
            break;
        }
    }
    progressed
}

fn bypass_nodes<F: FnMut(&Aig) -> bool>(best: &mut Aig, still_fails: &mut F) -> bool {
    let mut progressed = false;
    loop {
        let ands: Vec<NodeId> = dacpara_aig::topo_ands(&*best);
        let mut accepted = false;
        // Deep nodes first: bypassing near the outputs removes the most.
        for &n in ands.iter().rev() {
            if !best.is_and(n) {
                continue; // invalidated by an earlier accept in this sweep
            }
            let [fa, fb] = best.fanins(n);
            for lit in [fa, fb] {
                let mut plan = RebuildPlan::new();
                plan.replace_node(n, lit);
                if try_accept(best, &plan, still_fails) {
                    accepted = true;
                    break;
                }
            }
            if accepted {
                break;
            }
        }
        if accepted {
            progressed = true;
        } else {
            break;
        }
    }
    progressed
}

fn merge_inputs<F: FnMut(&Aig) -> bool>(best: &mut Aig, still_fails: &mut F) -> bool {
    let mut progressed = false;
    let n = best.num_inputs();
    for from in 1..n {
        for into in 0..from {
            let mut plan = RebuildPlan::new();
            plan.merge_input(from, into);
            if try_accept(best, &plan, still_fails) {
                progressed = true;
                break;
            }
        }
    }
    progressed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use dacpara_equiv::simulate_bools;

    /// Shrinking against a semantic predicate: "output 0 is not constant
    /// false under the all-true assignment" — a stand-in for a real failure
    /// that survives many reductions.
    #[test]
    fn shrinks_to_a_tiny_witness() {
        let aig = generate(&GenConfig::default(), 21);
        let all_true = vec![true; aig.num_inputs()];
        let fails = |c: &Aig| c.num_inputs() == all_true.len() && simulate_bools(c, &all_true)[0];
        // Find a seed/polarity where the predicate holds to begin with.
        let golden = if fails(&aig) {
            aig
        } else {
            let mut plan = RebuildPlan::new();
            plan.flip_output(0);
            plan.apply(&aig).unwrap()
        };
        assert!(fails(&golden));
        let small = shrink(&golden, &ShrinkConfig::default(), fails);
        small.check().unwrap();
        assert!(fails(&small), "shrinker must preserve the failure");
        assert!(
            small.num_ands() <= 2,
            "a sign-of-one-output predicate should shrink to near nothing, got {}",
            small.num_ands()
        );
    }

    #[test]
    fn shrink_keeps_structural_validity_for_every_accept() {
        let aig = generate(&GenConfig::small(), 33);
        let fails = |c: &Aig| {
            c.check().unwrap();
            c.num_ands() >= 5
        };
        let small = shrink(&aig, &ShrinkConfig::default(), fails);
        assert!(small.num_ands() >= 5);
        assert!(small.num_ands() <= aig.num_ands());
    }
}
