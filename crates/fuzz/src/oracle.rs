//! The differential oracle: one circuit, every engine configuration.
//!
//! A circuit passes when every cell of the engine matrix — engine ×
//! scheduler × thread count — returns successfully, keeps the structural
//! invariants and stays functionally equivalent to the input under budgeted
//! CEC. Optionally the whole sweep runs under a `dacpara-fault` injection
//! plan, in which case clean engine *errors* are expected behaviour (that
//! is the fault-tolerance contract) and only corruption — an invariant
//! violation or an inequivalence — counts as a failure.

use dacpara::testkit::{engine_matrix, run_matrix_point, MatrixPoint, MatrixVerdict};
use dacpara_aig::Aig;
use dacpara_equiv::CecBudget;
use dacpara_fault::FaultPlan;

/// Configuration of one oracle sweep.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// The matrix cells to run. Defaults to the full differential sweep at
    /// 1, 2 and 4 threads.
    pub points: Vec<MatrixPoint>,
    /// Equivalence-check budget per cell.
    pub budget: CecBudget,
    /// Optional fault-injection plan armed around every cell.
    pub fault: Option<FaultPlan>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            points: engine_matrix(&[1, 2, 4]),
            budget: CecBudget::fuzzing(),
            fault: None,
        }
    }
}

/// One failing matrix cell.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The cell that failed.
    pub point: MatrixPoint,
    /// What went wrong.
    pub verdict: MatrixVerdict,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {:?}", self.point, self.verdict)
    }
}

/// Runs the full oracle sweep on `golden` and returns every failing cell
/// (empty means the circuit passed).
///
/// Under a fault plan, [`MatrixVerdict::EngineError`] cells are filtered
/// out: injected faults are *supposed* to surface as clean errors, and the
/// recovery differential suite already pins their behaviour. Corruption
/// verdicts always count.
pub fn check_circuit(golden: &Aig, cfg: &OracleConfig) -> Vec<Failure> {
    let mut failures = Vec::new();
    dacpara_obs::counter("fuzz.oracle.circuits").incr();
    for point in &cfg.points {
        dacpara_obs::counter("fuzz.oracle.cells").incr();
        let verdict = match &cfg.fault {
            Some(plan) => {
                let _inj = dacpara_fault::inject(plan);
                run_matrix_point(golden, point, &cfg.budget)
            }
            None => run_matrix_point(golden, point, &cfg.budget),
        };
        let expected_fault_error =
            cfg.fault.is_some() && matches!(verdict, MatrixVerdict::EngineError(_));
        if verdict.is_failure() && !expected_fault_error {
            match &verdict {
                MatrixVerdict::Inequivalent { .. } => {
                    dacpara_obs::counter("fuzz.oracle.inequivalent").incr()
                }
                MatrixVerdict::InvariantViolation(_) => {
                    dacpara_obs::counter("fuzz.oracle.invariant_violations").incr()
                }
                _ => dacpara_obs::counter("fuzz.oracle.engine_errors").incr(),
            }
            failures.push(Failure {
                point: *point,
                verdict,
            });
        }
    }
    if !failures.is_empty() {
        dacpara_obs::counter("fuzz.oracle.failures").incr();
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn healthy_engines_pass_the_oracle() {
        let golden = generate(&GenConfig::small(), 5);
        let cfg = OracleConfig {
            points: engine_matrix(&[1, 2]),
            ..OracleConfig::default()
        };
        let failures = check_circuit(&golden, &cfg);
        assert!(
            failures.is_empty(),
            "unexpected failures: {:?}",
            failures.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fault_injected_sweep_tolerates_clean_errors() {
        let golden = generate(&GenConfig::small(), 6);
        let plan = FaultPlan::parse("arena.alloc=1/40*4", 11).unwrap();
        let cfg = OracleConfig {
            points: engine_matrix(&[1, 2]),
            fault: Some(plan),
            ..OracleConfig::default()
        };
        let failures = check_circuit(&golden, &cfg);
        assert!(
            failures.is_empty(),
            "fault sweep must not corrupt: {:?}",
            failures.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }
}
