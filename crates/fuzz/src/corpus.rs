//! Replayable corpus entries: one file = one circuit + one oracle setup.
//!
//! An entry is a plain-text header (`key: value` lines) followed by a `---`
//! separator and the circuit in ASCII AIGER. Everything the oracle needs to
//! reproduce a run is in the header: the generator seed it came from, the
//! thread counts, an optional fault plan (spec + seed, in the grammar
//! [`dacpara_fault::FaultPlan::parse`] accepts), an optional cargo feature
//! the failure needs (`requires-feature: inject-drain-bug` for the PR 4
//! drain-bug witness), and whether the entry is *expected* to fail
//! (a shrunk witness) or to pass (a regression pin).
//!
//! ```text
//! # dacpara-fuzz corpus entry
//! version: 1
//! seed: 12345
//! threads: 1,2,4
//! expect: fail
//! requires-feature: inject-drain-bug
//! note: shrunk witness of the steal drain bug
//! ---
//! aag 9 2 0 2 7
//! ...
//! ```

use std::path::Path;

use dacpara::testkit::engine_matrix;
use dacpara_aig::{aiger, Aig};
use dacpara_fault::FaultPlan;

use crate::oracle::{check_circuit, OracleConfig};

/// One parsed corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Generator seed the circuit descended from (provenance only; the
    /// AIGER payload is authoritative).
    pub seed: u64,
    /// Thread counts for the oracle sweep.
    pub threads: Vec<usize>,
    /// Optional fault plan `(spec, seed)` armed around every cell.
    pub fault: Option<(String, u64)>,
    /// Cargo feature the failure needs (entries are skipped when the
    /// feature is not compiled in).
    pub requires_feature: Option<String>,
    /// `true` for a shrunk failure witness, `false` for a regression pin.
    pub expect_fail: bool,
    /// Free-text provenance note.
    pub note: String,
    /// The circuit itself.
    pub aig: Aig,
}

impl CorpusEntry {
    /// A regression pin: the circuit is expected to pass the full sweep.
    pub fn pin(seed: u64, aig: Aig, note: &str) -> Self {
        CorpusEntry {
            seed,
            threads: vec![1, 2, 4],
            fault: None,
            requires_feature: None,
            expect_fail: false,
            note: note.to_string(),
            aig,
        }
    }

    /// Serializes the entry to the on-disk format.
    pub fn to_entry_string(&self) -> String {
        let mut s = String::from("# dacpara-fuzz corpus entry\nversion: 1\n");
        s.push_str(&format!("seed: {}\n", self.seed));
        let threads: Vec<String> = self.threads.iter().map(|t| t.to_string()).collect();
        s.push_str(&format!("threads: {}\n", threads.join(",")));
        if let Some((spec, fseed)) = &self.fault {
            s.push_str(&format!("fault-spec: {spec}\n"));
            s.push_str(&format!("fault-seed: {fseed}\n"));
        }
        if let Some(feat) = &self.requires_feature {
            s.push_str(&format!("requires-feature: {feat}\n"));
        }
        s.push_str(&format!(
            "expect: {}\n",
            if self.expect_fail { "fail" } else { "pass" }
        ));
        if !self.note.is_empty() {
            s.push_str(&format!("note: {}\n", self.note));
        }
        s.push_str("---\n");
        s.push_str(&aiger::to_string(&self.aig));
        s
    }

    /// Parses the on-disk format.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed headers or AIGER.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let (header, payload) = text
            .split_once("\n---\n")
            .ok_or("missing `---` separator")?;
        let mut entry = CorpusEntry {
            seed: 0,
            threads: vec![1, 2, 4],
            fault: None,
            requires_feature: None,
            expect_fail: false,
            note: String::new(),
            aig: Aig::new(),
        };
        let mut fault_spec: Option<String> = None;
        let mut fault_seed: u64 = 0;
        for line in header.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed header line `{line}`"))?;
            let value = value.trim();
            match key.trim() {
                "version" => {
                    if value != "1" {
                        return Err(format!("unsupported corpus version `{value}`"));
                    }
                }
                "seed" => {
                    entry.seed = value
                        .parse()
                        .map_err(|_| format!("seed `{value}` is not a u64"))?;
                }
                "threads" => {
                    entry.threads = value
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse()
                                .map_err(|_| format!("thread count `{t}` is not a usize"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "fault-spec" => fault_spec = Some(value.to_string()),
                "fault-seed" => {
                    fault_seed = value
                        .parse()
                        .map_err(|_| format!("fault-seed `{value}` is not a u64"))?;
                }
                "requires-feature" => entry.requires_feature = Some(value.to_string()),
                "expect" => {
                    entry.expect_fail = match value {
                        "fail" => true,
                        "pass" => false,
                        other => return Err(format!("expect must be pass|fail, got `{other}`")),
                    };
                }
                "note" => entry.note = value.to_string(),
                other => return Err(format!("unknown header key `{other}`")),
            }
        }
        entry.fault = fault_spec.map(|s| (s, fault_seed));
        entry.aig = aiger::parse(payload).map_err(|e| format!("payload: {e}"))?;
        entry
            .aig
            .check()
            .map_err(|e| format!("payload fails the invariant checker: {e}"))?;
        Ok(entry)
    }

    /// Writes the entry to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_entry_string())
    }

    /// Reads and parses an entry from `path`.
    pub fn read_from(path: &Path) -> Result<CorpusEntry, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        CorpusEntry::parse(&text)
    }

    /// The oracle configuration this entry describes.
    ///
    /// # Errors
    ///
    /// Returns an error when the recorded fault spec no longer parses.
    pub fn oracle_config(&self) -> Result<OracleConfig, String> {
        let fault = match &self.fault {
            Some((spec, seed)) => Some(
                FaultPlan::parse(spec, *seed).map_err(|e| format!("recorded fault spec: {e}"))?,
            ),
            None => None,
        };
        Ok(OracleConfig {
            points: engine_matrix(&self.threads),
            fault,
            ..OracleConfig::default()
        })
    }
}

/// Outcome of replaying one corpus entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The entry behaved as recorded (pin passed, or witness reproduced).
    Green,
    /// The entry needs a cargo feature this build lacks.
    Skipped(String),
    /// The entry did not behave as recorded; the strings render the
    /// unexpected failures (empty when a witness failed to reproduce).
    Mismatch(Vec<String>),
}

/// Replays `entry`: runs the recorded oracle sweep and compares the result
/// with the recorded expectation.
///
/// `have_features` names the relevant cargo features compiled into this
/// binary (the caller knows; `cfg!` cannot be evaluated for a dependency's
/// feature set at a distance).
pub fn replay(entry: &CorpusEntry, have_features: &[&str]) -> Result<ReplayOutcome, String> {
    if let Some(feat) = &entry.requires_feature {
        if !have_features.contains(&feat.as_str()) {
            return Ok(ReplayOutcome::Skipped(feat.clone()));
        }
    }
    let cfg = entry.oracle_config()?;
    let failures = check_circuit(&entry.aig, &cfg);
    let outcome = match (entry.expect_fail, failures.is_empty()) {
        (false, true) | (true, false) => ReplayOutcome::Green,
        (false, false) => ReplayOutcome::Mismatch(failures.iter().map(|f| f.to_string()).collect()),
        (true, true) => ReplayOutcome::Mismatch(Vec::new()),
    };
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn entry_round_trips_through_text() {
        let aig = generate(&GenConfig::small(), 17);
        let entry = CorpusEntry {
            seed: 17,
            threads: vec![1, 2],
            fault: Some(("arena.alloc=1/64*2".into(), 9)),
            requires_feature: Some("inject-drain-bug".into()),
            expect_fail: true,
            note: "round-trip test".into(),
            aig,
        };
        let text = entry.to_entry_string();
        let back = CorpusEntry::parse(&text).unwrap();
        assert_eq!(back.seed, 17);
        assert_eq!(back.threads, vec![1, 2]);
        assert_eq!(back.fault, entry.fault);
        assert_eq!(back.requires_feature, entry.requires_feature);
        assert!(back.expect_fail);
        assert_eq!(back.note, "round-trip test");
        assert_eq!(aiger::to_string(&back.aig), aiger::to_string(&entry.aig));
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(CorpusEntry::parse("no separator").is_err());
        assert!(CorpusEntry::parse("bogus: 1\n---\naag 0 0 0 0 0\n").is_err());
        assert!(CorpusEntry::parse("expect: maybe\n---\naag 0 0 0 0 0\n").is_err());
    }

    #[test]
    fn replay_skips_entries_needing_missing_features() {
        let aig = generate(&GenConfig::small(), 4);
        let mut entry = CorpusEntry::pin(4, aig, "pin");
        entry.requires_feature = Some("inject-drain-bug".into());
        assert_eq!(
            replay(&entry, &[]).unwrap(),
            ReplayOutcome::Skipped("inject-drain-bug".into())
        );
    }

    #[test]
    fn replay_runs_pins_green() {
        let aig = generate(&GenConfig::small(), 8);
        let mut entry = CorpusEntry::pin(8, aig, "pin");
        entry.threads = vec![1, 2];
        assert_eq!(replay(&entry, &[]).unwrap(), ReplayOutcome::Green);
    }
}
