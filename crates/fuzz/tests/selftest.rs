//! The fuzzer's headline self-test: the loop must close on a real bug.
//!
//! With the `inject-drain-bug` feature compiled in, the engine crate
//! re-introduces a variant of the PR 4 steal-scheduler drain bug (a drained
//! steal round mis-associates a node with its worklist neighbour's stored
//! candidate and commits it without revalidation). This suite then demands
//! the full tool chain earns its keep:
//!
//! * `fuzz_run` rediscovers the bug within a bounded seed budget,
//! * every conviction names the steal scheduler (the barrier scheduler
//!   never drains, so a differential fuzzer must keep it green),
//! * the delta-debugging shrinker drives the witness below 60 AND nodes,
//! * the shrunk witness round-trips through the corpus format and replays.
//!
//! With the gate off, the same campaign machinery must stay silent: a
//! bounded smoke run across the engine matrix with zero oracle failures.
//! CI runs the gated half via
//! `cargo test -p dacpara-fuzz --features inject-drain-bug --test selftest`.

#[cfg(feature = "inject-drain-bug")]
mod gate_on {
    use dacpara::testkit::{engine_matrix, MatrixPoint};
    use dacpara::SchedulerKind;
    use dacpara_aig::AigRead;
    use dacpara_fuzz::corpus::{replay, CorpusEntry, ReplayOutcome};
    use dacpara_fuzz::gen::GenConfig;
    use dacpara_fuzz::oracle::{check_circuit, OracleConfig};
    use dacpara_fuzz::shrink::ShrinkConfig;
    use dacpara_fuzz::{fuzz_run, shrink_failing, summarize, FuzzConfig};

    /// The bounded seed budget the ISSUE gates on: the injected bug fires on
    /// the large majority of generated circuits, so a campaign this long
    /// failing to convict would itself be a regression in the fuzzer.
    const SEED_BUDGET: usize = 40;

    fn campaign_config() -> FuzzConfig {
        FuzzConfig {
            iters: SEED_BUDGET,
            gen: GenConfig::small(),
            oracle: OracleConfig {
                points: engine_matrix(&[1, 2]),
                ..OracleConfig::default()
            },
            // Mutation adds nothing to this hunt and costs determinism.
            mutate_every: 0,
        }
    }

    #[test]
    fn fuzzer_rediscovers_the_drain_bug_and_shrinks_the_witness() {
        let cfg = campaign_config();
        let report = fuzz_run(&cfg, 0xDACF_0001);
        let case = report.failing.as_ref().unwrap_or_else(|| {
            panic!(
                "the injected drain bug must be found within {SEED_BUDGET} seeds: {}",
                summarize(&report)
            )
        });

        // The bug lives in the steal pool's drain path; a differential
        // fuzzer that convicted a barrier cell would be misattributing.
        assert!(!case.failures.is_empty());
        for failure in &case.failures {
            assert_eq!(
                failure.point.scheduler,
                SchedulerKind::Steal,
                "only steal cells may fail, got {failure}"
            );
        }

        // Shrink against exactly the cells that convicted the circuit.
        let mut points: Vec<MatrixPoint> = case.failures.iter().map(|f| f.point).collect();
        points.dedup();
        let shrink_oracle = OracleConfig {
            points,
            ..OracleConfig::default()
        };
        let shrink_cfg = ShrinkConfig {
            max_rounds: 12,
            repeats: 3,
        };
        let witness = shrink_failing(case, &shrink_oracle, &shrink_cfg);
        witness
            .check()
            .expect("shrunk witness must stay a valid AIG");
        assert!(
            witness.num_ands() <= 60,
            "witness must shrink below 60 nodes, got {} (started at {})",
            witness.num_ands(),
            case.aig.num_ands()
        );

        // The witness must survive the corpus round trip and replay red.
        let entry = CorpusEntry {
            seed: case.seed,
            threads: vec![1, 2],
            fault: None,
            requires_feature: Some("inject-drain-bug".into()),
            expect_fail: true,
            note: "selftest: shrunk drain-bug witness".into(),
            aig: witness,
        };
        let back = CorpusEntry::parse(&entry.to_entry_string()).expect("entry must re-parse");
        assert!(back.expect_fail);
        assert_eq!(back.requires_feature.as_deref(), Some("inject-drain-bug"));
        // Parallel failures are probabilistic; a witness shrunk under
        // `repeats: 3` is allowed a few replay sweeps to reproduce.
        let mut outcome = ReplayOutcome::Mismatch(Vec::new());
        for _ in 0..5 {
            outcome = replay(&back, &["inject-drain-bug"]).expect("replay must run");
            if outcome == ReplayOutcome::Green {
                break;
            }
        }
        assert_eq!(
            outcome,
            ReplayOutcome::Green,
            "shrunk witness must reproduce under replay"
        );

        // Without the feature flag the entry must be skipped, not run: the
        // corpus stays replayable on default builds.
        assert_eq!(
            replay(&back, &[]).expect("replay must run"),
            ReplayOutcome::Skipped("inject-drain-bug".into())
        );
    }

    #[test]
    fn barrier_scheduler_stays_green_under_the_injected_bug() {
        // The differential half of the self-test: the bug is in the steal
        // pool's drain protocol, and the barrier scheduler never drains.
        // Sweep barrier-only cells over a batch of circuits and demand
        // total silence — this is what localizes the bug to a scheduler.
        let barrier_only: Vec<MatrixPoint> = engine_matrix(&[1, 2, 4])
            .into_iter()
            .filter(|p| p.scheduler == SchedulerKind::Barrier)
            .collect();
        assert!(!barrier_only.is_empty());
        let cfg = OracleConfig {
            points: barrier_only,
            ..OracleConfig::default()
        };
        for iter in 0..10u64 {
            let seed = dacpara_fuzz::iteration_seed(0xDACF_0002, iter);
            let golden = dacpara_fuzz::gen::generate(&GenConfig::small(), seed);
            let failures = check_circuit(&golden, &cfg);
            assert!(
                failures.is_empty(),
                "barrier cells must stay green (seed {seed}): {:?}",
                failures.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            );
        }
    }
}

#[cfg(not(feature = "inject-drain-bug"))]
mod gate_off {
    use dacpara_fuzz::{fuzz_run, summarize, FuzzConfig};

    #[test]
    fn engine_matrix_smoke_is_clean() {
        // Bounded by default so tier-1 stays fast; CI's nightly job raises
        // the budget through the same knob.
        let iters = std::env::var("DACPARA_FUZZ_SMOKE_ITERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(25);
        let report = fuzz_run(&FuzzConfig::smoke(iters), 0xDACF_0003);
        assert_eq!(report.iterations, iters, "{}", summarize(&report));
        assert!(
            report.failing.is_none(),
            "healthy engines must pass the smoke campaign: {}",
            summarize(&report)
        );
    }
}
