//! Oracle-soundness negative tests: prove the differential oracle's CEC
//! stage would actually convict a miscompile, and that the shrinker
//! preserves a semantic failure while minimizing.
//!
//! The positive suites show healthy engines pass; these show a *broken*
//! result cannot sneak through. A fuzzer whose oracle silently accepts
//! everything is worse than no fuzzer — this file is the reason to trust a
//! green campaign.

use dacpara_aig::{same_interface, Aig, AigRead};
use dacpara_equiv::{check_equivalence_budgeted, simulate_bools, CecBudget, CecResult};
use dacpara_fuzz::gen::{generate, GenConfig};
use dacpara_fuzz::mutate::mutate_until_inequivalent;
use dacpara_fuzz::shrink::{shrink, ShrinkConfig};

/// A function-changing mutation must be provably inequivalent under the
/// same budgeted CEC the oracle uses, and the counterexample it returns
/// must actually separate the pair.
#[test]
fn function_changing_mutation_is_convicted() {
    let budget = CecBudget::fuzzing();
    for seed in [5u64, 23, 71] {
        let golden = generate(&GenConfig::small(), seed);
        let (mutant, cex) =
            mutate_until_inequivalent(&golden, seed ^ 0xBAD, 60).expect("mutation space dry");
        assert!(same_interface(&golden, &mutant));
        assert!(matches!(
            check_equivalence_budgeted(&golden, &mutant, &budget),
            CecResult::Inequivalent(_)
        ));
        let oa = simulate_bools(&golden, &cex);
        let ob = simulate_bools(&mutant, &cex);
        assert_ne!(oa, ob, "counterexample must separate golden and mutant");
    }
}

/// Shrinking an inequivalent mutant against the fixed golden keeps the
/// inequivalence alive all the way down: the minimized circuit is still a
/// counterexample to "the engines preserved the function", only smaller.
#[test]
fn shrinker_preserves_inequivalence() {
    let budget = CecBudget::fuzzing();
    let golden = generate(&GenConfig::small(), 41);
    let (mutant, _) = mutate_until_inequivalent(&golden, 0xFEED, 60).expect("mutation space dry");

    let still_fails = |candidate: &Aig| {
        // Reductions that change the interface can no longer be compared
        // against the fixed golden; the predicate rejects them and the
        // shrinker moves on to interface-preserving reductions.
        same_interface(&golden, candidate)
            && matches!(
                check_equivalence_budgeted(&golden, candidate, &budget),
                CecResult::Inequivalent(_)
            )
    };
    assert!(still_fails(&mutant), "shrink input must fail to begin with");

    let small = shrink(&mutant, &ShrinkConfig::default(), still_fails);
    small.check().unwrap();
    assert!(still_fails(&small), "shrinker lost the inequivalence");
    assert!(
        small.num_ands() <= mutant.num_ands(),
        "shrinker grew the witness: {} -> {}",
        mutant.num_ands(),
        small.num_ands()
    );
}

/// The oracle's invariant-checking stage is not vacuous either: the
/// generator only ever hands it circuits that pass `check()`, so assert the
/// precondition holds for a spread of seeds (a generator regression that
/// emits broken circuits would otherwise convert every campaign into noise).
#[test]
fn generated_circuits_always_pass_the_invariant_checker() {
    for seed in 0..40u64 {
        let aig = generate(&GenConfig::small(), seed);
        aig.check().unwrap();
        assert!(aig.num_outputs() > 0);
    }
}
