//! dacpara-fault: seeded, deterministic fault injection for recovery paths.
//!
//! Robust recovery code is only trustworthy if every path through it can be
//! exercised on demand. This crate provides named *fault points* — call sites
//! like the concurrent arena allocator or the speculative lock table ask
//! [`point`] whether an injected fault should fire here, and otherwise run
//! normally. The crate is std-only and dependency-free, mirroring
//! `dacpara-obs`: when no plan is armed the entire check is one relaxed
//! atomic load, so the points can live on allocator- and lock-acquire-hot
//! paths permanently.
//!
//! # Determinism
//!
//! Each point keeps a per-point atomic hit counter; every evaluation gets a
//! unique, monotonically assigned hit index. Whether a given index fires is a
//! pure function of `(seed, point name, index)` — it does not depend on
//! thread interleaving, so a plan produces the same *set* of firing indices
//! on every run. (Which thread observes a firing index can still vary; the
//! recovery machinery under test must tolerate that by construction.)
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of `point=expr` entries:
//!
//! * `name=1/N` — fires on roughly one in `N` hits, pseudo-randomly selected
//!   from the seed (`N = 1` fires on every hit);
//! * `name=@K` — fires on exactly the `K`-th hit (1-based);
//! * either form may append `*L` to cap the total number of firings at `L`.
//!
//! Example: `arena.alloc=1/64*3,operator.panic=@200,lock.acquire=1/32*10`.
//!
//! # Wiring
//!
//! The binary arms a plan from the environment ([`arm_from_env`]; knobs
//! `DACPARA_FAULT_SPEC` and `DACPARA_FAULT_SEED`). Tests use [`inject`],
//! which holds a global exclusivity lock so concurrently running tests that
//! inject faults serialize instead of trampling each other's plans, and
//! disarms on drop.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};

/// Canonical fault-point names used by the workspace, so call sites and
/// specs cannot drift apart silently.
pub mod points {
    /// Concurrent arena slot allocation (`ConcurrentAig::alloc_slot`); an
    /// injected fault reports `CapacityExhausted`.
    pub const ARENA_ALLOC: &str = "arena.alloc";
    /// Speculative lock acquisition (`LockTable::try_acquire`); an injected
    /// fault reports a conflict (all-or-nothing acquisition fails).
    pub const LOCK_ACQUIRE: &str = "lock.acquire";
    /// Replacement operator entry; an injected fault panics the worker.
    pub const OPERATOR_PANIC: &str = "operator.panic";
}

/// Fast-path switch: `false` means no plan is armed and [`point`] returns
/// immediately after one relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);

fn plan_cell() -> &'static RwLock<Option<ActivePlan>> {
    static CELL: OnceLock<RwLock<Option<ActivePlan>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(None))
}

/// Global exclusivity lock taken by [`inject`]: at most one test-owned
/// injection is live at a time, and concurrent tests queue behind it.
fn exclusive() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// How a single point decides whether a hit fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Fire when `mix(seed, name, index) % n == 0`.
    Rate(u64),
    /// Fire on exactly the given 1-based hit index.
    At(u64),
}

#[derive(Debug)]
struct PointState {
    name: String,
    mode: Mode,
    /// Maximum number of firings; `u64::MAX` when unlimited.
    limit: u64,
    hits: AtomicU64,
    fired: AtomicU64,
}

#[derive(Debug)]
struct ActivePlan {
    seed: u64,
    points: Vec<PointState>,
}

/// A parsed fault plan, ready to arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<(String, Mode, u64)>,
}

/// A malformed fault-spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// Parses a comma-separated spec string (see the crate docs for the
    /// grammar) with the given seed.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] on empty entries, missing `=`, malformed
    /// numbers, zero rates, or zero `@` indices.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, FaultSpecError> {
        let mut specs = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, expr) = entry
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("`{entry}` is missing `=`")))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(FaultSpecError(format!("`{entry}` has an empty point name")));
            }
            let expr = expr.trim();
            let (expr, limit) = match expr.split_once('*') {
                Some((head, cap)) => {
                    let cap: u64 = cap
                        .trim()
                        .parse()
                        .map_err(|_| FaultSpecError(format!("bad firing cap in `{entry}`")))?;
                    (head.trim(), cap)
                }
                None => (expr, u64::MAX),
            };
            let mode = if let Some(k) = expr.strip_prefix('@') {
                let k: u64 = k
                    .trim()
                    .parse()
                    .map_err(|_| FaultSpecError(format!("bad hit index in `{entry}`")))?;
                if k == 0 {
                    return Err(FaultSpecError(format!(
                        "hit indices are 1-based, got `@0` in `{entry}`"
                    )));
                }
                Mode::At(k)
            } else if let Some(n) = expr.strip_prefix("1/") {
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| FaultSpecError(format!("bad rate in `{entry}`")))?;
                if n == 0 {
                    return Err(FaultSpecError(format!("rate `1/0` in `{entry}`")));
                }
                Mode::Rate(n)
            } else {
                return Err(FaultSpecError(format!(
                    "`{entry}`: expected `1/N` or `@K` (optionally `*L`)"
                )));
            };
            specs.push((name.to_string(), mode, limit));
        }
        if specs.is_empty() {
            return Err(FaultSpecError("no fault points in spec".to_string()));
        }
        Ok(FaultPlan { seed, specs })
    }

    /// The seed the plan was parsed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's spec string in the grammar [`FaultPlan::parse`] accepts —
    /// unlike the [`Display`](std::fmt::Display) rendering it carries no
    /// seed suffix, so `FaultPlan::parse(&plan.spec_string(), plan.seed())`
    /// reproduces the plan exactly. Corpus entries persist plans this way.
    pub fn spec_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, (name, mode, limit)) in self.specs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match mode {
                Mode::Rate(n) => write!(out, "{name}=1/{n}").unwrap(),
                Mode::At(k) => write!(out, "{name}=@{k}").unwrap(),
            }
            if *limit != u64::MAX {
                write!(out, "*{limit}").unwrap();
            }
        }
        out
    }

    fn activate(&self) -> ActivePlan {
        ActivePlan {
            seed: self.seed,
            points: self
                .specs
                .iter()
                .map(|(name, mode, limit)| PointState {
                    name: name.clone(),
                    mode: *mode,
                    limit: *limit,
                    hits: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (name, mode, limit)) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match mode {
                Mode::Rate(n) => write!(f, "{name}=1/{n}")?,
                Mode::At(k) => write!(f, "{name}=@{k}")?,
            }
            if *limit != u64::MAX {
                write!(f, "*{limit}")?;
            }
        }
        write!(f, " (seed {})", self.seed)
    }
}

/// FNV-1a over the point name: stable across runs and platforms.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates `(seed, name, index)` into a uniform
/// 64-bit value.
fn mix(seed: u64, name_hash: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(name_hash.rotate_left(17))
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn read_plan() -> std::sync::RwLockReadGuard<'static, Option<ActivePlan>> {
    plan_cell().read().unwrap_or_else(|e| e.into_inner())
}

/// Should an injected fault fire at this point, now?
///
/// Call sites name the point with a static string (see [`points`]) and act
/// on `true` by failing the way that site can fail for real. When no plan
/// is armed this is a single relaxed atomic load.
#[inline]
pub fn point(name: &'static str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    point_slow(name)
}

#[cold]
fn point_slow(name: &str) -> bool {
    let guard = read_plan();
    let Some(plan) = guard.as_ref() else {
        return false;
    };
    let Some(p) = plan.points.iter().find(|p| p.name == name) else {
        return false;
    };
    // 1-based hit index: unique per evaluation regardless of interleaving.
    let index = p.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let fire = match p.mode {
        Mode::At(k) => index == k,
        Mode::Rate(n) => mix(plan.seed, hash_name(name), index).is_multiple_of(n),
    };
    if !fire {
        return false;
    }
    p.fired
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
            (f < p.limit).then(|| f + 1)
        })
        .is_ok()
}

/// Arms `plan` process-wide, replacing any previous plan. Prefer [`inject`]
/// in tests; this entry point is for binaries wiring up env-driven injection
/// at startup.
pub fn arm(plan: &FaultPlan) {
    let mut guard = plan_cell().write().unwrap_or_else(|e| e.into_inner());
    *guard = Some(plan.activate());
    ARMED.store(true, Ordering::Release);
}

/// Disarms fault injection process-wide and drops the active plan.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    let mut guard = plan_cell().write().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

/// Total evaluations of `name` under the current plan (0 when disarmed or
/// the point is not in the plan).
pub fn hits(name: &str) -> u64 {
    let guard = read_plan();
    guard
        .as_ref()
        .and_then(|p| p.points.iter().find(|p| p.name == name))
        .map_or(0, |p| p.hits.load(Ordering::Relaxed))
}

/// Total injected firings of `name` under the current plan.
pub fn fired(name: &str) -> u64 {
    let guard = read_plan();
    guard
        .as_ref()
        .and_then(|p| p.points.iter().find(|p| p.name == name))
        .map_or(0, |p| p.fired.load(Ordering::Relaxed))
}

/// RAII handle for a test-owned injection: holds the global exclusivity
/// lock and disarms on drop.
#[derive(Debug)]
pub struct Injection {
    _lock: MutexGuard<'static, ()>,
}

impl Injection {
    /// Total injected firings of `name` so far.
    pub fn fired(&self, name: &str) -> u64 {
        fired(name)
    }

    /// Total evaluations of `name` so far.
    pub fn hits(&self, name: &str) -> u64 {
        hits(name)
    }
}

impl Drop for Injection {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arms `plan` for the duration of the returned guard. Blocks until any
/// other live [`Injection`] is dropped, so fault-injecting tests running in
/// parallel serialize instead of mixing plans.
pub fn inject(plan: &FaultPlan) -> Injection {
    let lock = exclusive().lock().unwrap_or_else(|e| e.into_inner());
    arm(plan);
    Injection { _lock: lock }
}

/// Environment knob holding the fault spec (see the crate docs for the
/// grammar).
pub const ENV_SPEC: &str = "DACPARA_FAULT_SPEC";
/// Environment knob holding the decimal seed (defaults to 0 when unset).
pub const ENV_SEED: &str = "DACPARA_FAULT_SEED";

/// Arms a plan from `DACPARA_FAULT_SPEC` / `DACPARA_FAULT_SEED` if set.
/// Returns the armed plan, `Ok(None)` when the spec variable is unset or
/// empty, and an error string (suitable for CLI diagnostics) when either
/// variable is malformed.
pub fn arm_from_env() -> Result<Option<FaultPlan>, String> {
    let spec = match std::env::var(ENV_SPEC) {
        Ok(s) if !s.trim().is_empty() => s,
        _ => return Ok(None),
    };
    let seed = match std::env::var(ENV_SEED) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("{ENV_SEED}: `{s}` is not a u64"))?,
        Err(_) => 0,
    };
    let plan = FaultPlan::parse(&spec, seed).map_err(|e| format!("{ENV_SPEC}: {e}"))?;
    arm(&plan);
    Ok(Some(plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_never_fire() {
        assert!(!point("arena.alloc"));
        assert_eq!(hits("arena.alloc"), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("", 0).is_err());
        assert!(FaultPlan::parse("arena.alloc", 0).is_err());
        assert!(FaultPlan::parse("arena.alloc=2/3", 0).is_err());
        assert!(FaultPlan::parse("arena.alloc=1/0", 0).is_err());
        assert!(FaultPlan::parse("arena.alloc=@0", 0).is_err());
        assert!(FaultPlan::parse("=1/4", 0).is_err());
        assert!(FaultPlan::parse("a=1/4*x", 0).is_err());
    }

    #[test]
    fn parse_roundtrips_through_display() {
        let plan = FaultPlan::parse("a=1/64*3, b=@200, c=1/1", 7).unwrap();
        assert_eq!(format!("{plan}"), "a=1/64*3,b=@200,c=1/1 (seed 7)");
    }

    #[test]
    fn spec_string_round_trips_through_parse() {
        let plan = FaultPlan::parse("a=1/64*3, b=@200,c=1/1", 7).unwrap();
        assert_eq!(plan.seed(), 7);
        let reparsed = FaultPlan::parse(&plan.spec_string(), plan.seed()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn at_mode_fires_exactly_once_at_the_index() {
        let plan = FaultPlan::parse("p=@3", 0).unwrap();
        let inj = inject(&plan);
        let fires: Vec<bool> = (0..6).map(|_| point("p")).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert_eq!(inj.fired("p"), 1);
        assert_eq!(inj.hits("p"), 6);
    }

    #[test]
    fn rate_mode_is_deterministic_in_the_seed() {
        let plan = FaultPlan::parse("p=1/4", 42).unwrap();
        let first: Vec<bool> = {
            let _inj = inject(&plan);
            (0..256).map(|_| point("p")).collect()
        };
        let second: Vec<bool> = {
            let _inj = inject(&plan);
            (0..256).map(|_| point("p")).collect()
        };
        assert_eq!(first, second);
        let n = first.iter().filter(|f| **f).count();
        // 1/4 rate over 256 hits: expect ~64, accept a generous band.
        assert!((16..=144).contains(&n), "fired {n}/256");
    }

    #[test]
    fn different_seeds_fire_different_indices() {
        let a: Vec<bool> = {
            let _inj = inject(&FaultPlan::parse("p=1/8", 1).unwrap());
            (0..512).map(|_| point("p")).collect()
        };
        let b: Vec<bool> = {
            let _inj = inject(&FaultPlan::parse("p=1/8", 2).unwrap());
            (0..512).map(|_| point("p")).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn limit_caps_total_firings() {
        let plan = FaultPlan::parse("p=1/1*2", 0).unwrap();
        let inj = inject(&plan);
        let n = (0..10).filter(|_| point("p")).count();
        assert_eq!(n, 2);
        assert_eq!(inj.fired("p"), 2);
    }

    #[test]
    fn unknown_points_do_not_fire_and_injection_disarms_on_drop() {
        {
            let _inj = inject(&FaultPlan::parse("p=1/1", 0).unwrap());
            assert!(!point("other"));
            assert!(point("p"));
        }
        assert!(!point("p"));
    }

    #[test]
    fn firing_set_is_independent_of_interleaving() {
        // Hammer one point from 4 threads, collect the total fired count,
        // and compare with a serial replay of the same number of hits.
        let plan = FaultPlan::parse("p=1/16", 9).unwrap();
        let total_hits = 4 * 1000u64;
        let parallel_fired = {
            let inj = inject(&plan);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..1000 {
                            point("p");
                        }
                    });
                }
            });
            inj.fired("p")
        };
        let serial_fired = {
            let inj = inject(&plan);
            for _ in 0..total_hits {
                point("p");
            }
            inj.fired("p")
        };
        assert_eq!(parallel_fired, serial_fired);
    }
}
