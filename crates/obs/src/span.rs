//! Span recording: RAII guards writing timestamped events into per-thread
//! buffers.
//!
//! The hot path never takes a lock: events are pushed onto a plain
//! thread-local `Vec` and flushed in batches of [`FLUSH_BATCH`] into the
//! thread's shared [`ThreadLog`]. The thread-local's destructor flushes
//! whatever remains on thread exit, but that is a *backstop*, not a
//! synchronization point: `std::thread::scope` unblocks when a closure's
//! result lands, which can be before the thread's TLS destructors run.
//! Threads whose events must be visible to an exporter right after a join
//! call [`flush_thread`] before their closure returns (the SPMD runtime
//! does this for every worker).

use std::cell::RefCell;
use std::sync::{Arc, Mutex, PoisonError};

use crate::registry::global;

const FLUSH_BATCH: usize = 256;

/// One recorded activity (a completed span or an instantaneous event).
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Activity name (e.g. `"evaluate"`).
    pub name: &'static str,
    /// Category, used by trace viewers to color lanes (e.g. `"stage"`).
    pub cat: &'static str,
    /// Start, in nanoseconds since the registry epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (`0` for instantaneous events).
    pub dur_ns: u64,
    /// `'X'` for complete spans, `'i'` for instants.
    pub phase: char,
    /// Optional `key = debug-formatted value` arguments.
    pub args: Vec<(&'static str, String)>,
}

/// The shared sink one thread's events are flushed into; owned jointly by
/// the registry (for export) and the thread-local buffer (for writing).
pub struct ThreadLog {
    tid: u32,
    events: Mutex<Vec<SpanEvent>>,
}

impl ThreadLog {
    pub(crate) fn new(tid: u32) -> ThreadLog {
        ThreadLog {
            tid,
            events: Mutex::new(Vec::new()),
        }
    }

    /// The lane id events from this thread render under.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// A copy of the flushed events, sorted by start timestamp.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = self
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        out.sort_by_key(|e| e.ts_ns);
        out
    }

    fn append(&self, batch: &mut Vec<SpanEvent>) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(batch);
    }
}

struct LocalBuf {
    log: Arc<ThreadLog>,
    generation: u64,
    pending: Vec<SpanEvent>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if !self.pending.is_empty() {
            self.log.append(&mut self.pending);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

fn push_event(event: SpanEvent) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let generation = global().generation();
        let needs_init = match slot.as_ref() {
            Some(buf) => buf.generation != generation,
            None => true,
        };
        if needs_init {
            // First event on this thread (or first after a reset):
            // register a fresh lane. A stale buffer's pending events
            // belong to the pre-reset world and are dropped with it.
            *slot = Some(LocalBuf {
                log: global().register_thread_log(),
                generation,
                pending: Vec::with_capacity(FLUSH_BATCH),
            });
        }
        let buf = slot.as_mut().expect("initialized above");
        buf.pending.push(event);
        if buf.pending.len() >= FLUSH_BATCH {
            buf.flush();
        }
    });
}

/// Flushes the calling thread's pending events into its shared log so an
/// exporter on another thread (or later on this one) can see them.
pub fn flush_thread() {
    LOCAL.with(|slot| {
        if let Some(buf) = slot.borrow_mut().as_mut() {
            buf.flush();
        }
    });
}

/// An in-flight span; records a `'X'` event over its lifetime when dropped.
#[must_use = "a span measures the scope it lives in; bind it with `let _s = ...`"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, String)>,
    active: bool,
}

impl Span {
    /// A disabled span: recording nothing, costing nothing on drop.
    pub fn inert() -> Span {
        Span {
            name: "",
            cat: "",
            start_ns: 0,
            args: Vec::new(),
            active: false,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = global().now_ns();
        push_event(SpanEvent {
            name: self.name,
            cat: self.cat,
            ts_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            phase: 'X',
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Opens a span in the default `"stage"` category.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_cat(name, "stage")
}

/// Opens a span in an explicit category.
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> Span {
    if !global().is_enabled() {
        return Span::inert();
    }
    Span {
        name,
        cat,
        start_ns: global().now_ns(),
        args: Vec::new(),
        active: true,
    }
}

/// Opens a span carrying pre-rendered arguments (used by the `span!`
/// macro, which only evaluates the arguments when recording is enabled).
pub fn span_with_args(name: &'static str, args: Vec<(&'static str, String)>) -> Span {
    if !global().is_enabled() {
        return Span::inert();
    }
    Span {
        name,
        cat: "stage",
        start_ns: global().now_ns(),
        args,
        active: true,
    }
}

/// Records an instantaneous event.
#[inline]
pub fn instant(name: &'static str, cat: &'static str) {
    if !global().is_enabled() {
        return;
    }
    push_event(SpanEvent {
        name,
        cat,
        ts_ns: global().now_ns(),
        dur_ns: 0,
        phase: 'i',
        args: Vec::new(),
    });
}
