//! Sharded atomic counters: contention-free increments from worker teams.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const SHARDS: usize = 16;

/// One cache line per shard so concurrent increments from different
/// threads do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded to keep concurrent
/// increments off each other's cache lines. Reads sum the shards (racy but
/// monotone — exact once writers quiesce, which is when exports run).
pub struct ShardedCounter {
    shards: [PaddedU64; SHARDS],
}

/// Each thread picks a home shard round-robin on first use.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static HOME_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> ShardedCounter {
        ShardedCounter {
            shards: Default::default(),
        }
    }

    /// Adds `n` to the calling thread's home shard.
    #[inline]
    pub fn add(&self, n: u64) {
        let shard = HOME_SHARD.with(|s| *s);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The summed value across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets every shard to zero.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for ShardedCounter {
    fn default() -> ShardedCounter {
        ShardedCounter::new()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCounter")
            .field("value", &self.value())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_accumulate() {
        let c = ShardedCounter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.value(), 4);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let c = ShardedCounter::new();
        let c = &c;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), THREADS as u64 * PER_THREAD);
    }
}
