//! A minimal hand-rolled JSON writer (no external dependencies).
//!
//! Used by the trace/metrics exporters and by the bench harness for its
//! `results/*.json` files. Only *writing* is supported — nothing in the
//! workspace parses JSON.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (non-finite values are emitted as `null`).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree — the workspace's stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
impl_tojson_int!(u8, u16, u32, usize, i8, i16, i32, i64);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // u64 counters can exceed i64; fall back to a float for the tail.
        i64::try_from(*self).map_or(Json::Num(*self as f64), Json::Int)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shapes() {
        let v = Json::obj([
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c", Json::Str("x\"y\n".into())),
        ]);
        assert_eq!(v.to_compact(), r#"{"a":1,"b":[true,null],"c":"x\"y\n"}"#);
    }

    #[test]
    fn pretty_is_reparseable_shape() {
        let v = Json::obj([("k", Json::Arr(vec![Json::Int(1), Json::Int(2)]))]);
        let p = v.to_pretty();
        assert!(p.contains("\"k\": ["));
        assert!(p.ends_with('}'));
    }

    #[test]
    fn escapes_control_chars() {
        let s = Json::Str("\u{1}".into()).to_compact();
        assert_eq!(s, "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn u64_overflowing_i64_degrades_to_float() {
        let v = (u64::MAX).to_json();
        assert!(matches!(v, Json::Num(_)));
        assert_eq!(7u64.to_json(), Json::Int(7));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).to_compact(), "[]");
        assert_eq!(Json::Obj(vec![]).to_pretty(), "{}");
    }
}
