//! Exporters: Chrome trace-event JSON and JSONL metrics dumps.

use std::io;
use std::path::Path;

use crate::json::Json;
use crate::registry::global;

/// Renders every recorded span as a Chrome trace-event JSON document.
///
/// The result loads in `chrome://tracing` or <https://ui.perfetto.dev>:
/// one lane (`tid`) per worker thread, complete (`"X"`) events for spans
/// and instant (`"i"`) events for point occurrences. Timestamps are in
/// microseconds as the format requires; sub-microsecond precision is
/// carried in the fractional part.
///
/// The calling thread's pending buffer is flushed first; worker threads
/// must flush before their closure returns ([`crate::flush_thread`] — the
/// SPMD runtime does this for every worker, so engine spans are always
/// visible by the time the engine returns).
pub fn chrome_trace_to_string() -> String {
    crate::span::flush_thread();
    let mut events = Vec::new();
    for log in global().thread_logs() {
        let tid = log.tid();
        for e in log.events() {
            let mut fields = vec![
                ("name".to_string(), Json::Str(e.name.to_string())),
                ("cat".to_string(), Json::Str(e.cat.to_string())),
                ("ph".to_string(), Json::Str(e.phase.to_string())),
                ("pid".to_string(), Json::Int(1)),
                ("tid".to_string(), Json::Int(i64::from(tid))),
                ("ts".to_string(), Json::Num(e.ts_ns as f64 / 1_000.0)),
            ];
            if e.phase == 'X' {
                fields.push(("dur".to_string(), Json::Num(e.dur_ns as f64 / 1_000.0)));
            }
            if !e.args.is_empty() {
                fields.push((
                    "args".to_string(),
                    Json::Obj(
                        e.args
                            .iter()
                            .map(|(k, v)| ((*k).to_string(), Json::Str(v.clone())))
                            .collect(),
                    ),
                ));
            }
            events.push(Json::Obj(fields));
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".to_string())),
    ])
    .to_compact()
}

/// Writes [`chrome_trace_to_string`] to `path`.
pub fn export_chrome_trace(path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, chrome_trace_to_string())
}

/// Renders every registered counter and histogram as JSONL: one JSON
/// object per line, `{"type":"counter",...}` or `{"type":"histogram",...}`.
pub fn metrics_to_jsonl() -> String {
    let mut out = String::new();
    for (name, value) in global().counter_values() {
        out.push_str(
            &Json::obj([
                ("type", Json::Str("counter".to_string())),
                ("name", Json::Str(name.to_string())),
                ("value", value_json(value)),
            ])
            .to_compact(),
        );
        out.push('\n');
    }
    for (name, s) in global().histogram_snapshots() {
        out.push_str(
            &Json::obj([
                ("type", Json::Str("histogram".to_string())),
                ("name", Json::Str(name.to_string())),
                ("count", value_json(s.count)),
                ("sum", value_json(s.sum)),
                ("max", value_json(s.max)),
                ("mean", Json::Num(s.mean)),
                ("p50", value_json(s.p50)),
                ("p90", value_json(s.p90)),
                ("p99", value_json(s.p99)),
                (
                    "buckets",
                    Json::Arr(s.buckets.iter().map(|&b| value_json(b)).collect()),
                ),
            ])
            .to_compact(),
        );
        out.push('\n');
    }
    out
}

/// Writes [`metrics_to_jsonl`] to `path`.
pub fn export_metrics_jsonl(path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, metrics_to_jsonl())
}

fn value_json(v: u64) -> Json {
    i64::try_from(v).map_or(Json::Num(v as f64), Json::Int)
}
