//! Log2-bucketed histograms for latency / size distributions.
//!
//! Values land in bucket `floor(log2(v)) + 1` (bucket 0 holds zeros), so 65
//! atomic buckets cover the whole `u64` domain with ≤ 2× relative error on
//! any percentile — plenty for "did conflict-abort latency double?"
//! questions, at the cost of one `fetch_add` per record.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 65;

/// A concurrent histogram over `u64` values with power-of-two buckets.
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Upper bound (inclusive) of values mapping to `bucket`.
fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0 ≤ q ≤ 1`): the inclusive
    /// upper edge of the first bucket whose cumulative count reaches
    /// `q · count`. Exact to within the 2× bucket width; `0` when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Resets all buckets and aggregates to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A plain-value copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            mean: self.mean(),
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.value_at_quantile(0.5))
            .finish()
    }
}

/// A point-in-time copy of a [`LogHistogram`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// Raw per-bucket counts (65 log2 buckets).
    pub buckets: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LogHistogram::new();
        // 100 observations: 50× value 8, 40× value 100, 10× value 10_000.
        for _ in 0..50 {
            h.record(8);
        }
        for _ in 0..40 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 50 * 8 + 40 * 100 + 10 * 10_000);
        assert_eq!(h.max(), 10_000);
        // p50 falls in the bucket of 8 → upper bound 15.
        assert_eq!(h.value_at_quantile(0.50), 15);
        // p90 falls in the bucket of 100 → [64, 127].
        assert_eq!(h.value_at_quantile(0.90), 127);
        // p99 falls in the bucket of 10_000 → [8192, 16383], capped at max.
        assert_eq!(h.value_at_quantile(0.99), 10_000);
        assert_eq!(h.value_at_quantile(1.0), 10_000);
    }

    #[test]
    fn empty_and_reset() {
        let h = LogHistogram::new();
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(7);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn zeros_have_their_own_bucket() {
        let h = LogHistogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        h.record(1 << 30);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.value_at_quantile(1.0), 1 << 30);
    }

    #[test]
    fn snapshot_is_consistent() {
        let h = LogHistogram::new();
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }
}
