#![warn(missing_docs)]
//! `dacpara-obs`: a zero-dependency tracing and metrics layer for the
//! DACPara rewriting engines.
//!
//! The paper's central claim (Fig. 2, §5.2) is *quantitative* — split
//! operators waste less speculative work than fused ones — so every engine
//! in this workspace is instrumented through this crate:
//!
//! * **Spans** ([`span`], [`span!`]) — hierarchical activities recorded
//!   into per-thread buffers with nanosecond timestamps. The hot path is a
//!   single relaxed atomic load when observability is disabled; when
//!   enabled, recording is a thread-local vector push (flushed in batches).
//! * **Counters** ([`counter`]) — named, sharded atomic counters (16
//!   cache-padded shards) for high-frequency events such as cut-memo
//!   hits/misses.
//! * **Histograms** ([`histogram`]) — log2-bucketed distributions for
//!   conflict-abort latency, replacement gain, MFFC size, cut counts.
//! * **Exporters** — [`export_chrome_trace`] writes a Chrome trace-event
//!   JSON file (open in `chrome://tracing` or <https://ui.perfetto.dev>;
//!   one lane per worker thread showing enumeration / evaluation /
//!   replacement activity), and [`export_metrics_jsonl`] dumps every
//!   counter and histogram as one JSON object per line.
//!
//! Everything is `std`-only; the tiny JSON writer lives in [`json`] and is
//! reused by the bench harness for its `results/*.json` files.
//!
//! # Example
//!
//! ```
//! dacpara_obs::enable();
//! {
//!     let _s = dacpara_obs::span("evaluate");
//!     dacpara_obs::counter("demo.events").add(1);
//!     dacpara_obs::histogram("demo.latency_ns").record(1_250);
//! }
//! dacpara_obs::flush_thread();
//! assert!(dacpara_obs::counter("demo.events").value() >= 1);
//! dacpara_obs::disable();
//! ```

mod counter;
mod export;
mod histogram;
pub mod json;
mod registry;
mod span;

pub use counter::ShardedCounter;
pub use export::{
    chrome_trace_to_string, export_chrome_trace, export_metrics_jsonl, metrics_to_jsonl,
};
pub use histogram::{HistogramSnapshot, LogHistogram};
pub use registry::{counter, disable, enable, global, histogram, is_enabled, reset, ObsRegistry};
pub use span::{flush_thread, instant, span, span_cat, span_with_args, Span, SpanEvent};

/// Opens a span with optional `key = value` arguments.
///
/// With observability disabled this costs one relaxed atomic load; the
/// argument expressions are **not** evaluated.
///
/// ```
/// let node = 7;
/// let _s = dacpara_obs::span!("evaluate", node = node);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::is_enabled() {
            $crate::span_with_args(
                $name,
                vec![$((stringify!($key), format!("{:?}", $value))),+],
            )
        } else {
            $crate::Span::inert()
        }
    };
}
