//! The global observability registry: the enabled flag every hot path
//! checks, named counters/histograms, and the per-thread span logs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::counter::ShardedCounter;
use crate::histogram::LogHistogram;
use crate::span::ThreadLog;

/// Process-wide observability state. Obtain it via [`global`]; the free
/// functions ([`enable`], [`counter`], [`crate::span`], …) all route here.
pub struct ObsRegistry {
    enabled: AtomicBool,
    epoch: Instant,
    /// Bumped by [`reset`]; thread-local span buffers re-register when they
    /// notice a stale generation, so resets cannot leak events into
    /// orphaned logs.
    generation: AtomicU64,
    next_tid: AtomicU32,
    counters: Mutex<HashMap<&'static str, Arc<ShardedCounter>>>,
    histograms: Mutex<HashMap<&'static str, Arc<LogHistogram>>>,
    logs: Mutex<Vec<Arc<ThreadLog>>>,
}

impl ObsRegistry {
    fn new() -> ObsRegistry {
        ObsRegistry {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            generation: AtomicU64::new(0),
            next_tid: AtomicU32::new(0),
            counters: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
            logs: Mutex::new(Vec::new()),
        }
    }

    /// Whether recording is on (one relaxed load — the disabled fast path).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (already-registered data is kept for export).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Nanoseconds since the registry was created (the trace time base).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The current reset generation (see [`ObsRegistry::reset`]).
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The named counter, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<ShardedCounter> {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name).or_default())
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<LogHistogram> {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name).or_default())
    }

    /// All counters as `(name, value)` pairs, sorted by name.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        let map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<_> = map.iter().map(|(&n, c)| (n, c.value())).collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// All histograms as `(name, snapshot)` pairs, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(&'static str, crate::HistogramSnapshot)> {
        let map = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<_> = map.iter().map(|(&n, h)| (n, h.snapshot())).collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// Registers a fresh per-thread span log and returns it with its lane
    /// id.
    pub(crate) fn register_thread_log(&self) -> Arc<ThreadLog> {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let log = Arc::new(ThreadLog::new(tid));
        self.logs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&log));
        log
    }

    /// The registered per-thread logs (completed threads' buffers are
    /// flushed into these when the thread exits).
    pub(crate) fn thread_logs(&self) -> Vec<Arc<ThreadLog>> {
        self.logs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Clears every counter, histogram and span buffer, and bumps the
    /// generation so live threads re-register their local buffers. Intended
    /// for tests and for the start of an instrumented run.
    pub fn reset(&self) {
        for (_, c) in self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            c.reset();
        }
        for (_, h) in self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            h.reset();
        }
        self.logs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.generation.fetch_add(1, Ordering::Release);
    }
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRegistry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// The process-wide registry.
pub fn global() -> &'static ObsRegistry {
    static GLOBAL: OnceLock<ObsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(ObsRegistry::new)
}

/// Turns recording on, process-wide.
pub fn enable() {
    global().enable();
}

/// Turns recording off, process-wide.
pub fn disable() {
    global().disable();
}

/// Whether recording is on (the single-relaxed-load fast path).
#[inline]
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Clears all recorded data (counters, histograms, span buffers).
pub fn reset() {
    global().reset();
}

/// The named global counter, created on first use. Hot paths should hold
/// on to the returned `Arc` and gate increments on [`is_enabled`].
pub fn counter(name: &'static str) -> Arc<ShardedCounter> {
    global().counter(name)
}

/// The named global histogram, created on first use.
pub fn histogram(name: &'static str) -> Arc<LogHistogram> {
    global().histogram(name)
}
