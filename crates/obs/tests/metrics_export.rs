//! End-to-end test for the metrics pipeline: concurrent increments through
//! the global registry must sum exactly, and the JSONL exporter must emit
//! one well-formed line per metric.
//!
//! Lives in its own integration-test file (= its own process) because it
//! drives the process-global registry; keep it to a single `#[test]`.

mod support;

use support::json::{parse, Value};

const THREADS: u64 = 8;
const INCREMENTS: u64 = 10_000;

#[test]
fn concurrent_metrics_export_exactly() {
    dacpara_obs::reset();
    dacpara_obs::enable();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let hits = dacpara_obs::counter("cut.memo_hits");
                let latency = dacpara_obs::histogram("galois.commit_latency_ns");
                for i in 0..INCREMENTS {
                    hits.incr();
                    // Known distribution: values 1..=4 in equal proportion.
                    latency.record(1 + (t * INCREMENTS + i) % 4);
                }
            });
        }
    });
    dacpara_obs::counter("cut.memo_misses").add(7);
    dacpara_obs::disable();

    // Counter values survive `disable` (only recording is gated).
    let counters = dacpara_obs::global().counter_values();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
            .1
    };
    assert_eq!(get("cut.memo_hits"), THREADS * INCREMENTS);
    assert_eq!(get("cut.memo_misses"), 7);

    // The JSONL exporter reports the same totals, one valid line each.
    let jsonl = dacpara_obs::metrics_to_jsonl();
    let mut saw_hits = false;
    let mut saw_latency = false;
    for line in jsonl.lines() {
        let doc = parse(line).expect("every metrics line is valid JSON");
        let name = doc.get("name").and_then(Value::as_str).expect("name");
        let kind = doc.get("type").and_then(Value::as_str).expect("type");
        match name {
            "cut.memo_hits" => {
                saw_hits = true;
                assert_eq!(kind, "counter");
                assert_eq!(
                    doc.get("value").and_then(Value::as_i64),
                    Some((THREADS * INCREMENTS) as i64)
                );
            }
            "galois.commit_latency_ns" => {
                saw_latency = true;
                assert_eq!(kind, "histogram");
                let count = doc.get("count").and_then(Value::as_i64).unwrap();
                assert_eq!(count, (THREADS * INCREMENTS) as i64);
                let sum = doc.get("sum").and_then(Value::as_i64).unwrap();
                // Equal quarters of 1, 2, 3, 4 → mean 2.5.
                assert_eq!(sum, (THREADS * INCREMENTS) as i64 * 10 / 4);
                assert_eq!(doc.get("max").and_then(Value::as_i64), Some(4));
                // p50 is reported as the upper edge of the rank's log bucket,
                // capped at the observed max.
                let p50 = doc.get("p50").and_then(Value::as_i64).unwrap();
                assert!((1..=4).contains(&p50), "p50 within range, got {p50}");
                assert_eq!(doc.get("p99").and_then(Value::as_i64), Some(4));
            }
            _ => {}
        }
    }
    assert!(saw_hits && saw_latency, "both metrics exported:\n{jsonl}");
}
