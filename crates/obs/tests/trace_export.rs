//! Golden test for the Chrome trace exporter: the output must be valid
//! JSON with the trace-event shape, and timestamps must be monotone within
//! each thread lane.
//!
//! Lives in its own integration-test file (= its own process) because it
//! drives the process-global registry; keep it to a single `#[test]`.

mod support;

use support::json::{parse, Value};

#[test]
fn chrome_trace_is_valid_and_monotone_per_thread() {
    dacpara_obs::reset();
    dacpara_obs::enable();

    // Three worker threads each record the three stage spans in order,
    // plus an instant event. Each flushes before its closure returns:
    // `scope` unblocks on closure completion, before TLS destructors (the
    // backstop flush) are guaranteed to have run.
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                for name in ["enumerate", "evaluate", "replace"] {
                    let _span = dacpara_obs::span(name);
                    std::hint::black_box(17u64.pow(3));
                }
                dacpara_obs::instant("spec.commit", "spec");
                dacpara_obs::flush_thread();
            });
        }
    });
    // And the main thread records one span with arguments.
    {
        let _span = dacpara_obs::span!("bench_run", benchmark = "unit", n = 3);
    }
    dacpara_obs::disable();

    let text = dacpara_obs::chrome_trace_to_string();
    let doc = parse(&text).expect("exporter must emit valid JSON");

    let events = match doc.get("traceEvents") {
        Some(Value::Array(events)) => events,
        other => panic!("traceEvents array missing: {other:?}"),
    };
    // 3 threads × (3 spans + 1 instant) + 1 main-thread span.
    assert_eq!(events.len(), 3 * 4 + 1, "{text}");

    let mut last_end_by_tid: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
    let mut seen_args = false;
    for e in events {
        let name = e.get("name").and_then(Value::as_str).expect("name");
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph} on {name}");
        let tid = e.get("tid").and_then(Value::as_i64).expect("tid");
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        assert!(ts >= 0.0);
        if ph == "X" {
            let dur = e.get("dur").and_then(Value::as_f64).expect("dur on X");
            assert!(dur >= 0.0);
        } else {
            assert!(e.get("dur").is_none(), "instants carry no dur");
        }
        // Per-lane monotonicity: within one thread, spans are recorded in
        // completion order of nested scopes, so each event starts at or
        // after the previous event on the same lane started.
        let prev = last_end_by_tid.entry(tid).or_insert(0.0);
        assert!(
            ts >= *prev,
            "lane {tid} went backwards: {ts} after {prev} ({name})"
        );
        *prev = ts;
        if let Some(Value::Object(args)) = e.get("args") {
            seen_args = true;
            assert!(args.iter().any(|(k, _)| k == "benchmark"));
        }
    }
    assert!(seen_args, "the span! arguments must be exported");

    // Every stage name appears on every one of the three worker lanes.
    for stage in ["enumerate", "evaluate", "replace"] {
        let lanes: std::collections::HashSet<i64> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some(stage))
            .map(|e| e.get("tid").and_then(Value::as_i64).unwrap())
            .collect();
        assert_eq!(lanes.len(), 3, "{stage} must appear on all worker lanes");
    }
}
