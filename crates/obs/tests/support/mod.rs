//! Shared helpers for the obs integration tests.

pub mod json;
