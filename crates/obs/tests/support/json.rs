//! A strict little JSON parser, used only by tests to validate exporter
//! output (the obs crate itself only ever writes JSON).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|x| x as i64)
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }
}
