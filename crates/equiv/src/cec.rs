//! Miter construction and combinational equivalence checking.

use dacpara_aig::{Aig, AigRead, Lit};

use crate::cnf::{assert_lit, model_inputs, CnfMap};
use crate::sim::{random_sim_check, simulate_bools, SimOutcome};
use crate::{SatResult, Solver};

/// Builds the miter of two same-interface graphs: shared fresh inputs, one
/// output that is the OR of the pairwise XORs of the outputs. The miter
/// output is satisfiable iff the graphs differ.
///
/// Structural hashing inside the builder already discharges many pairs.
///
/// # Panics
///
/// Panics if the interfaces differ.
pub fn miter<A, B>(a: &A, b: &B) -> Aig
where
    A: AigRead + ?Sized,
    B: AigRead + ?Sized,
{
    let a_in = a.input_ids();
    let b_in = b.input_ids();
    assert_eq!(a_in.len(), b_in.len(), "input counts differ");
    let a_out = a.output_lits();
    let b_out = b.output_lits();
    assert_eq!(a_out.len(), b_out.len(), "output counts differ");

    let mut m = Aig::with_capacity(a.num_ands() + b.num_ands() + 4 * a_out.len());
    let shared: Vec<Lit> = (0..a_in.len()).map(|_| m.add_input()).collect();

    fn copy_into<V: AigRead + ?Sized>(view: &V, shared: &[Lit], m: &mut Aig) -> Vec<Lit> {
        let mut map = vec![Lit::FALSE; view.slot_count()];
        for (k, &i) in view.input_ids().iter().enumerate() {
            map[i.index()] = shared[k];
        }
        for n in dacpara_aig::topo_ands(view) {
            let [fa, fb] = view.fanins(n);
            let la = map[fa.node().index()].xor(fa.is_complement());
            let lb = map[fb.node().index()].xor(fb.is_complement());
            map[n.index()] = m.add_and(la, lb);
        }
        view.output_lits()
            .iter()
            .map(|po| map[po.node().index()].xor(po.is_complement()))
            .collect()
    }

    let oa = copy_into(a, &shared, &mut m);
    let ob = copy_into(b, &shared, &mut m);

    let mut diff = Lit::FALSE;
    for (la, lb) in oa.into_iter().zip(ob) {
        let x = m.add_xor(la, lb);
        diff = m.add_or(diff, x);
    }
    m.add_output(diff);
    m
}

/// Verdict of a combinational equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CecResult {
    /// Proven equivalent (SAT proof).
    Equivalent,
    /// Proven different, with a differing input assignment.
    Inequivalent(Vec<bool>),
    /// The SAT budget ran out before a proof; random simulation found no
    /// difference.
    Undecided,
}

/// Configuration of [`check_equivalence`].
#[derive(Copy, Clone, Debug)]
pub struct CecConfig {
    /// Rounds of 64-pattern random simulation run before SAT.
    pub sim_rounds: usize,
    /// Conflict budget for the SAT proof (`0` = skip SAT entirely).
    pub max_conflicts: u64,
    /// Seed for the simulation patterns.
    pub seed: u64,
}

impl Default for CecConfig {
    fn default() -> Self {
        CecConfig {
            sim_rounds: 16,
            max_conflicts: 2_000_000,
            seed: 0xDAC_2024,
        }
    }
}

/// Checks combinational equivalence: random simulation first (cheap
/// refutation), then a SAT proof on the miter.
///
/// # Example
///
/// ```
/// use dacpara_aig::Aig;
/// use dacpara_equiv::{check_equivalence, CecConfig, CecResult};
///
/// let mut a = Aig::new();
/// let x = a.add_input();
/// let y = a.add_input();
/// let nand = a.add_and(x, y);
/// a.add_output(!nand);
///
/// let mut b = Aig::new();
/// let x2 = b.add_input();
/// let y2 = b.add_input();
/// let demorgan = b.add_or(!x2, !y2);
/// b.add_output(demorgan);
///
/// assert_eq!(
///     check_equivalence(&a, &b, &CecConfig::default()),
///     CecResult::Equivalent
/// );
/// ```
pub fn check_equivalence<A, B>(a: &A, b: &B, cfg: &CecConfig) -> CecResult
where
    A: AigRead + ?Sized,
    B: AigRead + ?Sized,
{
    if let SimOutcome::Counterexample(cex) = random_sim_check(a, b, cfg.sim_rounds, cfg.seed) {
        return CecResult::Inequivalent(cex);
    }
    let m = miter(a, b);
    let out = m.outputs()[0];
    if out == Lit::FALSE {
        // Strashing collapsed every output pair.
        return CecResult::Equivalent;
    }
    if out == Lit::TRUE {
        // The miter is constantly one — find any input assignment.
        return CecResult::Inequivalent(vec![false; m.num_inputs()]);
    }
    if cfg.max_conflicts == 0 {
        return CecResult::Undecided;
    }
    let mut solver = Solver::new();
    let map = CnfMap::encode(&m, &mut solver);
    assert_lit(&mut solver, &map, out);
    match solver.solve_limited(cfg.max_conflicts) {
        Some(SatResult::Unsat) => CecResult::Equivalent,
        Some(SatResult::Sat) => {
            let cex = model_inputs(&m, &map, &solver);
            debug_assert!(simulate_bools(&m, &cex)[0], "model must hit the miter");
            CecResult::Inequivalent(cex)
        }
        None => CecResult::Undecided,
    }
}

/// Size-aware budget for [`check_equivalence_budgeted`].
///
/// Differential test suites and the fuzzing oracle share one policy: small
/// miters get a full SAT proof, large ones fall back to random simulation
/// (returning [`CecResult::Undecided`] instead of burning an unbounded
/// conflict budget). This struct makes that policy a single tunable value
/// instead of a constant copied across suites.
#[derive(Copy, Clone, Debug)]
pub struct CecBudget {
    /// SAT is attempted only when `a.num_ands() + b.num_ands()` is below
    /// this; larger pairs are checked by simulation alone.
    pub sat_node_limit: usize,
    /// Conflict budget handed to the SAT solver when it runs.
    pub max_conflicts: u64,
    /// Rounds of 64-pattern random simulation (always run).
    pub sim_rounds: usize,
    /// Seed for the simulation patterns.
    pub seed: u64,
}

impl Default for CecBudget {
    fn default() -> Self {
        CecBudget {
            sat_node_limit: 4_000,
            max_conflicts: 2_000_000,
            sim_rounds: 16,
            seed: 0xDAC_2024,
        }
    }
}

impl CecBudget {
    /// A budget tuned for high-volume fuzzing: fewer conflicts, more
    /// simulation rounds (refutation is the common case worth being fast at).
    pub fn fuzzing() -> Self {
        CecBudget {
            sat_node_limit: 4_000,
            max_conflicts: 200_000,
            sim_rounds: 32,
            seed: 0xDAC_2024,
        }
    }
}

/// Budgeted equivalence check: the classic flow of [`check_equivalence`],
/// but the SAT stage is skipped entirely for pairs whose combined AND count
/// exceeds [`CecBudget::sat_node_limit`] (random simulation still runs, so
/// inequivalence can always be refuted; only the *proof* of equivalence is
/// given up, yielding [`CecResult::Undecided`]).
pub fn check_equivalence_budgeted<A, B>(a: &A, b: &B, budget: &CecBudget) -> CecResult
where
    A: AigRead + ?Sized,
    B: AigRead + ?Sized,
{
    let sat_ok = a.num_ands() + b.num_ands() < budget.sat_node_limit;
    let cfg = CecConfig {
        sim_rounds: budget.sim_rounds,
        max_conflicts: if sat_ok { budget.max_conflicts } else { 0 },
        seed: budget.seed,
    };
    check_equivalence(a, b, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_pair() -> (Aig, Aig) {
        // 3-bit ripple adders built two different ways.
        let build = |use_maj: bool| {
            let mut aig = Aig::new();
            let xs: Vec<Lit> = (0..3).map(|_| aig.add_input()).collect();
            let ys: Vec<Lit> = (0..3).map(|_| aig.add_input()).collect();
            let mut carry = Lit::FALSE;
            for k in 0..3 {
                let s1 = aig.add_xor(xs[k], ys[k]);
                let sum = aig.add_xor(s1, carry);
                let c = if use_maj {
                    aig.add_maj(xs[k], ys[k], carry)
                } else {
                    let xy = aig.add_and(xs[k], ys[k]);
                    let sc = aig.add_and(s1, carry);
                    aig.add_or(xy, sc)
                };
                aig.add_output(sum);
                carry = c;
            }
            aig.add_output(carry);
            aig
        };
        (build(true), build(false))
    }

    #[test]
    fn structurally_different_adders_are_equivalent() {
        let (a, b) = adder_pair();
        assert_ne!(a.num_ands(), b.num_ands());
        assert_eq!(
            check_equivalence(&a, &b, &CecConfig::default()),
            CecResult::Equivalent
        );
    }

    #[test]
    fn broken_adder_is_caught() {
        let (a, b) = adder_pair();
        // Sabotage: complement one output of b.
        let po = b.outputs()[1];
        let outs: Vec<Lit> = b.outputs().to_vec();
        let mut c = Aig::new();
        let ins: Vec<Lit> = (0..b.num_inputs()).map(|_| c.add_input()).collect();
        // Rebuild b with the sabotage via miter-style copy.
        let mut map = vec![Lit::FALSE; b.slot_count()];
        for (k, &i) in b.inputs().iter().enumerate() {
            map[i.index()] = ins[k];
        }
        for n in dacpara_aig::topo_ands(&b) {
            let [fa, fb] = b.fanins(n);
            let la = map[fa.node().index()].xor(fa.is_complement());
            let lb = map[fb.node().index()].xor(fb.is_complement());
            map[n.index()] = c.add_and(la, lb);
        }
        for (k, o) in outs.iter().enumerate() {
            let l = map[o.node().index()].xor(o.is_complement());
            c.add_output(if k == 1 { !l } else { l });
        }
        let _ = po;
        match check_equivalence(&a, &c, &CecConfig::default()) {
            CecResult::Inequivalent(cex) => {
                let oa = crate::simulate_bools(&a, &cex);
                let oc = crate::simulate_bools(&c, &cex);
                assert_ne!(oa, oc);
            }
            other => panic!("expected inequivalence, got {other:?}"),
        }
    }

    #[test]
    fn miter_of_identical_graphs_is_const_false() {
        let (a, _) = adder_pair();
        let m = miter(&a, &a);
        assert_eq!(m.outputs()[0], Lit::FALSE);
    }

    #[test]
    fn budgeted_proves_small_pairs_and_defers_large_ones() {
        let (a, b) = adder_pair();
        assert_eq!(
            check_equivalence_budgeted(&a, &b, &CecBudget::default()),
            CecResult::Equivalent
        );
        // Same pair under a zero node limit: only simulation runs.
        let tiny = CecBudget {
            sat_node_limit: 0,
            ..CecBudget::default()
        };
        assert_eq!(
            check_equivalence_budgeted(&a, &b, &tiny),
            CecResult::Undecided
        );
    }

    #[test]
    fn budgeted_still_refutes_above_the_node_limit() {
        let (a, b) = adder_pair();
        // Sabotage by flipping an output of a copy of b.
        let mut flipped = Aig::new();
        let ins: Vec<Lit> = (0..b.num_inputs()).map(|_| flipped.add_input()).collect();
        let mut map = vec![Lit::FALSE; b.slot_count()];
        for (k, &i) in b.inputs().iter().enumerate() {
            map[i.index()] = ins[k];
        }
        for n in dacpara_aig::topo_ands(&b) {
            let [fa, fb] = b.fanins(n);
            let la = map[fa.node().index()].xor(fa.is_complement());
            let lb = map[fb.node().index()].xor(fb.is_complement());
            map[n.index()] = flipped.add_and(la, lb);
        }
        for (k, o) in b.outputs().iter().enumerate() {
            let l = map[o.node().index()].xor(o.is_complement());
            flipped.add_output(if k == 0 { !l } else { l });
        }
        let tiny = CecBudget {
            sat_node_limit: 0,
            ..CecBudget::default()
        };
        assert!(matches!(
            check_equivalence_budgeted(&a, &flipped, &tiny),
            CecResult::Inequivalent(_)
        ));
    }

    #[test]
    fn undecided_when_sat_disabled_and_sim_passes() {
        let (a, b) = adder_pair();
        let cfg = CecConfig {
            sim_rounds: 2,
            max_conflicts: 0,
            seed: 3,
        };
        assert_eq!(check_equivalence(&a, &b, &cfg), CecResult::Undecided);
    }
}
