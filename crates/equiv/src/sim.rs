//! 64-way bit-parallel simulation of AIGs.

use dacpara_aig::{AigRead, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulates the graph on one 64-pattern word per input; returns one word
/// per output (bit `i` of word `k` = output `k` under pattern `i`).
///
/// # Panics
///
/// Panics if `input_words.len()` differs from the number of inputs.
///
/// # Example
///
/// ```
/// use dacpara_aig::Aig;
/// use dacpara_equiv::simulate_words;
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let ab = aig.add_and(a, b);
/// aig.add_output(ab);
/// let out = simulate_words(&aig, &[0b1100, 0b1010]);
/// assert_eq!(out[0], 0b1000);
/// ```
pub fn simulate_words<V: AigRead + ?Sized>(view: &V, input_words: &[u64]) -> Vec<u64> {
    let inputs = view.input_ids();
    assert_eq!(
        input_words.len(),
        inputs.len(),
        "one simulation word per input required"
    );
    let mut values = vec![0u64; view.slot_count()];
    for (w, &i) in input_words.iter().zip(&inputs) {
        values[i.index()] = *w;
    }
    let lit_val = |l: Lit, values: &[u64]| -> u64 {
        let v = values[l.node().index()];
        if l.is_complement() {
            !v
        } else {
            v
        }
    };
    for n in dacpara_aig::topo_ands(view) {
        let [a, b] = view.fanins(n);
        values[n.index()] = lit_val(a, &values) & lit_val(b, &values);
    }
    view.output_lits()
        .iter()
        .map(|&po| lit_val(po, &values))
        .collect()
}

/// Simulates a single input assignment; returns one bool per output.
pub fn simulate_bools<V: AigRead + ?Sized>(view: &V, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
    simulate_words(view, &words)
        .into_iter()
        .map(|w| w & 1 != 0)
        .collect()
}

/// Outcome of a random-simulation equivalence probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimOutcome {
    /// No differing pattern found (not a proof of equivalence).
    NoDifferenceFound,
    /// A concrete input assignment on which some output differs.
    Counterexample(Vec<bool>),
}

/// Probes two same-interface graphs with `rounds` words of random patterns
/// (64 patterns per round). A counterexample is definitive; the absence of
/// one is not.
///
/// # Panics
///
/// Panics if the graphs differ in input or output counts.
pub fn random_sim_check<A, B>(a: &A, b: &B, rounds: usize, seed: u64) -> SimOutcome
where
    A: AigRead + ?Sized,
    B: AigRead + ?Sized,
{
    let n_in = a.input_ids().len();
    assert_eq!(n_in, b.input_ids().len(), "input counts differ");
    assert_eq!(
        a.output_lits().len(),
        b.output_lits().len(),
        "output counts differ"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..rounds {
        let words: Vec<u64> = if round == 0 {
            // First round: include all-zeros / all-ones corner patterns.
            (0..n_in)
                .map(|i| {
                    if i % 2 == 0 {
                        0x00000000FFFFFFFF
                    } else {
                        0x0F0F0F0F0F0F0F0F
                    }
                })
                .collect()
        } else {
            (0..n_in).map(|_| rng.gen()).collect()
        };
        let oa = simulate_words(a, &words);
        let ob = simulate_words(b, &words);
        for (k, (wa, wb)) in oa.iter().zip(&ob).enumerate() {
            let diff = wa ^ wb;
            if diff != 0 {
                let bit = diff.trailing_zeros();
                let cex: Vec<bool> = words.iter().map(|w| w >> bit & 1 != 0).collect();
                debug_assert_ne!(simulate_bools(a, &cex)[k], simulate_bools(b, &cex)[k]);
                return SimOutcome::Counterexample(cex);
            }
        }
    }
    SimOutcome::NoDifferenceFound
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_aig::Aig;

    #[test]
    fn xor_simulates_correctly() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.add_xor(a, b);
        aig.add_output(x);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = simulate_bools(&aig, &[va, vb]);
            assert_eq!(out[0], va ^ vb);
        }
    }

    #[test]
    fn equivalent_graphs_pass_random_sim() {
        let mut a = Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let and1 = a.add_and(x, y);
        a.add_output(!and1); // NAND

        let mut b = Aig::new();
        let x2 = b.add_input();
        let y2 = b.add_input();
        let or2 = b.add_or(!x2, !y2); // De Morgan NAND
        b.add_output(or2);

        assert_eq!(
            random_sim_check(&a, &b, 8, 42),
            SimOutcome::NoDifferenceFound
        );
    }

    #[test]
    fn inequivalent_graphs_yield_counterexample() {
        let mut a = Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let and1 = a.add_and(x, y);
        a.add_output(and1);

        let mut b = Aig::new();
        let x2 = b.add_input();
        let y2 = b.add_input();
        let or2 = b.add_or(x2, y2);
        b.add_output(or2);

        match random_sim_check(&a, &b, 8, 1) {
            SimOutcome::Counterexample(cex) => {
                let oa = simulate_bools(&a, &cex);
                let ob = simulate_bools(&b, &cex);
                assert_ne!(oa, ob);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn constant_outputs() {
        let mut aig = Aig::new();
        let _ = aig.add_input();
        aig.add_output(dacpara_aig::Lit::TRUE);
        aig.add_output(dacpara_aig::Lit::FALSE);
        let out = simulate_words(&aig, &[0xDEAD]);
        assert_eq!(out, vec![!0u64, 0u64]);
    }
}
