//! A compact CDCL SAT solver (MiniSat-style).
//!
//! Features: two-watched-literal propagation, first-UIP conflict analysis,
//! VSIDS-style activity ordering, phase saving, and Luby restarts. Learned
//! clauses are kept (no deletion) — appropriate for the moderate-size
//! combinational-equivalence queries this workspace issues.

/// A solver literal: `2 * var + negated`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CLit(u32);

impl CLit {
    /// Builds a literal over variable `var`.
    pub fn new(var: u32, negated: bool) -> CLit {
        CLit(var << 1 | negated as u32)
    }

    /// The variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 != 0
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for CLit {
    type Output = CLit;
    fn not(self) -> CLit {
        CLit(self.0 ^ 1)
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Copy, Clone, Debug)]
struct Watch {
    clause: u32,
    blocker: CLit,
}

/// Indexed binary max-heap over variable activities (MiniSat's order
/// heap): O(log n) decisions instead of an O(n) scan per decision.
#[derive(Debug, Default)]
struct OrderHeap {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or -1 when absent.
    pos: Vec<i32>,
}

impl OrderHeap {
    fn ensure(&mut self, v: u32) {
        if self.pos.len() <= v as usize {
            self.pos.resize(v as usize + 1, -1);
        }
    }

    fn in_heap(&self, v: u32) -> bool {
        (v as usize) < self.pos.len() && self.pos[v as usize] >= 0
    }

    fn insert(&mut self, v: u32, act: &[f64]) {
        self.ensure(v);
        if self.in_heap(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn bump(&mut self, v: u32, act: &[f64]) {
        if self.in_heap(v) {
            let i = self.pos[v as usize] as usize;
            self.sift_up(i, act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as i32;
        self.pos[self.heap[j] as usize] = j as i32;
    }
}

/// Result of a (budgeted) solver run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A model was found ([`Solver::value`] reads it back).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
}

/// The CDCL solver.
///
/// # Example
///
/// ```
/// use dacpara_equiv::{CLit, SatResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[CLit::new(a, false), CLit::new(b, false)]);
/// s.add_clause(&[CLit::new(a, true)]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Vec<CLit>>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<CLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: OrderHeap,
    phase: Vec<bool>,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    ok: bool,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Introduces a fresh variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Conflicts encountered so far.
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Decisions made so far.
    pub fn num_decisions(&self) -> u64 {
        self.decisions
    }

    fn lit_value(&self, l: CLit) -> LBool {
        match self.assign[l.var() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Adds a clause; returns `false` if the formula became trivially
    /// unsatisfiable. Must be called before [`Solver::solve`] (no
    /// incremental re-solving after Unsat).
    ///
    /// # Panics
    ///
    /// Panics if called after the solver has started making decisions.
    pub fn add_clause(&mut self, lits: &[CLit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at decision level 0"
        );
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedupe, drop false literals, detect tautology.
        let mut c: Vec<CLit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut out: Vec<CLit> = Vec::with_capacity(c.len());
        for &l in &c {
            if out.last() == Some(&!l) || self.lit_value(l) == LBool::True {
                return true; // tautology or already satisfied
            }
            if self.lit_value(l) != LBool::False {
                out.push(l);
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[(!out[0]).index()].push(Watch {
                    clause: idx,
                    blocker: out[1],
                });
                self.watches[(!out[1]).index()].push(Watch {
                    clause: idx,
                    blocker: out[0],
                });
                self.clauses.push(out);
                true
            }
        }
    }

    fn enqueue(&mut self, l: CLit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var() as usize;
        self.assign[v] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.phase[v] = !l.is_neg();
        self.trail.push(l);
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = !p;
            // Clauses watching `!p` were registered under index `p`.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                // Make sure the false literal is at position 1.
                let cid = w.clause as usize;
                if self.clauses[cid][0] == false_lit {
                    self.clauses[cid].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cid][1], false_lit);
                let first = self.clauses[cid][0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[cid].len() {
                    let l = self.clauses[cid][k];
                    if self.lit_value(l) != LBool::False {
                        self.clauses[cid].swap(1, k);
                        self.watches[(!l).index()].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore remaining watches and report.
                    self.watches[p.index()].extend_from_slice(&ws);
                    self.qhead = self.trail.len();
                    return Some(w.clause);
                }
                self.enqueue(first, Some(w.clause));
                i += 1;
            }
            self.watches[p.index()].extend_from_slice(&ws);
        }
        None
    }

    fn bump(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            // Rescaling preserves relative order; the heap stays valid.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bump(v, &self.activity);
    }

    /// First-UIP conflict analysis; returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<CLit>, u32) {
        let mut learnt: Vec<CLit> = vec![CLit::new(0, false)]; // slot 0 patched below
        let mut seen = vec![false; self.num_vars()];
        let current = self.trail_lim.len() as u32;
        let mut counter = 0u32;
        let mut cid = confl as usize;
        let mut p: Option<CLit> = None;
        let mut index = self.trail.len();

        loop {
            // Iterate the reason clause, skipping the implied literal itself.
            let skip = p;
            let lits: Vec<CLit> = self.clauses[cid].clone();
            for q in lits {
                if Some(q) == skip {
                    continue;
                }
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on.
            loop {
                index -= 1;
                if seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            seen[lit.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            cid = self.reason[lit.var() as usize].expect("implied literal has a reason") as usize;
        }

        // Conflict-clause minimization (basic self-subsumption): a literal
        // is redundant if every other literal of its reason clause is
        // already in the learnt clause (or forced at level 0).
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                if i == 0 {
                    return true;
                }
                match self.reason[q.var() as usize] {
                    None => true,
                    Some(cid) => !self.clauses[cid as usize].iter().all(|&r| {
                        r.var() == q.var()
                            || seen[r.var() as usize]
                            || self.level[r.var() as usize] == 0
                    }),
                }
            })
            .collect();
        let mut idx = 0;
        learnt.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });

        let back_level = learnt[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a max-level literal to slot 1 so it is watched.
        if learnt.len() > 1 {
            let max_pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var() as usize] == back_level)
                .expect("some literal attains the max")
                + 1;
            learnt.swap(1, max_pos);
        }
        (learnt, back_level)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail entry");
                let v = l.var() as usize;
                self.assign[v] = LBool::Undef;
                self.reason[v] = None;
                self.order.insert(l.var(), &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<CLit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v as usize] == LBool::Undef {
                return Some(CLit::new(v, !self.phase[v as usize]));
            }
        }
        None
    }

    /// Solves with a conflict budget; `None` means the budget was exhausted.
    pub fn solve_limited(&mut self, max_conflicts: u64) -> Option<SatResult> {
        if !self.ok {
            return Some(SatResult::Unsat);
        }
        let start_conflicts = self.conflicts;
        let mut restart_unit = 64u64;
        let mut next_restart = self.conflicts + luby(restart_unit, 0);
        let mut restart_idx = 0u32;

        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return Some(SatResult::Unsat);
                }
                let (learnt, back) = self.analyze(confl);
                self.backtrack(back);
                let assert_lit = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(assert_lit, None);
                } else {
                    let idx = self.clauses.len() as u32;
                    self.watches[(!learnt[0]).index()].push(Watch {
                        clause: idx,
                        blocker: learnt[1],
                    });
                    self.watches[(!learnt[1]).index()].push(Watch {
                        clause: idx,
                        blocker: learnt[0],
                    });
                    self.clauses.push(learnt);
                    self.enqueue(assert_lit, Some(idx));
                }
                self.var_inc /= 0.95;
                if self.conflicts - start_conflicts >= max_conflicts {
                    self.backtrack(0);
                    return None;
                }
                if self.conflicts >= next_restart {
                    restart_idx += 1;
                    next_restart = self.conflicts + luby(restart_unit, restart_idx);
                    restart_unit = restart_unit.max(64);
                    self.backtrack(0);
                }
            } else {
                match self.decide() {
                    None => return Some(SatResult::Sat),
                    Some(l) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Solves without a budget.
    pub fn solve(&mut self) -> SatResult {
        self.solve_limited(u64::MAX).expect("unbounded solve")
    }

    /// The model value of a variable after [`SatResult::Sat`] (or the
    /// level-0 forced value otherwise); `None` when unassigned.
    pub fn value(&self, var: u32) -> Option<bool> {
        match self.assign[var as usize] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...) scaled by `unit`.
fn luby(unit: u64, i: u32) -> u64 {
    let mut x = i as u64;
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    unit * (1u64 << seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, neg: bool) -> CLit {
        CLit::new(v, neg)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[lit(a, false)]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));

        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, false)]);
        assert!(!s.add_clause(&[lit(a, true)]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[lit(a, false), lit(a, true)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole: p0 and p1 both in hole, but not together.
        let mut s = Solver::new();
        let p0 = s.new_var();
        let p1 = s.new_var();
        s.add_clause(&[lit(p0, false)]);
        s.add_clause(&[lit(p1, false)]);
        s.add_clause(&[lit(p0, true), lit(p1, true)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    /// Encodes PHP(pigeons, holes): every pigeon gets a hole, no sharing.
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let var: Vec<Vec<u32>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &var {
            let clause: Vec<CLit> = row.iter().map(|&v| lit(v, false)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for (p1, row1) in var.iter().enumerate() {
                for row2 in &var[p1 + 1..] {
                    s.add_clause(&[lit(row1[h], true), lit(row2[h], true)]);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // Classic PHP(4,3): forces real conflict analysis and backjumping.
        let mut s = Solver::new();
        pigeonhole(&mut s, 4, 3);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn models_satisfy_all_clauses() {
        // Random 3-SAT at a satisfiable density; verify returned models.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = 12u32;
            let mut s = Solver::new();
            for _ in 0..n {
                s.new_var();
            }
            let mut clauses: Vec<Vec<CLit>> = Vec::new();
            for _ in 0..30 {
                let c: Vec<CLit> = (0..3)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen()))
                    .collect();
                clauses.push(c.clone());
                if !s.add_clause(&c) {
                    break;
                }
            }
            if s.solve_limited(100_000) == Some(SatResult::Sat) {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| {
                            let v = s.value(l.var()).unwrap_or(false);
                            v != l.is_neg()
                        }),
                        "model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn statistics_accumulate() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 4, 3);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.num_conflicts() > 0);
        assert!(s.num_decisions() > 0);
        assert!(s.num_clauses() > 4 + 3, "learned clauses were kept");
    }

    #[test]
    fn solving_twice_after_sat_is_stable() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, false), lit(b, false)]);
        assert_eq!(s.solve(), SatResult::Sat);
        let first = (s.value(a), s.value(b));
        // Solving again from a satisfied state must stay SAT.
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(first.0.is_some() || first.1.is_some());
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // PHP(6,5) with a conflict budget of 1 cannot finish.
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve_limited(1), None);
    }
}
