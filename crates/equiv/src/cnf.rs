//! Tseitin encoding of an AIG into CNF.

use dacpara_aig::{AigRead, Lit, NodeId};

use crate::{CLit, Solver};

/// Maps AIG nodes to solver variables while loading the Tseitin clauses of
/// the whole graph into a [`Solver`].
#[derive(Debug)]
pub struct CnfMap {
    var_of: Vec<u32>,
}

impl CnfMap {
    /// Encodes every live node of `view` into `solver`.
    ///
    /// Each node gets one variable; every AND contributes the three clauses
    /// `(!n | a)`, `(!n | b)`, `(n | !a | !b)`; the constant node is forced
    /// false.
    pub fn encode<V: AigRead + ?Sized>(view: &V, solver: &mut Solver) -> CnfMap {
        let mut var_of = vec![u32::MAX; view.slot_count()];
        let var_for = |n: NodeId, solver: &mut Solver, var_of: &mut Vec<u32>| -> u32 {
            if var_of[n.index()] == u32::MAX {
                var_of[n.index()] = solver.new_var();
            }
            var_of[n.index()]
        };
        // Constant node.
        let c0 = var_for(NodeId::CONST0, solver, &mut var_of);
        solver.add_clause(&[CLit::new(c0, true)]);
        for i in view.input_ids() {
            var_for(i, solver, &mut var_of);
        }
        for n in dacpara_aig::topo_ands(view) {
            let [a, b] = view.fanins(n);
            let va = var_for(a.node(), solver, &mut var_of);
            let vb = var_for(b.node(), solver, &mut var_of);
            let vn = var_for(n, solver, &mut var_of);
            let la = CLit::new(va, a.is_complement());
            let lb = CLit::new(vb, b.is_complement());
            let ln = CLit::new(vn, false);
            solver.add_clause(&[!ln, la]);
            solver.add_clause(&[!ln, lb]);
            solver.add_clause(&[ln, !la, !lb]);
        }
        CnfMap { var_of }
    }

    /// The solver literal equivalent to an AIG edge literal.
    ///
    /// # Panics
    ///
    /// Panics if the node was not encoded.
    pub fn lit(&self, l: Lit) -> CLit {
        let v = self.var_of[l.node().index()];
        assert_ne!(v, u32::MAX, "node {:?} was not encoded", l.node());
        CLit::new(v, l.is_complement())
    }

    /// The solver variable of a node, if encoded.
    pub fn var(&self, n: NodeId) -> Option<u32> {
        let v = self.var_of[n.index()];
        (v != u32::MAX).then_some(v)
    }
}

/// Asserts that `view`'s single combinational property `lit` holds, i.e.
/// adds the unit clause for it.
pub fn assert_lit(solver: &mut Solver, map: &CnfMap, l: Lit) {
    solver.add_clause(&[map.lit(l)]);
}

/// Extracts the input assignment from a satisfying model.
pub fn model_inputs<V: AigRead + ?Sized>(view: &V, map: &CnfMap, solver: &Solver) -> Vec<bool> {
    view.input_ids()
        .iter()
        .map(|&i| map.var(i).and_then(|v| solver.value(v)).unwrap_or(false))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_bools, SatResult};
    use dacpara_aig::Aig;

    #[test]
    fn sat_models_match_simulation() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = aig.add_mux(a, b, c);
        let g = aig.add_xor(f, c);
        aig.add_output(g);

        let mut solver = Solver::new();
        let map = CnfMap::encode(&aig, &mut solver);
        assert_lit(&mut solver, &map, g);
        assert_eq!(solver.solve(), SatResult::Sat);
        let inputs = model_inputs(&aig, &map, &solver);
        assert!(
            simulate_bools(&aig, &inputs)[0],
            "model must satisfy output"
        );
    }

    #[test]
    fn unsatisfiable_output() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let contradiction = aig.add_and(a, !a); // folds to const false
        aig.add_output(contradiction);
        let mut solver = Solver::new();
        let map = CnfMap::encode(&aig, &mut solver);
        assert_lit(&mut solver, &map, aig.outputs()[0]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn exhaustive_agreement_on_small_circuit() {
        // For every input assignment: SAT with inputs pinned must agree with
        // simulation of the output.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.add_maj(a, b, c);
        aig.add_output(m);
        for pattern in 0..8u32 {
            let inputs = [
                pattern & 1 != 0,
                pattern >> 1 & 1 != 0,
                pattern >> 2 & 1 != 0,
            ];
            let expect = simulate_bools(&aig, &inputs)[0];
            let mut solver = Solver::new();
            let map = CnfMap::encode(&aig, &mut solver);
            for (k, &i) in aig.inputs().iter().enumerate() {
                solver.add_clause(&[CLit::new(map.var(i).unwrap(), !inputs[k])]);
            }
            assert_lit(&mut solver, &map, m);
            let want = if expect {
                SatResult::Sat
            } else {
                SatResult::Unsat
            };
            assert_eq!(solver.solve(), want, "pattern {pattern:03b}");
        }
    }
}
