#![warn(missing_docs)]
//! Combinational equivalence checking for AIGs.
//!
//! Every rewriting engine in this workspace must preserve functional
//! equivalence; the paper reports that "the rewritten circuits all passed
//! the equivalence check". This crate provides the full stack needed to
//! replicate that check without external tools:
//!
//! * [`simulate_words`] / [`random_sim_check`] — 64-way bit-parallel random
//!   simulation (fast refutation),
//! * [`Solver`] — a CDCL SAT solver (two-watched literals, first-UIP
//!   learning, VSIDS activities, phase saving, Luby restarts),
//! * [`CnfMap`] — Tseitin encoding of an AIG,
//! * [`miter`] / [`check_equivalence`] — the classic CEC flow: simulate,
//!   then prove the miter unsatisfiable.
//!
//! # Example
//!
//! ```
//! use dacpara_aig::Aig;
//! use dacpara_equiv::{check_equivalence, CecConfig, CecResult};
//!
//! let mut a = Aig::new();
//! let x = a.add_input();
//! let y = a.add_input();
//! let v = a.add_xor(x, y);
//! a.add_output(v);
//!
//! let mut b = Aig::new();
//! let x2 = b.add_input();
//! let y2 = b.add_input();
//! let w = b.add_xor(y2, x2);
//! b.add_output(w);
//!
//! assert_eq!(check_equivalence(&a, &b, &CecConfig::default()), CecResult::Equivalent);
//! ```

mod cec;
mod cnf;
mod sim;
mod solver;

pub use cec::{
    check_equivalence, check_equivalence_budgeted, miter, CecBudget, CecConfig, CecResult,
};
pub use cnf::{assert_lit, model_inputs, CnfMap};
pub use sim::{random_sim_check, simulate_bools, simulate_words, SimOutcome};
pub use solver::{CLit, SatResult, Solver};
