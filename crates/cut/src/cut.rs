//! The 4-feasible cut datatype.

use dacpara_aig::NodeId;
use dacpara_npn::Tt4;

/// Maximum number of leaves of a cut (4-input rewriting).
pub const MAX_LEAVES: usize = 4;

/// A cut of an AIG node: up to four leaf nodes such that every path from the
/// primary inputs to the root passes through a leaf, together with the truth
/// table of the root expressed over the leaves (in sorted leaf order).
///
/// # Example
///
/// ```
/// use dacpara_aig::NodeId;
/// use dacpara_cut::Cut;
/// use dacpara_npn::Tt4;
///
/// let cut = Cut::trivial(NodeId::new(7));
/// assert_eq!(cut.leaves(), [NodeId::new(7)]);
/// assert_eq!(cut.tt(), Tt4::var(0));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cut {
    len: u8,
    leaves: [NodeId; MAX_LEAVES],
    sign: u64,
    tt: Tt4,
}

fn signature(leaves: &[NodeId]) -> u64 {
    leaves.iter().fold(0u64, |s, l| s | 1 << (l.raw() % 64))
}

impl Cut {
    /// The trivial cut `{n}` whose function is the projection on `n`.
    pub fn trivial(n: NodeId) -> Cut {
        Cut {
            len: 1,
            leaves: [n, NodeId::CONST0, NodeId::CONST0, NodeId::CONST0],
            sign: signature(&[n]),
            tt: Tt4::var(0),
        }
    }

    /// The empty cut of the constant node (function false, no leaves).
    pub fn constant() -> Cut {
        Cut {
            len: 0,
            leaves: [NodeId::CONST0; MAX_LEAVES],
            sign: 0,
            tt: Tt4::FALSE,
        }
    }

    /// Builds a cut from sorted, distinct leaves and a truth table over them.
    ///
    /// # Panics
    ///
    /// Panics if there are more than four leaves or they are not strictly
    /// ascending.
    pub fn new(leaves: &[NodeId], tt: Tt4) -> Cut {
        assert!(leaves.len() <= MAX_LEAVES, "at most four leaves");
        assert!(
            leaves.windows(2).all(|w| w[0] < w[1]),
            "leaves must be strictly ascending"
        );
        let mut arr = [NodeId::CONST0; MAX_LEAVES];
        arr[..leaves.len()].copy_from_slice(leaves);
        Cut {
            len: leaves.len() as u8,
            leaves: arr,
            sign: signature(leaves),
            tt,
        }
    }

    /// The leaves, sorted ascending.
    #[inline]
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether this is the empty (constant) cut.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this is a trivial single-leaf cut.
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.len == 1
    }

    /// Truth table of the root over the leaves (leaf `i` is variable `i`).
    #[inline]
    pub fn tt(&self) -> Tt4 {
        self.tt
    }

    /// The 64-bit membership signature used to prescreen dominance tests.
    #[inline]
    pub fn sign(&self) -> u64 {
        self.sign
    }

    /// Whether every leaf of `self` is a leaf of `other`.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.len > other.len || self.sign & !other.sign != 0 {
            return false;
        }
        self.leaves().iter().all(|l| other.leaves().contains(l))
    }

    /// Whether the two cuts have the same leaf set.
    pub fn same_leaves(&self, other: &Cut) -> bool {
        self.len == other.len && self.leaves() == other.leaves()
    }

    /// Merges the leaf sets of two cuts; `None` if the union exceeds four.
    pub fn merge_leaves(&self, other: &Cut) -> Option<([NodeId; MAX_LEAVES], usize)> {
        let mut out = [NodeId::CONST0; MAX_LEAVES];
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        let a = self.leaves();
        let b = other.leaves();
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            if k == MAX_LEAVES {
                return None;
            }
            out[k] = next;
            k += 1;
        }
        Some((out, k))
    }

    /// Re-expresses this cut's truth table over a superset leaf ordering.
    ///
    /// `merged` must contain every leaf of `self` in ascending order.
    pub fn expand_tt(&self, merged: &[NodeId]) -> Tt4 {
        // Map each of our leaf positions to its position in `merged`.
        let mut pos = [0usize; MAX_LEAVES];
        for (i, l) in self.leaves().iter().enumerate() {
            pos[i] = merged
                .iter()
                .position(|m| m == l)
                .expect("merged leaves must be a superset");
        }
        let mut g = 0u16;
        for m in 0..16u16 {
            let mut child = 0u16;
            for (i, &p) in pos.iter().take(self.len as usize).enumerate() {
                child |= (m >> p & 1) << i;
            }
            if self.tt.raw() >> child & 1 != 0 {
                g |= 1 << m;
            }
        }
        Tt4::from_raw(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn dominance() {
        let small = Cut::new(&[n(1), n(2)], Tt4::var(0));
        let big = Cut::new(&[n(1), n(2), n(3)], Tt4::var(0));
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small));
        let other = Cut::new(&[n(1), n(4)], Tt4::var(0));
        assert!(!other.dominates(&big));
    }

    #[test]
    fn merge_respects_limit() {
        let a = Cut::new(&[n(1), n(2), n(3)], Tt4::var(0));
        let b = Cut::new(&[n(3), n(4)], Tt4::var(0));
        let (leaves, k) = a.merge_leaves(&b).unwrap();
        assert_eq!(&leaves[..k], &[n(1), n(2), n(3), n(4)]);
        let c = Cut::new(&[n(5), n(6)], Tt4::var(0));
        assert!(a.merge_leaves(&c).is_none());
    }

    #[test]
    fn expand_tt_repositions_variables() {
        // Cut over {5, 9} computing leaf0 & leaf1; expand over {2, 5, 9}.
        let cut = Cut::new(&[n(5), n(9)], Tt4::var(0) & Tt4::var(1));
        let expanded = cut.expand_tt(&[n(2), n(5), n(9)]);
        assert_eq!(expanded, Tt4::var(1) & Tt4::var(2));
    }

    #[test]
    fn constant_cut_is_empty_and_false() {
        let c = Cut::constant();
        assert!(c.is_empty());
        assert_eq!(c.tt(), Tt4::FALSE);
        assert_eq!(c.expand_tt(&[n(3)]), Tt4::FALSE);
    }
}
