#![warn(missing_docs)]
//! 4-feasible cut enumeration for AIGs.
//!
//! A *cut* of node `n` is a set of nodes (*leaves*) such that every path
//! from the primary inputs to `n` passes through a leaf; the *cut function*
//! is `n`'s logic expressed over the leaves. DAG-aware rewriting enumerates
//! the 4-input cuts of every node and evaluates replacement candidates per
//! cut.
//!
//! The enumeration is the classic bottom-up merge: `cuts(n)` is the trivial
//! cut `{n}` plus every feasible union of a fanin-`a` cut with a fanin-`b`
//! cut, filtered for dominance. Truth tables are carried along so no
//! separate simulation pass is needed.
//!
//! [`CutStore`] adds the concurrent memoization and the recursive
//! transitive-fanout invalidation that DACPara's replacement stage relies
//! on.
//!
//! # Example
//!
//! ```
//! use dacpara_aig::Aig;
//! use dacpara_cut::{CutConfig, CutStore};
//! use dacpara_npn::Tt4;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let c = aig.add_input();
//! let ab = aig.add_and(a, b);
//! let abc = aig.add_and(ab, c);
//! aig.add_output(abc);
//!
//! let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
//! let cuts = store.cuts(&aig, abc.node());
//! // {ab, c} and {a, b, c} are both cuts of `abc`.
//! assert!(cuts.iter().any(|cut| cut.len() == 3
//!     && cut.tt() == (Tt4::var(0) & Tt4::var(1) & Tt4::var(2))));
//! ```

mod cut;
mod enumerate;
mod store;

pub use cut::{Cut, MAX_LEAVES};
pub use enumerate::{and_cuts, leaf_cuts, CutConfig};
pub use store::CutStore;

/// A node's set of cuts; index 0 is always the trivial cut for AND nodes.
pub type CutSet = Vec<Cut>;
