//! Bottom-up k-feasible cut enumeration.

use dacpara_aig::{AigRead, NodeId, NodeKind};

use crate::{Cut, CutSet};

/// Parameters of cut enumeration.
#[derive(Copy, Clone, Debug)]
pub struct CutConfig {
    /// Maximum number of cuts kept per node (`0` = unlimited). The paper's
    /// P1 configuration keeps 8 cuts per node, P2 keeps all of them.
    pub max_cuts: usize,
}

impl CutConfig {
    /// Unlimited cuts per node (the paper's P2 / ICCAD'18 configuration).
    pub fn unlimited() -> CutConfig {
        CutConfig { max_cuts: 0 }
    }

    /// Keep at most `n` cuts per node (the paper's P1 keeps 8).
    pub fn limited(n: usize) -> CutConfig {
        CutConfig { max_cuts: n }
    }
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig::unlimited()
    }
}

/// Computes the cut set of a leaf-like node (input or constant).
pub fn leaf_cuts<V: AigRead + ?Sized>(view: &V, n: NodeId) -> CutSet {
    match view.kind(n) {
        NodeKind::Const0 => vec![Cut::constant()],
        NodeKind::Input => vec![Cut::trivial(n)],
        k => unreachable!("leaf_cuts on {k:?} node"),
    }
}

/// Enumerates the cuts of AND node `n` by merging the cut sets of its two
/// fanins, filtering dominated cuts, and prepending the trivial cut.
///
/// The truth tables track fanin complementation, so every returned cut's
/// table is the function of `n` over the cut leaves.
pub fn and_cuts<V: AigRead + ?Sized>(
    view: &V,
    n: NodeId,
    cuts_a: &[Cut],
    cuts_b: &[Cut],
    cfg: &CutConfig,
) -> CutSet {
    // A node observed as `And` may concurrently become `Free` on the
    // concurrent view (a racing replacement deleted it after the caller's
    // kind check); the cuts built from its stale fanins are rejected by
    // commit-time revalidation, so only genuinely wrong callers (inputs,
    // constants) are a bug.
    debug_assert!(
        matches!(view.kind(n), NodeKind::And | NodeKind::Free),
        "and_cuts on a {:?} node",
        view.kind(n)
    );
    let [fa, fb] = view.fanins(n);
    let mut out: CutSet = Vec::with_capacity(cuts_a.len() * cuts_b.len() / 2 + 1);
    out.push(Cut::trivial(n));
    for ca in cuts_a {
        for cb in cuts_b {
            let Some((leaves, k)) = ca.merge_leaves(cb) else {
                continue;
            };
            let merged = &leaves[..k];
            let ta = ca.expand_tt(merged);
            let tb = cb.expand_tt(merged);
            let ta = if fa.is_complement() { !ta } else { ta };
            let tb = if fb.is_complement() { !tb } else { tb };
            let cut = Cut::new(merged, ta & tb);
            push_filtered(&mut out, cut);
        }
    }
    // Sort by leaf count (smaller cuts first — they are cheaper to match and
    // dominate larger ones), then truncate to the configured budget.
    out[1..].sort_by_key(|c| (c.len(), c.leaves().first().map(|l| l.raw()).unwrap_or(0)));
    if cfg.max_cuts > 0 && out.len() > cfg.max_cuts {
        out.truncate(cfg.max_cuts.max(1));
    }
    out
}

/// Inserts `cut` unless dominated; removes cuts it dominates.
fn push_filtered(out: &mut CutSet, cut: Cut) {
    // Slot 0 is the trivial cut, which never participates in dominance.
    let mut i = 1;
    while i < out.len() {
        if out[i].dominates(&cut) {
            return;
        }
        if cut.dominates(&out[i]) {
            out.swap_remove(i);
        } else {
            i += 1;
        }
    }
    out.push(cut);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_aig::Aig;
    use dacpara_npn::Tt4;

    /// Recompute the function of `root` over up-to-4 inputs by exhaustive
    /// evaluation, for cross-checking cut truth tables.
    fn node_tt_over_inputs(aig: &Aig, root: NodeId) -> Tt4 {
        let inputs = aig.inputs();
        assert!(inputs.len() <= 4);
        let mut values = vec![Tt4::FALSE; aig.slot_count()];
        for (k, &i) in inputs.iter().enumerate() {
            values[i.index()] = Tt4::var(k);
        }
        for n in dacpara_aig::topo_ands(aig) {
            let [a, b] = aig.fanins(n);
            let va = if a.is_complement() {
                !values[a.node().index()]
            } else {
                values[a.node().index()]
            };
            let vb = if b.is_complement() {
                !values[b.node().index()]
            } else {
                values[b.node().index()]
            };
            values[n.index()] = va & vb;
        }
        values[root.index()]
    }

    #[test]
    fn cut_tts_match_simulation() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let d = aig.add_input();
        let x = aig.add_xor(a, b);
        let m = aig.add_mux(c, x, d);
        aig.add_output(m);
        let cfg = CutConfig::unlimited();

        // Enumerate bottom-up over all ANDs.
        let mut sets: Vec<Option<CutSet>> = vec![None; aig.slot_count()];
        sets[0] = Some(leaf_cuts(&aig, NodeId::CONST0));
        for &i in aig.inputs() {
            sets[i.index()] = Some(leaf_cuts(&aig, i));
        }
        for n in dacpara_aig::topo_ands(&aig) {
            let [fa, fb] = aig.fanins(n);
            let ca = sets[fa.node().index()].clone().unwrap();
            let cb = sets[fb.node().index()].clone().unwrap();
            sets[n.index()] = Some(and_cuts(&aig, n, &ca, &cb, &cfg));
        }

        // For the output node, any cut whose leaves are all PIs must match
        // the simulated function modulo leaf-to-input renaming.
        let root = m.node();
        let pi_pos = |l: NodeId| aig.inputs().iter().position(|&i| i == l);
        for cut in sets[root.index()].as_ref().unwrap() {
            let Some(positions): Option<Vec<usize>> =
                cut.leaves().iter().map(|&l| pi_pos(l)).collect()
            else {
                continue; // internal leaves: checked via composition elsewhere
            };
            let mut expect = node_tt_over_inputs(&aig, root);
            // Rename: cut variable i corresponds to input positions[i].
            // Build the cut function over inputs and compare.
            let mut got = 0u16;
            for minterm in 0..16u16 {
                let mut leafm = 0u16;
                for (i, &p) in positions.iter().enumerate() {
                    leafm |= (minterm >> p & 1) << i;
                }
                if cut.tt().raw() >> leafm & 1 != 0 {
                    got |= 1 << minterm;
                }
            }
            // The cut function may not depend on inputs outside the cut cone;
            // mask both to the support of the expectation.
            expect = Tt4::from_raw(expect.raw());
            assert_eq!(Tt4::from_raw(got), expect, "cut {:?}", cut.leaves());
        }
    }

    #[test]
    fn trivial_cut_always_present() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        let cfg = CutConfig::unlimited();
        let ca = leaf_cuts(&aig, a.node());
        let cb = leaf_cuts(&aig, b.node());
        let cuts = and_cuts(&aig, ab.node(), &ca, &cb, &cfg);
        assert!(cuts[0].is_trivial());
        assert_eq!(cuts[0].leaves()[0], ab.node());
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[1].leaves(), [a.node(), b.node()]);
        assert_eq!(cuts[1].tt(), Tt4::var(0) & Tt4::var(1));
    }

    #[test]
    fn and_cuts_tolerates_a_concurrently_freed_node() {
        // A speculative worker can observe a node as `And`, lose the race to
        // a neighbor whose commit deletes it, and still reach `and_cuts` on
        // the now-free slot; the stale cut set it builds is rejected by
        // commit-time revalidation, so the call must not assert.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let _ab = aig.add_and(a, b);
        let shared = dacpara_aig::concurrent::ConcurrentAig::from_aig(&aig, 1.5).unwrap();
        let and_node = (0..shared.capacity())
            .map(|i| NodeId::new(i as u32))
            .find(|&n| shared.kind(n) == NodeKind::And)
            .expect("the AND survived the renumbering");
        let [fa, fb] = shared.fanins(and_node);
        let cfg = CutConfig::unlimited();
        let ca = leaf_cuts(&shared, fa.node());
        let cb = leaf_cuts(&shared, fb.node());
        shared.delete_cone(and_node);
        assert_eq!(shared.kind(and_node), NodeKind::Free);
        let cuts = and_cuts(&shared, and_node, &ca, &cb, &cfg);
        assert!(cuts[0].is_trivial(), "even a raced set keeps its shape");
    }

    #[test]
    fn complemented_fanins_flip_tables() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let nor = aig.add_and(!a, !b);
        aig.add_output(nor);
        let cfg = CutConfig::unlimited();
        let ca = leaf_cuts(&aig, a.node());
        let cb = leaf_cuts(&aig, b.node());
        let cuts = and_cuts(&aig, nor.node(), &ca, &cb, &cfg);
        let full = cuts.iter().find(|c| c.len() == 2).unwrap();
        assert_eq!(full.tt(), !Tt4::var(0) & !Tt4::var(1));
    }

    #[test]
    fn limit_one_keeps_only_the_trivial_cut() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.add_and(a, b);
        aig.add_output(ab);
        let cfg = CutConfig::limited(1);
        let ca = leaf_cuts(&aig, a.node());
        let cb = leaf_cuts(&aig, b.node());
        let cuts = and_cuts(&aig, ab.node(), &ca, &cb, &cfg);
        assert_eq!(cuts.len(), 1);
        assert!(cuts[0].is_trivial());
    }

    #[test]
    fn dominated_cuts_are_dropped() {
        // Diamond: n = AND(x, y) with x = AND(a, b), y = AND(a, !b)
        // {x, y} dominates {x, a, !b-side leaves} etc.; specifically the
        // enumeration must never return two cuts where one's leaf set is a
        // subset of the other's.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let x = aig.add_and(a, b);
        let y = aig.add_and(a, c);
        let n = aig.add_and(x, y);
        aig.add_output(n);
        let cfg = CutConfig::unlimited();
        let store = crate::CutStore::new(aig.slot_count(), cfg);
        let cuts = store.cuts(&aig, n.node());
        for (i, ci) in cuts.iter().enumerate() {
            for (j, cj) in cuts.iter().enumerate() {
                if i != j && !ci.is_trivial() && !cj.is_trivial() {
                    assert!(
                        !ci.dominates(cj),
                        "{:?} dominates {:?}",
                        ci.leaves(),
                        cj.leaves()
                    );
                }
            }
        }
        // The reconvergent cut {a, b, c} must be found.
        assert!(cuts
            .iter()
            .any(|cut| cut.leaves() == [a.node(), b.node(), c.node()]));
    }

    #[test]
    fn max_cuts_budget_is_respected() {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = aig.add_and(acc, i);
        }
        aig.add_output(acc);
        let cfg = CutConfig::limited(3);
        let mut sets: Vec<Option<CutSet>> = vec![None; aig.slot_count()];
        sets[0] = Some(leaf_cuts(&aig, NodeId::CONST0));
        for &i in aig.inputs() {
            sets[i.index()] = Some(leaf_cuts(&aig, i));
        }
        for n in dacpara_aig::topo_ands(&aig) {
            let [fa, fb] = aig.fanins(n);
            let ca = sets[fa.node().index()].clone().unwrap();
            let cb = sets[fb.node().index()].clone().unwrap();
            let cuts = and_cuts(&aig, n, &ca, &cb, &cfg);
            assert!(cuts.len() <= 3);
            sets[n.index()] = Some(cuts);
        }
    }
}
