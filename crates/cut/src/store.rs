//! Concurrent memo store for per-node cut sets.
//!
//! The paper's cut-enumeration operator computes cuts recursively from the
//! fanins and caches them per node; replacements invalidate the stored
//! results of the deleted nodes' transitive fanouts (§4.4: "the previous
//! enumeration results (if not empty) of all transitive fanouts for each
//! deleted node will be recursively cleared").
//!
//! Entries are tagged with the node's *generation* at computation time, so
//! a recycled or re-fanined slot can never serve a stale cut set even if an
//! explicit invalidation was missed — the second line of defense behind the
//! stored-cut validity protocol of §4.4.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use dacpara_aig::{AigRead, NodeId, NodeKind};
use dacpara_obs::{LogHistogram, ShardedCounter};
use parking_lot::RwLock;

use crate::{and_cuts, leaf_cuts, CutConfig, CutSet};

/// Cached handles to the global memo-probe instruments (taking the registry
/// lock on every probe would defeat the sharded counters).
struct ObsHandles {
    memo_hits: Arc<ShardedCounter>,
    memo_misses: Arc<ShardedCounter>,
    cuts_per_node: Arc<LogHistogram>,
}

fn obs() -> &'static ObsHandles {
    static HANDLES: OnceLock<ObsHandles> = OnceLock::new();
    HANDLES.get_or_init(|| ObsHandles {
        memo_hits: dacpara_obs::counter("cut.memo_hits"),
        memo_misses: dacpara_obs::counter("cut.memo_misses"),
        cuts_per_node: dacpara_obs::histogram("cut.cuts_per_node"),
    })
}

type Slot = RwLock<Option<(u32, Arc<CutSet>)>>;

/// A slot-indexed, generation-validated cache of cut sets, safe for
/// concurrent use.
///
/// # Example
///
/// ```
/// use dacpara_aig::Aig;
/// use dacpara_cut::{CutConfig, CutStore};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let ab = aig.add_and(a, b);
/// aig.add_output(ab);
/// let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
/// let cuts = store.cuts(&aig, ab.node());
/// assert_eq!(cuts.len(), 2); // trivial + {a, b}
/// ```
pub struct CutStore {
    slots: Vec<Slot>,
    cfg: CutConfig,
    /// Per-slot dirty flags, maintained only while [`CutStore::set_dirty_tracking`]
    /// is on. A dirty node is one whose stored cuts *or* whose evaluation
    /// inputs (reference counts, shareable structures nearby) may have
    /// changed since the flags were last drained — the seed of the
    /// incremental worklists in `dacpara-core`'s `RewriteSession`.
    dirty: Vec<AtomicBool>,
    track_dirty: AtomicBool,
}

impl CutStore {
    /// Creates a store covering `capacity` node slots.
    pub fn new(capacity: usize, cfg: CutConfig) -> CutStore {
        CutStore {
            slots: (0..capacity).map(|_| RwLock::new(None)).collect(),
            cfg,
            dirty: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            track_dirty: AtomicBool::new(false),
        }
    }

    /// The enumeration configuration this store was built with.
    pub fn config(&self) -> &CutConfig {
        &self.cfg
    }

    /// Extends the store to cover at least `capacity` slots (serial-owner
    /// operation — the concurrent engines size the store up front).
    pub fn grow(&mut self, capacity: usize) {
        while self.slots.len() < capacity {
            self.slots.push(RwLock::new(None));
            self.dirty.push(AtomicBool::new(false));
        }
    }

    /// Number of covered slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The cached cut set of `n`, if present and still matching `n`'s
    /// current generation.
    pub fn get<V: AigRead + ?Sized>(&self, view: &V, n: NodeId) -> Option<Arc<CutSet>> {
        let guard = self.slots[n.index()].read();
        let found = match &*guard {
            Some((gen, cuts)) if *gen == view.generation(n) => Some(Arc::clone(cuts)),
            _ => None,
        };
        if dacpara_obs::is_enabled() {
            if found.is_some() {
                obs().memo_hits.incr();
            } else {
                obs().memo_misses.incr();
            }
        }
        found
    }

    /// Stores a cut set for `n` at its current generation.
    pub fn put<V: AigRead + ?Sized>(&self, view: &V, n: NodeId, cuts: Arc<CutSet>) {
        *self.slots[n.index()].write() = Some((view.generation(n), cuts));
    }

    /// Returns the cut set of `n`, computing it (and any missing ancestor
    /// sets) bottom-up on demand.
    ///
    /// # Panics
    ///
    /// Panics if `n` or anything in its fanin cone is a dead slot — use
    /// [`CutStore::try_cuts`] when the graph may be mutating concurrently.
    pub fn cuts<V: AigRead + ?Sized>(&self, view: &V, n: NodeId) -> Arc<CutSet> {
        self.try_cuts(view, n)
            .expect("cut enumeration hit a dead slot")
    }

    /// Like [`CutStore::cuts`], but returns `None` (instead of panicking)
    /// when a dead node is encountered — which can happen when planning
    /// against a concurrently mutating graph; callers retry after
    /// revalidation.
    pub fn try_cuts<V: AigRead + ?Sized>(&self, view: &V, n: NodeId) -> Option<Arc<CutSet>> {
        if let Some(hit) = self.get(view, n) {
            return Some(hit);
        }
        let mut stack = vec![n];
        while let Some(&top) = stack.last() {
            if self.get(view, top).is_some() {
                stack.pop();
                continue;
            }
            match view.kind(top) {
                NodeKind::Const0 | NodeKind::Input => {
                    self.put(view, top, Arc::new(leaf_cuts(view, top)));
                    stack.pop();
                }
                NodeKind::And => {
                    let [fa, fb] = view.fanins(top);
                    if !view.is_alive(fa.node()) || !view.is_alive(fb.node()) {
                        return None; // racing against a concurrent mutation
                    }
                    let ca = self.get(view, fa.node());
                    let cb = self.get(view, fb.node());
                    match (ca, cb) {
                        (Some(ca), Some(cb)) => {
                            let cuts = and_cuts(view, top, &ca, &cb, &self.cfg);
                            if dacpara_obs::is_enabled() {
                                obs().cuts_per_node.record(cuts.len() as u64);
                            }
                            self.put(view, top, Arc::new(cuts));
                            stack.pop();
                        }
                        (ca, cb) => {
                            if ca.is_none() {
                                stack.push(fa.node());
                            }
                            if cb.is_none() {
                                stack.push(fb.node());
                            }
                        }
                    }
                }
                NodeKind::Free => return None,
            }
        }
        self.get(view, n)
    }

    /// Clears the cached set of `n`; returns whether one was present.
    ///
    /// Under dirty tracking the node is also marked dirty (§4.4: an
    /// invalidated enumeration result must be recomputed — and, across
    /// passes, the node must be revisited).
    pub fn invalidate(&self, n: NodeId) -> bool {
        self.mark_dirty(n);
        self.slots[n.index()].write().take().is_some()
    }

    /// Clears the cached sets of `n` and of its transitive fanouts,
    /// short-circuiting on nodes whose entry is already empty (a cleared
    /// node's fanouts were cleared by whoever cleared it).
    pub fn invalidate_tfo<V: AigRead + ?Sized>(&self, view: &V, n: NodeId) {
        let mut stack = vec![(n, true)];
        while let Some((x, force)) = stack.pop() {
            let had = self.invalidate(x);
            if had || force {
                for f in view.fanout_ids(x) {
                    stack.push((f, false));
                }
            }
        }
    }

    /// Number of node slots currently holding a cached set (regardless of
    /// generation freshness).
    pub fn cached_count(&self) -> usize {
        self.slots.iter().filter(|s| s.read().is_some()).count()
    }

    /// Clears the entire cache.
    pub fn clear(&self) {
        for s in &self.slots {
            *s.write() = None;
        }
    }

    /// Resets the store for a fresh graph while preserving its slot
    /// allocation: every cached set and every dirty flag is dropped, the
    /// tracking switch is left untouched. Used by `RewriteSession` when it
    /// re-syncs to an externally mutated graph (the memo keys — node ids —
    /// are renumbered, so nothing cached can be trusted).
    pub fn reset(&self) {
        self.clear();
        for d in &self.dirty {
            d.store(false, Ordering::Relaxed);
        }
    }

    // ---- Dirty tracking -------------------------------------------------

    /// Turns dirty tracking on or off. Off (the default) makes every
    /// marking call a no-op, so the one-shot engines pay nothing.
    pub fn set_dirty_tracking(&self, on: bool) {
        self.track_dirty.store(on, Ordering::Relaxed);
    }

    /// Whether dirty tracking is currently enabled.
    pub fn dirty_tracking(&self) -> bool {
        self.track_dirty.load(Ordering::Relaxed)
    }

    /// Marks `n` dirty without touching its cached set (used for nodes
    /// whose *gain* inputs — reference counts, sharing opportunities —
    /// changed while their cut structure did not).
    pub fn mark_dirty(&self, n: NodeId) {
        if self.track_dirty.load(Ordering::Relaxed) {
            self.dirty[n.index()].store(true, Ordering::Relaxed);
        }
    }

    /// Marks `n` and its transitive fanouts dirty without clearing cached
    /// sets, short-circuiting on nodes already marked (their fanout cone
    /// was walked when they were marked, or is covered by a concurrent
    /// walk). Cached cuts stay valid — only the evaluation verdict is
    /// suspect — which is what keeps incremental passes memo-hot.
    pub fn mark_dirty_tfo<V: AigRead + ?Sized>(&self, view: &V, n: NodeId) {
        if !self.track_dirty.load(Ordering::Relaxed) {
            return;
        }
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            if self.dirty[x.index()].swap(true, Ordering::Relaxed) {
                continue; // already marked: its fanouts were covered
            }
            for f in view.fanout_ids(x) {
                stack.push(f);
            }
        }
    }

    /// Whether `n` is currently marked dirty.
    pub fn is_dirty(&self, n: NodeId) -> bool {
        self.dirty[n.index()].load(Ordering::Relaxed)
    }

    /// Number of slots currently marked dirty.
    pub fn dirty_count(&self) -> usize {
        self.dirty
            .iter()
            .filter(|d| d.load(Ordering::Relaxed))
            .count()
    }

    /// Returns every dirty slot (ascending ids) and clears the flags —
    /// the hand-over point between one rewriting pass and the next.
    pub fn drain_dirty(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (i, d) in self.dirty.iter().enumerate() {
            if d.swap(false, Ordering::Relaxed) {
                out.push(NodeId::new(i as u32));
            }
        }
        out
    }
}

impl std::fmt::Debug for CutStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CutStore")
            .field("capacity", &self.slots.len())
            .field("cached", &self.cached_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_aig::{Aig, Lit};

    fn chain() -> (Aig, Vec<Lit>) {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..5).map(|_| aig.add_input()).collect();
        let mut lits = Vec::new();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = aig.add_and(acc, i);
            lits.push(acc);
        }
        aig.add_output(acc);
        (aig, lits)
    }

    #[test]
    fn on_demand_computes_transitively() {
        let (aig, lits) = chain();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let top = lits.last().unwrap().node();
        let cuts = store.cuts(&aig, top);
        assert!(cuts.len() > 1);
        for l in &lits {
            assert!(store.get(&aig, l.node()).is_some());
        }
    }

    #[test]
    fn invalidate_tfo_clears_upward() {
        let (aig, lits) = chain();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let top = lits.last().unwrap().node();
        store.cuts(&aig, top);
        let first = lits[0].node();
        store.invalidate_tfo(&aig, first);
        assert!(store.get(&aig, first).is_none());
        for l in &lits[1..] {
            assert!(store.get(&aig, l.node()).is_none(), "{:?}", l.node());
        }
        assert!(store.get(&aig, aig.inputs()[0]).is_some());
    }

    #[test]
    fn invalidate_tfo_short_circuits_on_empty_entries() {
        let (aig, lits) = chain();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let top = lits.last().unwrap().node();
        store.cuts(&aig, top);
        store.invalidate(lits[1].node());
        store.invalidate_tfo(&aig, lits[1].node());
        assert!(store.get(&aig, top).is_none());
    }

    #[test]
    fn generation_mismatch_invalidates_implicitly() {
        let (mut aig, lits) = chain();
        let store = CutStore::new(aig.slot_count() + 8, CutConfig::unlimited());
        let top = lits.last().unwrap().node();
        store.cuts(&aig, top);
        // Replace the bottom AND: its slot is freed and the generation
        // bumped; a recycled occupant must not see the stale entry.
        let victim = lits[0].node();
        let keep = aig.inputs()[0].lit();
        aig.replace(victim, keep);
        assert!(store.get(&aig, victim).is_none(), "gen tag must reject");
    }

    #[test]
    fn grow_extends_capacity() {
        let (aig, _) = chain();
        let mut store = CutStore::new(4, CutConfig::unlimited());
        store.grow(aig.slot_count());
        assert!(store.capacity() >= aig.slot_count());
    }

    #[test]
    fn dirty_tracking_is_opt_in() {
        let (aig, lits) = chain();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let top = lits.last().unwrap().node();
        store.cuts(&aig, top);
        // Off by default: invalidation marks nothing.
        store.invalidate_tfo(&aig, lits[0].node());
        assert_eq!(store.dirty_count(), 0);
        // On: invalidation marks the cleared cone.
        store.cuts(&aig, top);
        store.set_dirty_tracking(true);
        store.invalidate_tfo(&aig, lits[0].node());
        assert!(store.is_dirty(lits[0].node()));
        assert!(store.is_dirty(top));
        let drained = store.drain_dirty();
        assert_eq!(drained.len(), lits.len());
        assert_eq!(store.dirty_count(), 0);
    }

    #[test]
    fn mark_dirty_tfo_keeps_cached_sets() {
        let (aig, lits) = chain();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let top = lits.last().unwrap().node();
        store.cuts(&aig, top);
        store.set_dirty_tracking(true);
        store.mark_dirty_tfo(&aig, lits[0].node());
        // Every node upward is marked, but the memo entries survive.
        for l in &lits {
            assert!(store.is_dirty(l.node()));
            assert!(store.get(&aig, l.node()).is_some());
        }
    }

    #[test]
    fn reset_preserves_capacity_and_clears_everything() {
        let (aig, lits) = chain();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let top = lits.last().unwrap().node();
        store.cuts(&aig, top);
        store.set_dirty_tracking(true);
        store.mark_dirty(top);
        let cap = store.capacity();
        store.reset();
        assert_eq!(store.capacity(), cap);
        assert_eq!(store.cached_count(), 0);
        assert_eq!(store.dirty_count(), 0);
        assert!(store.dirty_tracking(), "reset keeps the tracking switch");
    }

    #[test]
    fn recompute_after_invalidation() {
        let (aig, lits) = chain();
        let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
        let top = lits.last().unwrap().node();
        let before = store.cuts(&aig, top);
        store.invalidate_tfo(&aig, lits[0].node());
        let after = store.cuts(&aig, top);
        assert_eq!(before.len(), after.len());
    }
}
