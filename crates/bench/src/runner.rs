//! Executes engines over benchmarks and records results.

use std::time::Instant;

use dacpara::{run_engine, Engine, RewriteConfig};
use dacpara_aig::{Aig, AigRead};
use dacpara_circuits::{Benchmark, Scale};
use dacpara_equiv::{check_equivalence, random_sim_check, CecConfig, CecResult, SimOutcome};
use dacpara_obs::json::{Json, ToJson};

/// One engine × benchmark measurement.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Benchmark name.
    pub benchmark: String,
    /// Engine name.
    pub engine: String,
    /// Mean wall-clock seconds over the repeats.
    pub time_s: f64,
    /// AND count before rewriting.
    pub area_before: usize,
    /// AND count after rewriting.
    pub area_after: usize,
    /// Removed AND count (the paper's "Area Reduction").
    pub area_reduction: usize,
    /// Depth after rewriting (the paper's "Delay").
    pub delay: u32,
    /// Depth before rewriting.
    pub delay_before: u32,
    /// Committed replacements.
    pub replacements: u64,
    /// Stale results skipped (missed opportunities).
    pub stale_skipped: u64,
    /// Stored cuts revalidated by re-enumeration.
    pub revalidated: u64,
    /// Lock conflicts observed.
    pub conflicts: u64,
    /// Aborted speculative activities.
    pub aborts: u64,
    /// Fraction of operator time wasted by aborts.
    pub wasted_fraction: f64,
    /// Equivalence check verdict (`None` = skipped).
    pub equivalent: Option<bool>,
}

impl ToJson for BenchRun {
    fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", self.benchmark.to_json()),
            ("engine", self.engine.to_json()),
            ("time_s", self.time_s.to_json()),
            ("area_before", self.area_before.to_json()),
            ("area_after", self.area_after.to_json()),
            ("area_reduction", self.area_reduction.to_json()),
            ("delay", self.delay.to_json()),
            ("delay_before", self.delay_before.to_json()),
            ("replacements", self.replacements.to_json()),
            ("stale_skipped", self.stale_skipped.to_json()),
            ("revalidated", self.revalidated.to_json()),
            ("conflicts", self.conflicts.to_json()),
            ("aborts", self.aborts.to_json()),
            ("wasted_fraction", self.wasted_fraction.to_json()),
            ("equivalent", self.equivalent.to_json()),
        ])
    }
}

/// How the harness runs experiments.
#[derive(Copy, Clone, Debug)]
pub struct Harness {
    /// Benchmark scale.
    pub scale: Scale,
    /// Threads for the parallel engines.
    pub threads: usize,
    /// Timing repeats (the paper averages 5 executions).
    pub repeats: usize,
    /// Check functional equivalence after each run.
    pub check: bool,
    /// Maximum AND count for which the SAT stage of the equivalence check
    /// is attempted (above it, random simulation only).
    pub sat_limit: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            scale: Scale::Small,
            threads: 4,
            repeats: 1,
            check: true,
            sat_limit: 2_000,
        }
    }
}

impl Harness {
    /// Runs `engine` on a fresh copy of the benchmark, `repeats` times,
    /// averaging the wall-clock time and reporting the last run's quality.
    ///
    /// # Panics
    ///
    /// Panics if the engine reports an arena-capacity error (a
    /// configuration problem worth failing loudly on) or if the equivalence
    /// check *disproves* equivalence — a rewriting bug must never be
    /// silently recorded as a data point.
    pub fn run_one(&self, bench: &Benchmark, engine: Engine, cfg: &RewriteConfig) -> BenchRun {
        let _obs = dacpara_obs::span!("bench_run", benchmark = bench.name, engine = engine.name());
        let mut last_stats = None;
        let mut last_aig: Option<Aig> = None;
        let mut total = 0.0f64;
        for _ in 0..self.repeats.max(1) {
            let mut aig = bench.aig.clone();
            let t0 = Instant::now();
            let stats = run_engine(&mut aig, engine, cfg)
                .unwrap_or_else(|e| panic!("{engine} failed on {}: {e}", bench.name));
            total += t0.elapsed().as_secs_f64();
            last_stats = Some(stats);
            last_aig = Some(aig);
        }
        let stats = last_stats.expect("at least one repeat");
        let rewritten = last_aig.expect("at least one repeat");

        let equivalent = if self.check {
            Some(self.check_equivalence(&bench.aig, &rewritten, &bench.name, engine))
        } else {
            None
        };

        BenchRun {
            benchmark: bench.name.clone(),
            engine: engine.name().to_string(),
            time_s: total / self.repeats.max(1) as f64,
            area_before: stats.area_before,
            area_after: stats.area_after,
            area_reduction: stats.area_reduction(),
            delay: stats.delay_after,
            delay_before: stats.delay_before,
            replacements: stats.replacements,
            stale_skipped: stats.stale_skipped,
            revalidated: stats.revalidated,
            conflicts: stats.spec.conflicts,
            aborts: stats.spec.aborts,
            wasted_fraction: stats.spec.wasted_fraction(),
            equivalent,
        }
    }

    fn check_equivalence(&self, golden: &Aig, rewritten: &Aig, name: &str, engine: Engine) -> bool {
        if golden.num_ands() + rewritten.num_ands() <= self.sat_limit {
            // Bounded SAT: a counterexample is definitive; Undecided falls
            // back on the (already passed) random simulation.
            let cec = CecConfig {
                max_conflicts: 50_000,
                ..CecConfig::default()
            };
            match check_equivalence(golden, rewritten, &cec) {
                CecResult::Equivalent => true,
                CecResult::Undecided => true, // budget ran out; sim passed
                CecResult::Inequivalent(_) => {
                    panic!("{engine} produced a non-equivalent {name}")
                }
            }
        } else {
            match random_sim_check(golden, rewritten, 32, 0xDAC) {
                SimOutcome::NoDifferenceFound => true,
                SimOutcome::Counterexample(_) => {
                    panic!("{engine} produced a non-equivalent {name}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::mtm_suite;

    #[test]
    fn harness_runs_and_checks() {
        let harness = Harness {
            scale: Scale::Test,
            threads: 2,
            repeats: 1,
            check: true,
            sat_limit: 4_000,
        };
        let suite = mtm_suite(Scale::Test);
        let cfg = RewriteConfig::rewrite_op().with_threads(2);
        let run = harness.run_one(&suite[0], Engine::DacPara, &cfg);
        assert_eq!(run.engine, "dacpara");
        assert_eq!(run.equivalent, Some(true));
        assert!(run.area_after <= run.area_before);
    }
}
