//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! tables [table1|table2|table3|fig2|fig3|ablations|all]
//!        [--scale test|small|medium] [--threads N] [--repeats N]
//!        [--out DIR] [--no-check]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use dacpara_bench::{
    ablations, engines, fig2, fig3, speedup, table1, table2, table3, Exhibit, Harness,
};
use dacpara_circuits::Scale;

struct Args {
    which: Vec<String>,
    harness: Harness,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut which: Vec<String> = Vec::new();
    let mut harness = Harness::default();
    let mut out = PathBuf::from("results");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "table1" | "table2" | "table3" | "fig2" | "fig3" | "ablations" | "speedup"
            | "engines" => {
                which.push(arg);
            }
            "all" => {
                which = [
                    "table1",
                    "table2",
                    "table3",
                    "fig2",
                    "fig3",
                    "speedup",
                    "engines",
                    "ablations",
                ]
                .map(String::from)
                .to_vec();
            }
            "--scale" => {
                harness.scale = match it.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--threads" => {
                harness.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--repeats" => {
                harness.repeats = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--repeats needs a number")?;
            }
            "--out" => {
                out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--no-check" => harness.check = false,
            other => return Err(format!("unknown argument `{other}` (try `all`)")),
        }
    }
    if which.is_empty() {
        which.push("table1".to_string());
    }
    Ok(Args {
        which,
        harness,
        out,
    })
}

fn run_exhibit(name: &str, harness: &Harness) -> Exhibit {
    match name {
        "table1" => table1(harness),
        "table2" => table2(harness),
        "table3" => table3(harness),
        "fig2" => fig2(harness),
        "fig3" => fig3(harness),
        "speedup" => speedup(harness),
        "engines" => engines(harness),
        "ablations" => ablations(harness),
        _ => unreachable!("validated in parse_args"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: tables [table1|table2|table3|fig2|fig3|ablations|all] \
                 [--scale test|small|medium] [--threads N] [--repeats N] \
                 [--out DIR] [--no-check]"
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# scale={:?} threads={} repeats={} check={}",
        args.harness.scale, args.harness.threads, args.harness.repeats, args.harness.check
    );
    for name in &args.which {
        eprintln!("# running {name} ...");
        let exhibit = run_exhibit(name, &args.harness);
        println!("{}", exhibit.markdown);
        if let Err(e) = dacpara_bench::write_markdown(&args.out, name, &exhibit.markdown)
            .and_then(|()| dacpara_bench::write_json(&args.out, name, &exhibit))
        {
            eprintln!("warning: could not persist {name}: {e}");
        }
    }
    ExitCode::SUCCESS
}
