//! Command-line rewriting tool: read an AIGER netlist (or generate a named
//! benchmark), optimize it with a chosen engine, and write the result.
//!
//! ```text
//! rewrite [--engine NAME] [--threads N] [--passes N]
//!         [--runs N] [--zeros] [--classes 134|222] [--check]
//!         [--scheduler steal|barrier]
//!         [--headroom X.Y] [--max-regrowths N]
//!         [--trace FILE.json] [--metrics FILE.jsonl]
//!         [--in FILE.{aag,aig,blif}|--bench NAME[:scale]]
//!         [--out FILE.{aag,aig,blif,v,dot}]
//! ```
//!
//! `--engine` accepts any [`Engine`] name (see `Engine::help_list()`) plus
//! the short aliases `abc`, `dac22`, `tcad23` and `partition`. `--passes N`
//! applies the engine up to `N` times via [`dacpara::optimize`]; for
//! `dacpara` and `iccad18` the passes share one `RewriteSession`, so later
//! passes revisit only the nodes earlier passes dirtied and a converged
//! pass returns immediately. `--scheduler` picks the worklist scheduler of
//! those two Galois engines: `steal` (default) work-steals and retries
//! conflict-aborted commits within the pass, `barrier` is the historical
//! shared-cursor scheme.
//!
//! Observability flags (see `docs/ARCHITECTURE.md`, "Observability"):
//!
//! * `--trace FILE.json` — record spans during the run and write a Chrome
//!   trace-event file (open in `chrome://tracing` or
//!   <https://ui.perfetto.dev>; one lane per worker thread showing
//!   enumeration / evaluation / replacement activity).
//! * `--metrics FILE.jsonl` — dump every counter and histogram (cut-memo
//!   hits/misses, conflict/abort latency, lock hold times, MFFC sizes,
//!   replacement gains) as one JSON object per line.
//!
//! Either flag enables recording for the whole run; without them the
//! instrumentation costs one relaxed atomic load per site. All diagnostics
//! go to stderr; stdout stays machine-parseable (reserved for `--out -`
//! style piping in the future).
//!
//! Fault tolerance (see `docs/ARCHITECTURE.md` §12):
//!
//! * `--headroom X.Y` — arena slack factor for the concurrent engines
//!   (default 2.0; must be ≥ 1.0 and finite).
//! * `--max-regrowths N` — how many times an exhausted arena may be
//!   re-homed with doubled headroom before the pass gives up (default 4;
//!   `0` disables in-pass recovery).
//! * `DACPARA_FAULT_SPEC` / `DACPARA_FAULT_SEED` — arm the deterministic
//!   fault-injection harness (e.g. `arena.alloc=1/64*2`); the armed plan is
//!   echoed to stderr. See the `dacpara-fault` crate docs for the grammar.

use std::path::PathBuf;
use std::process::ExitCode;

use dacpara::{optimize, run_engine, Engine, RewriteConfig};
use dacpara_aig::{aiger, Aig};
use dacpara_circuits::{full_suite, Scale};
use dacpara_equiv::{check_equivalence, CecConfig, CecResult};

struct Args {
    engine: Engine,
    cfg: RewriteConfig,
    passes: usize,
    input: Input,
    output: Option<PathBuf>,
    check: bool,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

enum Input {
    File(PathBuf),
    Bench(String, Scale),
}

/// Parses a required numeric flag value, naming the flag and echoing the
/// offending text on failure.
fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a number"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} needs a number, got `{value}`"))
}

fn parse_args() -> Result<Args, String> {
    let mut engine = Engine::DacPara;
    let mut cfg = RewriteConfig::rewrite_op();
    let mut passes = 1;
    let mut input = None;
    let mut output = None;
    let mut check = false;
    let mut trace = None;
    let mut metrics = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => {
                let name = it.next().ok_or("--engine needs a name")?;
                engine = name.parse().map_err(|e| format!("{e}"))?;
            }
            "--threads" => {
                cfg.threads = parse_num("--threads", it.next())?;
            }
            "--runs" => {
                cfg.runs = parse_num("--runs", it.next())?;
            }
            "--passes" => {
                passes = parse_num("--passes", it.next())?;
                if passes == 0 {
                    return Err("--passes must be at least 1".into());
                }
            }
            "--classes" => {
                cfg.num_classes = parse_num("--classes", it.next())?;
            }
            "--scheduler" => {
                let name = it.next().ok_or("--scheduler needs `steal` or `barrier`")?;
                cfg.scheduler = name.parse().map_err(|e| format!("{e}"))?;
            }
            "--headroom" => {
                cfg.headroom = parse_num("--headroom", it.next())?;
            }
            "--max-regrowths" => {
                cfg.max_regrowths = parse_num("--max-regrowths", it.next())?;
            }
            "--zeros" => cfg.use_zeros = true,
            "--check" => check = true,
            "--in" => {
                input = Some(Input::File(PathBuf::from(
                    it.next().ok_or("--in needs a path")?,
                )));
            }
            "--bench" => {
                let spec = it.next().ok_or("--bench needs a name")?;
                let (name, scale) = match spec.split_once(':') {
                    Some((n, "test")) => (n.to_string(), Scale::Test),
                    Some((n, "small")) => (n.to_string(), Scale::Small),
                    Some((n, "medium")) => (n.to_string(), Scale::Medium),
                    Some((_, s)) => return Err(format!("unknown scale {s}")),
                    None => (spec, Scale::Small),
                };
                input = Some(Input::Bench(name, scale));
            }
            "--out" => {
                output = Some(PathBuf::from(it.next().ok_or("--out needs a path")?));
            }
            "--trace" => {
                trace = Some(PathBuf::from(it.next().ok_or("--trace needs a path")?));
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(it.next().ok_or("--metrics needs a path")?));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let input = input.ok_or("one of --in FILE or --bench NAME is required")?;
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(Args {
        engine,
        cfg,
        passes,
        input,
        output,
        check,
        trace,
        metrics,
    })
}

fn load(input: &Input) -> Result<Aig, String> {
    match input {
        Input::File(path) => {
            let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
            match path.extension().and_then(|e| e.to_str()) {
                Some("aig") => {
                    dacpara_aig::aiger::read_binary(&bytes[..]).map_err(|e| e.to_string())
                }
                Some("blif") => {
                    let text = String::from_utf8(bytes).map_err(|e| e.to_string())?;
                    dacpara_aig::blif::parse(&text).map_err(|e| e.to_string())
                }
                _ => {
                    let text = String::from_utf8(bytes).map_err(|e| e.to_string())?;
                    aiger::parse(&text).map_err(|e| e.to_string())
                }
            }
        }
        Input::Bench(name, scale) => full_suite(*scale)
            .into_iter()
            .find(|b| b.name == *name || b.name.starts_with(&format!("{name}_")))
            .map(|b| b.aig)
            .ok_or_else(|| format!("unknown benchmark `{name}`")),
    }
}

fn save(aig: &Aig, path: &std::path::Path) -> Result<(), String> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("aig") => {
            let mut buf = Vec::new();
            dacpara_aig::aiger::write_binary(aig, &mut buf).map_err(|e| e.to_string())?;
            std::fs::write(path, buf).map_err(|e| e.to_string())
        }
        Some("blif") => {
            let model = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("rewritten");
            std::fs::write(path, dacpara_aig::blif::to_string(aig, model))
                .map_err(|e| e.to_string())
        }
        Some("v") => {
            let module = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("rewritten");
            std::fs::write(path, dacpara_aig::export::verilog_to_string(aig, module))
                .map_err(|e| e.to_string())
        }
        Some("dot") => {
            std::fs::write(path, dacpara_aig::export::dot_to_string(aig)).map_err(|e| e.to_string())
        }
        _ => std::fs::write(path, aiger::to_string(aig)).map_err(|e| e.to_string()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: rewrite [--engine NAME] [--threads N] [--passes N] \
                 [--runs N] [--zeros] [--classes 134|222] [--check] \
                 [--scheduler steal|barrier] \
                 [--headroom X.Y] [--max-regrowths N] \
                 [--trace FILE.json] [--metrics FILE.jsonl] \
                 (--in FILE.aag | --bench NAME[:test|small|medium]) [--out FILE.aag]"
            );
            eprintln!("engines: {}", Engine::help_list());
            return ExitCode::FAILURE;
        }
    };
    let mut aig = match load(&args.input) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let golden = if args.check { Some(aig.clone()) } else { None };
    // Arm the deterministic fault harness if the env knobs ask for it; a
    // malformed spec is a hard error, not a silently fault-free run.
    match dacpara_fault::arm_from_env() {
        Ok(None) => {}
        Ok(Some(plan)) => eprintln!("faults: {plan}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let observing = args.trace.is_some() || args.metrics.is_some();
    if observing {
        dacpara_obs::reset();
        dacpara_obs::enable();
    }
    eprintln!("input:  {}", dacpara_aig::export::stats(&aig));
    if args.passes == 1 {
        match run_engine(&mut aig, args.engine, &args.cfg) {
            Ok(stats) => eprintln!("{}", stats.summary()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match optimize(&mut aig, args.engine, &args.cfg, args.passes) {
            Ok(passes) => {
                for (i, stats) in passes.iter().enumerate() {
                    eprintln!("pass {}: {}", i + 1, stats.summary());
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("output: {}", dacpara_aig::export::stats(&aig));
    if observing {
        dacpara_obs::disable();
        if let Some(path) = &args.trace {
            if let Err(e) = dacpara_obs::export_chrome_trace(path) {
                eprintln!("error writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("trace:  {}", path.display());
        }
        if let Some(path) = &args.metrics {
            if let Err(e) = dacpara_obs::export_metrics_jsonl(path) {
                eprintln!("error writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("metrics: {}", path.display());
        }
    }
    if let Some(golden) = golden {
        match check_equivalence(&golden, &aig, &CecConfig::default()) {
            CecResult::Equivalent => eprintln!("equivalence: proven"),
            CecResult::Undecided => eprintln!("equivalence: simulation passed (SAT budget out)"),
            CecResult::Inequivalent(_) => {
                eprintln!("equivalence: FAILED — refusing to write output");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = args.output {
        if let Err(e) = save(&aig, &path) {
            eprintln!("error writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
