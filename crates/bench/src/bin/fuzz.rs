//! Differential fuzzing driver for the DACPara engines.
//!
//! ```text
//! fuzz run    [--iters N] [--seed N] [--small] [--inputs N] [--nodes N]
//!             [--outputs N] [--depth N] [--reconvergence X.Y] [--xor-mux X.Y]
//!             [--threads 1,2,4] [--mutate-every N] [--fault SPEC]
//!             [--fault-seed N] [--corpus DIR] [--no-shrink] [--repeats N]
//!             [--max-rounds N] [--trace FILE.json] [--metrics FILE.jsonl]
//! fuzz replay [--corpus DIR] [ENTRY.entry ...]
//! fuzz shrink --in ENTRY.entry [--out ENTRY.entry] [--repeats N]
//!             [--max-rounds N]
//! ```
//!
//! `run` generates seeded random circuits (see `dacpara_fuzz::gen`) and
//! sweeps each through the engine × scheduler × thread matrix, cross-checked
//! with budgeted CEC and the structural invariant checker. On the first
//! failure it delta-debugs the circuit down to a minimal witness and writes
//! a replayable corpus entry (default `fuzz/corpus/`). Exit code 1 means a
//! failure was found (and its witness written); 0 means the whole campaign
//! came back clean.
//!
//! `replay` re-runs recorded corpus entries — explicit files, or every
//! `*.entry` under the corpus directory — and verifies each behaves as
//! recorded: regression pins must pass, shrunk witnesses must still fail.
//! Entries whose `requires-feature:` is not compiled into this binary are
//! skipped, so the checked-in drain-bug witness is inert in default builds.
//!
//! `shrink` re-minimizes an existing failing entry, e.g. after the oracle
//! or the generator changed.
//!
//! `--fault SPEC` arms `dacpara-fault` injection (grammar per
//! [`dacpara_fault::FaultPlan::parse`]) around every oracle cell; engine
//! errors are then tolerated (the fault-tolerance contract) while
//! inequivalence and invariant violations still convict. `--trace` /
//! `--metrics` record the run through `dacpara-obs` exactly like the
//! `rewrite` binary.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dacpara::testkit::engine_matrix;
use dacpara_aig::AigRead;
use dacpara_fault::FaultPlan;
use dacpara_fuzz::corpus::{replay, CorpusEntry, ReplayOutcome};
use dacpara_fuzz::gen::GenConfig;
use dacpara_fuzz::oracle::OracleConfig;
use dacpara_fuzz::shrink::ShrinkConfig;
use dacpara_fuzz::{fuzz_run, shrink_failing, summarize, FuzzConfig};

/// Cargo features compiled into this binary that corpus entries may demand.
fn have_features() -> Vec<&'static str> {
    let mut feats = Vec::new();
    if cfg!(feature = "inject-drain-bug") {
        feats.push("inject-drain-bug");
    }
    feats
}

struct Common {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

struct RunArgs {
    iters: usize,
    seed: u64,
    gen: GenConfig,
    threads: Vec<usize>,
    mutate_every: usize,
    fault: Option<(String, u64)>,
    corpus: PathBuf,
    shrink: bool,
    repeats: usize,
    max_rounds: usize,
}

struct ShrinkArgs {
    input: PathBuf,
    output: Option<PathBuf>,
    repeats: usize,
    max_rounds: usize,
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} got unparseable `{value}`"))
}

fn usage() {
    eprintln!(
        "usage: fuzz run    [--iters N] [--seed N] [--small] [--inputs N] [--nodes N] \
         [--outputs N] [--depth N] [--reconvergence X.Y] [--xor-mux X.Y] \
         [--threads 1,2,4] [--mutate-every N] [--fault SPEC] [--fault-seed N] \
         [--corpus DIR] [--no-shrink] [--repeats N] [--max-rounds N] \
         [--trace FILE.json] [--metrics FILE.jsonl]\n       \
         fuzz replay [--corpus DIR] [ENTRY.entry ...]\n       \
         fuzz shrink --in ENTRY.entry [--out ENTRY.entry] [--repeats N] [--max-rounds N]"
    );
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let sub = args.remove(0);
    let result = match sub.as_str() {
        "run" => cmd_run(args),
        "replay" => cmd_replay(args),
        "shrink" => cmd_shrink(args),
        "--help" | "-h" | "help" => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn take_common(args: &mut Vec<String>) -> Result<Common, String> {
    let mut trace = None;
    let mut metrics = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" | "--metrics" => {
                let flag = args.remove(i);
                if i >= args.len() {
                    return Err(format!("{flag} needs a path"));
                }
                let path = PathBuf::from(args.remove(i));
                if flag == "--trace" {
                    trace = Some(path);
                } else {
                    metrics = Some(path);
                }
            }
            _ => i += 1,
        }
    }
    Ok(Common { trace, metrics })
}

fn obs_begin(common: &Common) {
    if common.trace.is_some() || common.metrics.is_some() {
        dacpara_obs::reset();
        dacpara_obs::enable();
    }
}

fn obs_end(common: &Common) -> Result<(), String> {
    if common.trace.is_some() || common.metrics.is_some() {
        dacpara_obs::disable();
    }
    if let Some(path) = &common.trace {
        dacpara_obs::export_chrome_trace(path)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("trace:   {}", path.display());
    }
    if let Some(path) = &common.metrics {
        dacpara_obs::export_metrics_jsonl(path)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("metrics: {}", path.display());
    }
    Ok(())
}

fn parse_threads(value: Option<String>) -> Result<Vec<usize>, String> {
    let value = value.ok_or("--threads needs a comma-separated list")?;
    let threads: Vec<usize> = value
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("thread count `{t}` is not a usize"))
        })
        .collect::<Result<_, _>>()?;
    if threads.is_empty() {
        return Err("--threads needs at least one count".into());
    }
    Ok(threads)
}

fn parse_run(mut args: Vec<String>) -> Result<(RunArgs, Common), String> {
    let common = take_common(&mut args)?;
    let mut run = RunArgs {
        iters: 200,
        seed: 0xDACF_0070,
        gen: GenConfig::default(),
        threads: vec![1, 2, 4],
        mutate_every: 3,
        fault: None,
        corpus: PathBuf::from("fuzz/corpus"),
        shrink: true,
        repeats: 3,
        max_rounds: 12,
    };
    let mut fault_spec: Option<String> = None;
    let mut fault_seed = 0u64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => run.iters = parse_num("--iters", it.next())?,
            "--seed" => run.seed = parse_num("--seed", it.next())?,
            "--small" => run.gen = GenConfig::small(),
            "--inputs" => run.gen.inputs = parse_num("--inputs", it.next())?,
            "--nodes" => run.gen.nodes = parse_num("--nodes", it.next())?,
            "--outputs" => run.gen.outputs = parse_num("--outputs", it.next())?,
            "--depth" => run.gen.max_depth = parse_num("--depth", it.next())?,
            "--reconvergence" => run.gen.reconvergence = parse_num("--reconvergence", it.next())?,
            "--xor-mux" => run.gen.xor_mux = parse_num("--xor-mux", it.next())?,
            "--threads" => run.threads = parse_threads(it.next())?,
            "--mutate-every" => run.mutate_every = parse_num("--mutate-every", it.next())?,
            "--fault" => fault_spec = Some(it.next().ok_or("--fault needs a spec")?),
            "--fault-seed" => fault_seed = parse_num("--fault-seed", it.next())?,
            "--corpus" => run.corpus = PathBuf::from(it.next().ok_or("--corpus needs a dir")?),
            "--no-shrink" => run.shrink = false,
            "--repeats" => run.repeats = parse_num("--repeats", it.next())?,
            "--max-rounds" => run.max_rounds = parse_num("--max-rounds", it.next())?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if let Some(spec) = fault_spec {
        // Parse now so a typo is a startup error, not a silent no-fault run.
        FaultPlan::parse(&spec, fault_seed).map_err(|e| e.to_string())?;
        run.fault = Some((spec, fault_seed));
    }
    Ok((run, common))
}

fn cmd_run(args: Vec<String>) -> Result<ExitCode, String> {
    let (run, common) = parse_run(args)?;
    let fault_plan = match &run.fault {
        Some((spec, seed)) => Some(FaultPlan::parse(spec, *seed).map_err(|e| e.to_string())?),
        None => None,
    };
    let cfg = FuzzConfig {
        iters: run.iters,
        gen: run.gen,
        oracle: OracleConfig {
            points: engine_matrix(&run.threads),
            fault: fault_plan,
            ..OracleConfig::default()
        },
        mutate_every: run.mutate_every,
    };
    eprintln!(
        "campaign: {} iters, seed {:#x}, {} matrix cells{}",
        cfg.iters,
        run.seed,
        cfg.oracle.points.len(),
        match &run.fault {
            Some((spec, seed)) => format!(", faults `{spec}` seed {seed}"),
            None => String::new(),
        }
    );
    obs_begin(&common);
    let report = fuzz_run(&cfg, run.seed);
    eprintln!("{}", summarize(&report));
    let code = match &report.failing {
        None => ExitCode::SUCCESS,
        Some(case) => {
            let witness = if run.shrink {
                let shrink_cfg = ShrinkConfig {
                    max_rounds: run.max_rounds,
                    repeats: run.repeats,
                };
                let small = shrink_failing(case, &cfg.oracle, &shrink_cfg);
                eprintln!(
                    "shrunk witness: {} -> {} AND nodes",
                    case.aig.num_ands(),
                    small.num_ands()
                );
                small
            } else {
                case.aig.clone()
            };
            let entry = CorpusEntry {
                seed: case.seed,
                threads: run.threads.clone(),
                fault: run.fault.clone(),
                requires_feature: have_features().first().map(|f| f.to_string()),
                expect_fail: true,
                note: format!(
                    "fuzz run --seed {:#x}: {}",
                    run.seed,
                    case.failures
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ),
                aig: witness,
            };
            std::fs::create_dir_all(&run.corpus).map_err(|e| e.to_string())?;
            let path = run.corpus.join(format!("witness-{:016x}.entry", case.seed));
            entry.write_to(&path).map_err(|e| e.to_string())?;
            eprintln!("witness: {}", path.display());
            ExitCode::FAILURE
        }
    };
    obs_end(&common)?;
    Ok(code)
}

fn cmd_replay(mut args: Vec<String>) -> Result<ExitCode, String> {
    let common = take_common(&mut args)?;
    let mut corpus = PathBuf::from("fuzz/corpus");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--corpus" => corpus = PathBuf::from(it.next().ok_or("--corpus needs a dir")?),
            flag if flag.starts_with("--") => return Err(format!("unknown argument `{flag}`")),
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        let mut found: Vec<PathBuf> = std::fs::read_dir(&corpus)
            .map_err(|e| format!("{}: {e}", corpus.display()))?
            .filter_map(|d| d.ok())
            .map(|d| d.path())
            .filter(|p| p.extension().is_some_and(|e| e == "entry"))
            .collect();
        found.sort();
        files = found;
    }
    if files.is_empty() {
        eprintln!("corpus: no entries under {}", corpus.display());
        return Ok(ExitCode::SUCCESS);
    }
    let feats = have_features();
    obs_begin(&common);
    let mut mismatches = 0usize;
    for path in &files {
        let entry = CorpusEntry::read_from(path)?;
        match replay(&entry, &feats)? {
            ReplayOutcome::Green => eprintln!("green:   {}", path.display()),
            ReplayOutcome::Skipped(feat) => {
                eprintln!("skipped: {} (needs feature `{feat}`)", path.display());
            }
            ReplayOutcome::Mismatch(failures) => {
                mismatches += 1;
                if failures.is_empty() {
                    eprintln!(
                        "MISMATCH: {} — recorded witness no longer fails",
                        path.display()
                    );
                } else {
                    eprintln!("MISMATCH: {} — {}", path.display(), failures.join("; "));
                }
            }
        }
    }
    obs_end(&common)?;
    eprintln!("replayed {} entries, {mismatches} mismatches", files.len());
    Ok(if mismatches == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_shrink(mut args: Vec<String>) -> Result<ExitCode, String> {
    let common = take_common(&mut args)?;
    let mut parsed = ShrinkArgs {
        input: PathBuf::new(),
        output: None,
        repeats: 3,
        max_rounds: 12,
    };
    let mut have_input = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--in" => {
                parsed.input = PathBuf::from(it.next().ok_or("--in needs a path")?);
                have_input = true;
            }
            "--out" => parsed.output = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--repeats" => parsed.repeats = parse_num("--repeats", it.next())?,
            "--max-rounds" => parsed.max_rounds = parse_num("--max-rounds", it.next())?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !have_input {
        return Err("shrink needs --in ENTRY.entry".into());
    }
    let mut entry = CorpusEntry::read_from(&parsed.input)?;
    if !entry.expect_fail {
        return Err("entry is a regression pin (`expect: pass`); nothing to shrink".into());
    }
    if let Some(feat) = &entry.requires_feature {
        if !have_features().contains(&feat.as_str()) {
            return Err(format!(
                "entry needs feature `{feat}`; rebuild with --features {feat}"
            ));
        }
    }
    let oracle = entry.oracle_config()?;
    let case = dacpara_fuzz::FailingCase {
        seed: entry.seed,
        aig: entry.aig.clone(),
        failures: Vec::new(),
    };
    let shrink_cfg = ShrinkConfig {
        max_rounds: parsed.max_rounds,
        repeats: parsed.repeats,
    };
    obs_begin(&common);
    let small = shrink_failing(&case, &oracle, &shrink_cfg);
    obs_end(&common)?;
    eprintln!(
        "shrunk: {} -> {} AND nodes",
        entry.aig.num_ands(),
        small.num_ands()
    );
    entry.aig = small;
    let out = parsed.output.unwrap_or(parsed.input);
    entry
        .write_to(Path::new(&out))
        .map_err(|e| format!("{}: {e}", out.display()))?;
    eprintln!("wrote {}", out.display());
    Ok(ExitCode::SUCCESS)
}
