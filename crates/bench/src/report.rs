//! Table formatting and result persistence for the experiment harness.

use std::io::Write;
use std::path::Path;

use dacpara_obs::json::{Json, ToJson};

/// A rendered table (markdown-ready).
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title, e.g. `Table 2: ...`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::obj([
            ("title", self.title.to_json()),
            ("columns", self.columns.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

/// Writes a [`ToJson`] value as pretty JSON under `dir/name.json`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json<T: ToJson>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(path)?;
    f.write_all(value.to_json().to_pretty().as_bytes())
}

/// Writes markdown under `dir/name.md`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_markdown(dir: &Path, name: &str, text: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.md")), text)
}

/// Geometric mean of ratios, for the paper's "Normalized Mean" rows.
pub fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(1e-12).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Table X", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Table X"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_enforced() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
