#![warn(missing_docs)]
//! Benchmark harness regenerating every table and figure of the DACPara
//! paper's evaluation (§5).
//!
//! The `tables` binary drives the [`experiments`] module:
//!
//! ```text
//! cargo run --release -p dacpara-bench --bin tables -- all --scale small --threads 4
//! ```
//!
//! Results are printed as markdown and persisted (markdown + JSON) under
//! `results/`. Criterion micro-benchmarks for the substrates live under
//! `benches/`.

pub mod experiments;
pub mod report;
pub mod runner;

pub use experiments::{ablations, engines, fig2, fig3, speedup, table1, table2, table3, Exhibit};
pub use report::{geomean, write_json, write_markdown, Table};
pub use runner::{BenchRun, Harness};
