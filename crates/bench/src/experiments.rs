//! Regenerators for every table and figure of the paper's evaluation.
//!
//! Each function reproduces the corresponding exhibit at a configurable
//! scale (see `EXPERIMENTS.md` for recorded paper-vs-measured shapes):
//!
//! * [`table1`] — benchmark details (PIs/POs/Area/Delay),
//! * [`table2`] — ABC vs ICCAD'18 vs DACPara (time / area reduction /
//!   delay, with normalized means),
//! * [`table3`] — the MtM set across ICCAD'18, the two GPU emulations,
//!   DACPara-P1 and DACPara-P2,
//! * [`fig2`] — wasted (aborted) work: combined operator vs split
//!   operators, swept over thread counts,
//! * [`fig3`] — stored-cut invalidation statistics (the ID-reuse hazard),
//! * [`ablations`] — the design-choice sweeps called out in `DESIGN.md`.

use dacpara::{Engine, RewriteConfig};
use dacpara_circuits::{arithmetic_suite, full_suite, mtm_suite, Benchmark};
use dacpara_obs::json::{Json, ToJson};

use crate::report::{geomean, Table};
use crate::runner::{BenchRun, Harness};

/// A regenerated exhibit: the rendered table plus raw rows.
#[derive(Debug)]
pub struct Exhibit {
    /// Identifier (`table2`, `fig2`, ...).
    pub id: String,
    /// Rendered markdown table(s).
    pub markdown: String,
    /// Raw measurements backing the exhibit.
    pub runs: Vec<BenchRun>,
}

impl ToJson for Exhibit {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("markdown", self.markdown.to_json()),
            ("runs", self.runs.to_json()),
        ])
    }
}

fn fmt_s(x: f64) -> String {
    format!("{x:.3}")
}

/// Table 1: benchmark details (name, PIs, POs, area, delay).
pub fn table1(harness: &Harness) -> Exhibit {
    let mut t = Table::new(
        format!("Table 1: Benchmark Detail (scale = {:?})", harness.scale),
        &["Benchmark", "PIs", "POs", "Area", "Delay", "Source"],
    );
    for b in full_suite(harness.scale) {
        let (name, pis, pos, area, delay) = b.table1_row();
        t.push_row(vec![
            name,
            pis.to_string(),
            pos.to_string(),
            area.to_string(),
            delay.to_string(),
            b.source.to_string(),
        ]);
    }
    Exhibit {
        id: "table1".into(),
        markdown: t.to_markdown(),
        runs: Vec::new(),
    }
}

/// Runs the engines of Table 2 over the full suite.
pub fn table2(harness: &Harness) -> Exhibit {
    let suite = full_suite(harness.scale);
    let serial_cfg = RewriteConfig::rewrite_op();
    let par_cfg = RewriteConfig::rewrite_op().with_threads(harness.threads);

    let mut runs: Vec<BenchRun> = Vec::new();
    let mut t = Table::new(
        format!(
            "Table 2: ABC (1 thread) vs ICCAD'18 vs DACPara ({} threads, scale = {:?})",
            harness.threads, harness.scale
        ),
        &[
            "Benchmark",
            "ABC T(s)",
            "ABC AreaRed",
            "ABC Delay",
            "ICCAD18 T(s)",
            "ICCAD18 AreaRed",
            "ICCAD18 Delay",
            "DACPara T(s)",
            "DACPara AreaRed",
            "DACPara Delay",
        ],
    );

    let mut ratios_time = [Vec::new(), Vec::new()]; // abc, iccad vs dacpara
    let mut ratios_area = [Vec::new(), Vec::new()];
    let mut ratios_delay = [Vec::new(), Vec::new()];
    for b in &suite {
        let abc = harness.run_one(b, Engine::AbcRewrite, &serial_cfg);
        let iccad = harness.run_one(b, Engine::Iccad18, &par_cfg);
        let dac = harness.run_one(b, Engine::DacPara, &par_cfg);
        t.push_row(vec![
            b.name.clone(),
            fmt_s(abc.time_s),
            abc.area_reduction.to_string(),
            abc.delay.to_string(),
            fmt_s(iccad.time_s),
            iccad.area_reduction.to_string(),
            iccad.delay.to_string(),
            fmt_s(dac.time_s),
            dac.area_reduction.to_string(),
            dac.delay.to_string(),
        ]);
        for (i, other) in [&abc, &iccad].into_iter().enumerate() {
            ratios_time[i].push(other.time_s / dac.time_s.max(1e-9));
            ratios_area[i]
                .push(other.area_reduction.max(1) as f64 / dac.area_reduction.max(1) as f64);
            ratios_delay[i].push(other.delay.max(1) as f64 / dac.delay.max(1) as f64);
        }
        runs.extend([abc, iccad, dac]);
    }
    t.push_row(vec![
        "Normalized Mean".into(),
        format!("{:.4}", geomean(&ratios_time[0])),
        format!("{:.4}", geomean(&ratios_area[0])),
        format!("{:.4}", geomean(&ratios_delay[0])),
        format!("{:.4}", geomean(&ratios_time[1])),
        format!("{:.4}", geomean(&ratios_area[1])),
        format!("{:.4}", geomean(&ratios_delay[1])),
        "1".into(),
        "1".into(),
        "1".into(),
    ]);

    Exhibit {
        id: "table2".into(),
        markdown: t.to_markdown(),
        runs,
    }
}

/// Table 3: the MtM set across all five comparison columns.
pub fn table3(harness: &Harness) -> Exhibit {
    let suite = mtm_suite(harness.scale);
    let columns: [(&str, Engine, RewriteConfig); 5] = [
        (
            "ICCAD18",
            Engine::Iccad18,
            RewriteConfig::rewrite_op().with_threads(harness.threads),
        ),
        (
            "DAC22",
            Engine::Dac22,
            RewriteConfig::drw_op().with_threads(harness.threads),
        ),
        (
            "TCAD23",
            Engine::Tcad23,
            RewriteConfig::drw_op().with_threads(harness.threads),
        ),
        (
            "DACPara-P1",
            Engine::DacPara,
            RewriteConfig::p1().with_threads(harness.threads),
        ),
        (
            "DACPara-P2",
            Engine::DacPara,
            RewriteConfig::rewrite_op().with_threads(harness.threads),
        ),
    ];

    let mut headers: Vec<String> = vec!["Benchmark".into()];
    for (name, ..) in &columns {
        headers.push(format!("{name} T(s)"));
        headers.push(format!("{name} AreaRed"));
        headers.push(format!("{name} Delay"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Table 3: MtM set, {} threads (scale = {:?})",
            harness.threads, harness.scale
        ),
        &header_refs,
    );

    let mut runs: Vec<BenchRun> = Vec::new();
    let mut per_col: Vec<Vec<BenchRun>> = vec![Vec::new(); columns.len()];
    for b in &suite {
        let mut row = vec![b.name.clone()];
        for (i, (_, engine, cfg)) in columns.iter().enumerate() {
            let r = harness.run_one(b, *engine, cfg);
            row.push(fmt_s(r.time_s));
            row.push(r.area_reduction.to_string());
            row.push(r.delay.to_string());
            per_col[i].push(r.clone());
            runs.push(r);
        }
        t.push_row(row);
    }
    // Normalized mean row versus the last column (DACPara-P2), as in the paper.
    let base = per_col.last().expect("five columns");
    let mut norm = vec!["Norm Mean".to_string()];
    for col in &per_col {
        let rt: Vec<f64> = col
            .iter()
            .zip(base)
            .map(|(a, b)| a.time_s / b.time_s.max(1e-9))
            .collect();
        let ra: Vec<f64> = col
            .iter()
            .zip(base)
            .map(|(a, b)| a.area_reduction.max(1) as f64 / b.area_reduction.max(1) as f64)
            .collect();
        let rd: Vec<f64> = col
            .iter()
            .zip(base)
            .map(|(a, b)| a.delay.max(1) as f64 / b.delay.max(1) as f64)
            .collect();
        norm.push(format!("{:.4}", geomean(&rt)));
        norm.push(format!("{:.4}", geomean(&ra)));
        norm.push(format!("{:.4}", geomean(&rd)));
    }
    t.push_row(norm);

    Exhibit {
        id: "table3".into(),
        markdown: t.to_markdown(),
        runs,
    }
}

/// Fig. 2: conflict behaviour of the combined operator (ICCAD'18) versus
/// DACPara's split operators, swept over thread counts on the MtM set.
pub fn fig2(harness: &Harness) -> Exhibit {
    let suite = mtm_suite(harness.scale);
    let mut t = Table::new(
        format!(
            "Fig. 2: wasted work on conflicts (scale = {:?})",
            harness.scale
        ),
        &[
            "Benchmark",
            "Threads",
            "Engine",
            "Commits",
            "Aborts",
            "Conflicts",
            "Wasted %",
            "T(s)",
        ],
    );
    let mut runs = Vec::new();
    let mut threads = vec![1usize];
    let mut n = 2;
    while n <= harness.threads {
        threads.push(n);
        n *= 2;
    }
    for b in &suite {
        for &th in &threads {
            for engine in [Engine::Iccad18, Engine::DacPara] {
                let cfg = RewriteConfig::rewrite_op().with_threads(th);
                let r = harness.run_one(b, engine, &cfg);
                t.push_row(vec![
                    b.name.clone(),
                    th.to_string(),
                    r.engine.clone(),
                    (r.replacements + r.stale_skipped).to_string(),
                    r.aborts.to_string(),
                    r.conflicts.to_string(),
                    format!("{:.2}", r.wasted_fraction * 100.0),
                    fmt_s(r.time_s),
                ]);
                runs.push(r);
            }
        }
    }
    Exhibit {
        id: "fig2".into(),
        markdown: t.to_markdown(),
        runs,
    }
}

/// Fig. 3: how often replacement-time validation fires — stored cuts
/// revalidated by re-enumeration and stale results skipped (the ID-reuse
/// hazard the figure illustrates).
pub fn fig3(harness: &Harness) -> Exhibit {
    let suite = full_suite(harness.scale);
    let cfg = RewriteConfig::rewrite_op().with_threads(harness.threads);
    let mut t = Table::new(
        format!(
            "Fig. 3 companion: stored-cut validity outcomes in DACPara (scale = {:?})",
            harness.scale
        ),
        &[
            "Benchmark",
            "Replacements",
            "Revalidated",
            "Stale skipped",
            "AreaRed",
            "Equivalent",
        ],
    );
    let mut runs = Vec::new();
    for b in &suite {
        let r = harness.run_one(b, Engine::DacPara, &cfg);
        t.push_row(vec![
            b.name.clone(),
            r.replacements.to_string(),
            r.revalidated.to_string(),
            r.stale_skipped.to_string(),
            r.area_reduction.to_string(),
            r.equivalent.map(|b| b.to_string()).unwrap_or_default(),
        ]);
        runs.push(r);
    }
    Exhibit {
        id: "fig3".into(),
        markdown: t.to_markdown(),
        runs,
    }
}

/// Thread-scaling sweep: DACPara and ICCAD'18 wall-clock over thread
/// counts on the largest MtM benchmark (the axis behind the paper's 40-core
/// speedups; on few-core hosts this documents the available scaling).
pub fn speedup(harness: &Harness) -> Exhibit {
    let suite = mtm_suite(harness.scale);
    let bench = suite.last().expect("mtm suite non-empty");
    let mut t = Table::new(
        format!(
            "Speedup sweep on {} (scale = {:?})",
            bench.name, harness.scale
        ),
        &["Engine", "Threads", "T(s)", "Speedup vs 1T", "AreaRed"],
    );
    let mut runs = Vec::new();
    for engine in [Engine::DacPara, Engine::Iccad18] {
        let mut base = None;
        let mut th = 1usize;
        while th <= harness.threads.max(1) {
            let cfg = RewriteConfig::rewrite_op().with_threads(th);
            let r = harness.run_one(bench, engine, &cfg);
            let base_t = *base.get_or_insert(r.time_s);
            t.push_row(vec![
                r.engine.clone(),
                th.to_string(),
                fmt_s(r.time_s),
                format!("{:.2}x", base_t / r.time_s.max(1e-9)),
                r.area_reduction.to_string(),
            ]);
            runs.push(r);
            th *= 2;
        }
    }
    Exhibit {
        id: "speedup".into(),
        markdown: t.to_markdown(),
        runs,
    }
}

/// All six engines side by side on the MtM set — the extra exhibit beyond
/// the paper's tables (the partition engine is reference [15], included to
/// contrast coarse-grain with node-level parallelism).
pub fn engines(harness: &Harness) -> Exhibit {
    let suite = mtm_suite(harness.scale);
    let mut t = Table::new(
        format!(
            "All engines on the MtM set ({} threads, scale = {:?})",
            harness.threads, harness.scale
        ),
        &[
            "Benchmark",
            "Engine",
            "T(s)",
            "AreaRed",
            "Delay",
            "Repl",
            "Aborts",
            "Wasted %",
        ],
    );
    let mut runs = Vec::new();
    for b in &suite {
        for engine in Engine::ALL {
            let cfg = match engine {
                Engine::AbcRewrite => RewriteConfig::rewrite_op(),
                Engine::Dac22 | Engine::Tcad23 => {
                    RewriteConfig::drw_op().with_threads(harness.threads)
                }
                _ => RewriteConfig::rewrite_op().with_threads(harness.threads),
            };
            let r = harness.run_one(b, engine, &cfg);
            t.push_row(vec![
                b.name.clone(),
                r.engine.clone(),
                fmt_s(r.time_s),
                r.area_reduction.to_string(),
                r.delay.to_string(),
                r.replacements.to_string(),
                r.aborts.to_string(),
                format!("{:.2}", r.wasted_fraction * 100.0),
            ]);
            runs.push(r);
        }
    }
    Exhibit {
        id: "engines".into(),
        markdown: t.to_markdown(),
        runs,
    }
}

/// Ablations of the design choices called out in `DESIGN.md` §5.
pub fn ablations(harness: &Harness) -> Exhibit {
    let suite = arithmetic_suite(harness.scale);
    let bench: &Benchmark = suite
        .iter()
        .find(|b| b.name.starts_with("mult"))
        .expect("mult benchmark exists");
    let mtm = mtm_suite(harness.scale);
    let complex = &mtm[0];

    let base = RewriteConfig::rewrite_op().with_threads(harness.threads);
    let variants: Vec<(&str, &Benchmark, RewriteConfig)> = vec![
        ("baseline (P2)", bench, base.clone()),
        (
            "use_zeros",
            bench,
            RewriteConfig {
                use_zeros: true,
                ..base.clone()
            },
        ),
        (
            "cut_limit=8",
            bench,
            RewriteConfig {
                cut_limit: 8,
                ..base.clone()
            },
        ),
        (
            "structs=5",
            bench,
            RewriteConfig {
                max_structures: 5,
                ..base.clone()
            },
        ),
        (
            "no level partition",
            complex,
            RewriteConfig {
                level_partition: false,
                ..base.clone()
            },
        ),
        ("baseline (complex)", complex, base.clone()),
        (
            "no revalidation",
            complex,
            RewriteConfig {
                revalidate: false,
                ..base.clone()
            },
        ),
        (
            "222 classes",
            bench,
            RewriteConfig {
                num_classes: 222,
                ..base.clone()
            },
        ),
        (
            "refined library",
            bench,
            RewriteConfig {
                refined_library: true,
                ..base.clone()
            },
        ),
    ];

    let mut t = Table::new(
        format!("Ablations (DACPara, {} threads)", harness.threads),
        &[
            "Variant",
            "Benchmark",
            "T(s)",
            "AreaRed",
            "Delay",
            "Stale",
            "Revalidated",
        ],
    );
    let mut runs = Vec::new();
    for (name, b, cfg) in variants {
        let r = harness.run_one(b, Engine::DacPara, &cfg);
        t.push_row(vec![
            name.to_string(),
            b.name.clone(),
            fmt_s(r.time_s),
            r.area_reduction.to_string(),
            r.delay.to_string(),
            r.stale_skipped.to_string(),
            r.revalidated.to_string(),
        ]);
        runs.push(r);
    }
    Exhibit {
        id: "ablations".into(),
        markdown: t.to_markdown(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacpara_circuits::Scale;

    fn tiny() -> Harness {
        Harness {
            scale: Scale::Test,
            threads: 2,
            repeats: 1,
            check: false,
            sat_limit: 0,
        }
    }

    #[test]
    fn table1_lists_all_benchmarks() {
        let e = table1(&tiny());
        assert!(e.markdown.contains("sixteen"));
        assert!(e.markdown.contains("mult_"));
        assert!(e.markdown.matches('\n').count() > 12);
    }

    #[test]
    fn fig3_counts_validity_outcomes() {
        let mut h = tiny();
        h.check = true;
        h.sat_limit = 3_000;
        let e = fig3(&h);
        assert!(!e.runs.is_empty());
        assert!(e.runs.iter().all(|r| r.equivalent != Some(false)));
    }
}
