//! Criterion micro-benchmarks for the substrates: NPN canonicalization,
//! cut enumeration, evaluation, SAT solving and AIG surgery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dacpara::{evaluate_node, EvalContext, RewriteConfig};
use dacpara_aig::{Aig, AigRead};
use dacpara_circuits::arith;
use dacpara_cut::{CutConfig, CutStore};
use dacpara_equiv::{check_equivalence, CecConfig};
use dacpara_npn::{canon_uncached, Tt4};
use dacpara_nst::NpnLibrary;

fn bench_npn(c: &mut Criterion) {
    c.bench_function("npn/canon_uncached", |b| {
        let mut raw = 0x1357u16;
        b.iter(|| {
            raw = raw.wrapping_mul(0x9E37).wrapping_add(1);
            canon_uncached(Tt4::from_raw(raw))
        });
    });
}

fn bench_cuts(c: &mut Criterion) {
    let aig = arith::multiplier(8);
    c.bench_function("cut/enumerate_mult8", |b| {
        b.iter_batched(
            || CutStore::new(aig.slot_count(), CutConfig::unlimited()),
            |store| {
                for n in dacpara_aig::topo_ands(&aig) {
                    let _ = store.cuts(&aig, n);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_eval(c: &mut Criterion) {
    let aig = arith::multiplier(8);
    let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
    let ctx = EvalContext::new(&RewriteConfig {
        num_classes: 222,
        ..RewriteConfig::rewrite_op()
    });
    let _ = NpnLibrary::global(); // build outside the timer
    let nodes: Vec<_> = dacpara_aig::topo_ands(&aig);
    for &n in &nodes {
        let _ = store.cuts(&aig, n);
    }
    c.bench_function("eval/evaluate_mult8_all_nodes", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &n in &nodes {
                let cuts = store.cuts(&aig, n);
                if evaluate_node(&aig, n, &cuts, &ctx).is_some() {
                    found += 1;
                }
            }
            found
        });
    });
}

fn bench_sat(c: &mut Criterion) {
    let a = arith::adder(8);
    let b2 = arith::adder(8);
    c.bench_function("sat/cec_adder8", |b| {
        b.iter(|| check_equivalence(&a, &b2, &CecConfig::default()));
    });
}

fn bench_aig_surgery(c: &mut Criterion) {
    c.bench_function("aig/replace_cascade", |b| {
        b.iter_batched(
            || {
                let mut aig = Aig::new();
                let ins: Vec<_> = (0..16).map(|_| aig.add_input()).collect();
                let mut acc = ins[0];
                for w in ins.windows(2) {
                    let x = aig.add_xor(w[0], w[1]);
                    acc = aig.add_and(acc, x);
                }
                aig.add_output(acc);
                aig
            },
            |mut aig| {
                let victim = aig.and_ids().nth(5).expect("node exists");
                aig.replace(victim, dacpara_aig::Lit::TRUE);
                aig.cleanup();
                aig.num_ands()
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_npn, bench_cuts, bench_eval, bench_sat, bench_aig_surgery
}
criterion_main!(benches);
