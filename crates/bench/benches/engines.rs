//! Criterion benchmarks of the full rewriting engines — one group per
//! table of the paper (smoke-sized so `cargo bench` stays minutes-scale;
//! the real sweeps live in the `tables` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dacpara::{run_engine, Engine, RewriteConfig};
use dacpara_circuits::{mtm, MtmParams};

fn table2_engines(c: &mut Criterion) {
    let aig = mtm(&MtmParams {
        inputs: 48,
        gates: 3_000,
        outputs: 16,
        seed: 2024,
    });
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for (name, engine, threads) in [
        ("abc_rewrite_1t", Engine::AbcRewrite, 1usize),
        ("iccad18_2t", Engine::Iccad18, 2),
        ("dacpara_2t", Engine::DacPara, 2),
    ] {
        let cfg = RewriteConfig::rewrite_op().with_threads(threads);
        group.bench_function(name, |b| {
            b.iter_batched(
                || aig.clone(),
                |mut a| run_engine(&mut a, engine, &cfg).expect("engine succeeds"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn table3_engines(c: &mut Criterion) {
    let aig = mtm(&MtmParams {
        inputs: 48,
        gates: 3_000,
        outputs: 16,
        seed: 2025,
    });
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for (name, engine, cfg) in [
        ("dac22_static", Engine::Dac22, RewriteConfig::drw_op()),
        ("tcad23_static", Engine::Tcad23, RewriteConfig::drw_op()),
        ("dacpara_p1", Engine::DacPara, RewriteConfig::p1()),
        ("dacpara_p2", Engine::DacPara, RewriteConfig::rewrite_op()),
    ] {
        let cfg = cfg.with_threads(2);
        group.bench_function(name, |b| {
            b.iter_batched(
                || aig.clone(),
                |mut a| run_engine(&mut a, engine, &cfg).expect("engine succeeds"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, table2_engines, table3_engines);
criterion_main!(benches);
