//! Shared helpers for the workspace's examples and integration tests.

use dacpara_aig::{Aig, Lit};
use dacpara_equiv::simulate_words;

/// Exhaustively compares two graphs with at most six inputs by packing all
/// `2^n` assignments into a single 64-bit simulation word.
///
/// # Panics
///
/// Panics if either graph has more than six inputs or the interfaces
/// differ.
pub fn exhaustively_equivalent(a: &Aig, b: &Aig) -> bool {
    let n = a.num_inputs();
    assert!(n <= 6, "exhaustive check limited to 6 inputs");
    assert_eq!(n, b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    let words = elementary_words(n);
    let mask = if n == 6 {
        !0u64
    } else {
        (1u64 << (1 << n)) - 1
    };
    let oa = simulate_words(a, &words);
    let ob = simulate_words(b, &words);
    oa.iter().zip(&ob).all(|(x, y)| (x ^ y) & mask == 0)
}

/// The elementary simulation words: input `k` toggles with period `2^(k+1)`.
pub fn elementary_words(n: usize) -> Vec<u64> {
    const ELEM: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    ELEM[..n].to_vec()
}

/// A deterministic pseudo-random combinational circuit described by a
/// recipe of operations — used by the property tests to build the same
/// function twice (as an oracle and as an [`Aig`]).
#[derive(Clone, Debug)]
pub enum Op {
    /// AND of two earlier signals (indices with complement flags).
    And(usize, bool, usize, bool),
    /// XOR of two earlier signals.
    Xor(usize, bool, usize, bool),
    /// MUX of three earlier signals.
    Mux(usize, usize, usize),
}

/// Builds an AIG from a recipe over `n_inputs` inputs; the last `n_outputs`
/// signals become outputs. Signal 0.. are the inputs, then one signal per
/// op.
pub fn build_from_recipe(n_inputs: usize, ops: &[Op], n_outputs: usize) -> Aig {
    let mut aig = Aig::new();
    let mut signals: Vec<Lit> = (0..n_inputs).map(|_| aig.add_input()).collect();
    for op in ops {
        let sig = |i: usize, c: bool, signals: &[Lit]| signals[i % signals.len()].xor(c);
        let l = match *op {
            Op::And(i, ci, j, cj) => {
                let (a, b) = (sig(i, ci, &signals), sig(j, cj, &signals));
                aig.add_and(a, b)
            }
            Op::Xor(i, ci, j, cj) => {
                let (a, b) = (sig(i, ci, &signals), sig(j, cj, &signals));
                aig.add_xor(a, b)
            }
            Op::Mux(s, t, e) => {
                let (s, t, e) = (
                    sig(s, false, &signals),
                    sig(t, false, &signals),
                    sig(e, true, &signals),
                );
                aig.add_mux(s, t, e)
            }
        };
        signals.push(l);
    }
    for k in 0..n_outputs.max(1) {
        let idx = signals.len() - 1 - (k % signals.len());
        aig.add_output(signals[idx]);
    }
    aig
}

/// Evaluates the same recipe directly on bit-vectors (the oracle).
pub fn eval_recipe(n_inputs: usize, ops: &[Op], n_outputs: usize, inputs: &[u64]) -> Vec<u64> {
    assert_eq!(inputs.len(), n_inputs);
    let mut signals: Vec<u64> = inputs.to_vec();
    for op in ops {
        let sig = |i: usize, c: bool, signals: &[u64]| {
            let v = signals[i % signals.len()];
            if c {
                !v
            } else {
                v
            }
        };
        let v = match *op {
            Op::And(i, ci, j, cj) => sig(i, ci, &signals) & sig(j, cj, &signals),
            Op::Xor(i, ci, j, cj) => sig(i, ci, &signals) ^ sig(j, cj, &signals),
            Op::Mux(s, t, e) => {
                let sv = sig(s, false, &signals);
                sv & sig(t, false, &signals) | !sv & sig(e, true, &signals)
            }
        };
        signals.push(v);
    }
    (0..n_outputs.max(1))
        .map(|k| signals[signals.len() - 1 - (k % signals.len())])
        .collect()
}
