//! Std-only shim for the `criterion` API surface used by this workspace's
//! benches: benchmark groups, `iter`, `iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: a short warm-up, then `sample_size` timed samples;
//! the median, minimum and maximum are printed to stdout. No statistics
//! beyond that — the point is to keep `cargo bench` runnable offline with
//! believable relative numbers, not to replace criterion's analysis.

use std::time::{Duration, Instant};

/// How batched setup cost is amortized. The shim runs one routine call per
/// batch regardless; the variants exist for call-site compatibility.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (kept for call-site compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..3 {
            black_box(routine()); // warm-up
        }
        for _ in 0..self.requested {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.requested {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        requested: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = *b.samples.last().expect("non-empty");
    println!(
        "{name:<40} median {median:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        b.samples.len()
    );
}

/// Declares a runnable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        // Goes through the public surface; nothing to assert beyond
        // "does not panic and runs the closure".
        let mut runs = 0u32;
        c.bench_function("shim/iter", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs >= 5);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
