//! Case configuration, the deterministic case RNG, and test-case errors.

/// How many cases `proptest!` runs per property.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator (xoshiro256**): the stream depends only
/// on the test's path and the case index, so failures reproduce exactly.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the generator for `test_path` at `case`.
    pub fn deterministic(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ (u64::from(case) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform value in `0..bound` (`0` when `bound` is `0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_path_and_case_reproduces() {
        let mut a = TestRng::deterministic("mod::test", 3);
        let mut b = TestRng::deterministic("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("mod::test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::deterministic("t", 0);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(0), 0);
    }
}
