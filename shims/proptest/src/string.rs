//! String strategies from a small regex subset, mirroring proptest's
//! `&str`-as-strategy behaviour.
//!
//! Supported syntax: literal characters, `\n`/`\t`/`\r`/`\\` escapes,
//! character classes `[a-z0-9_]` (ranges + escapes), and the quantifiers
//! `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 32 repeats).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 32;

#[derive(Clone, Debug)]
enum Atom {
    /// A fixed character.
    Lit(char),
    /// A set of candidate characters.
    Class(Vec<char>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A compiled pattern usable as a `Strategy<Value = String>`.
#[derive(Clone, Debug)]
pub struct RegexStrategy {
    pieces: Vec<Piece>,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        _ => c,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let Some(c) = chars.next() else {
            panic!("unterminated character class in regex strategy");
        };
        match c {
            ']' => {
                if let Some(p) = pending {
                    set.push(p);
                }
                return set;
            }
            '\\' => {
                let e = chars.next().expect("dangling escape in character class");
                if let Some(p) = pending.replace(unescape(e)) {
                    set.push(p);
                }
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("checked above");
                let hi = match chars.next().expect("checked above") {
                    '\\' => unescape(chars.next().expect("dangling escape")),
                    other => other,
                };
                assert!(lo <= hi, "inverted range {lo:?}-{hi:?} in regex strategy");
                set.extend(lo..=hi);
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    set.push(p);
                }
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                Some((m, n)) => {
                    let m: u32 = m.trim().parse().expect("bad {m,n} quantifier");
                    let n: u32 = n.trim().parse().expect("bad {m,n} quantifier");
                    assert!(m <= n, "inverted {{m,n}} quantifier");
                    (m, n)
                }
                None => {
                    let m: u32 = body.trim().parse().expect("bad {m} quantifier");
                    (m, m)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

/// Compiles `pattern` into a generator.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
pub fn compile(pattern: &str) -> RegexStrategy {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Lit(unescape(chars.next().expect("dangling escape"))),
            other => Atom::Lit(other),
        };
        if let Atom::Class(set) = &atom {
            assert!(!set.is_empty(), "empty character class in regex strategy");
        }
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { atom, min, max });
    }
    RegexStrategy { pieces }
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let span = u64::from(piece.max - piece.min) + 1;
            let n = piece.min + rng.below(span) as u32;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        compile(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests", 0)
    }

    #[test]
    fn literals_emit_verbatim() {
        let mut r = rng();
        assert_eq!(compile("abc").generate(&mut r), "abc");
        assert_eq!(compile("a\\nb").generate(&mut r), "a\nb");
    }

    #[test]
    fn classes_and_counts() {
        let mut r = rng();
        for _ in 0..100 {
            let s = compile("[0-9]{1,3}").generate(&mut r);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_soup_shape() {
        let mut r = rng();
        for _ in 0..50 {
            let s = compile("[ -~\\n]{0,200}").generate(&mut r);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn aiger_header_shape() {
        let mut r = rng();
        for _ in 0..50 {
            let s =
                compile("aig [0-9]{1,3} [0-9]{1,2} 0 [0-9]{1,2} [0-9]{1,3}\\n").generate(&mut r);
            assert!(s.starts_with("aig "), "{s:?}");
            assert!(s.ends_with('\n'), "{s:?}");
            assert_eq!(s.split_whitespace().count(), 6, "{s:?}");
        }
    }

    #[test]
    fn star_plus_question() {
        let mut r = rng();
        for _ in 0..50 {
            let s = compile("x[ab]*y?z+").generate(&mut r);
            assert!(s.starts_with('x'), "{s:?}");
            assert!(s.ends_with('z'), "{s:?}");
        }
    }
}
