//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for vectors with lengths drawn from a range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = TestRng::deterministic("vec-len", 0);
        let s = vec(0..5u8, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn empty_capable_range_generates_empty() {
        let mut rng = TestRng::deterministic("vec-empty", 0);
        let s = vec(0..5u8, 0..64);
        assert!((0..200).any(|_| s.generate(&mut rng).is_empty()));
    }
}
