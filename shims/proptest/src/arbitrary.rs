//! `any::<T>()` — strategies for whole primitive domains.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Samples one value covering the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the entire domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::deterministic("any-bool", 0);
        let s = any::<bool>();
        let mut t = 0;
        for _ in 0..100 {
            if s.generate(&mut rng) {
                t += 1;
            }
        }
        assert!(t > 0 && t < 100);
    }

    #[test]
    fn any_u16_covers_high_bits() {
        let mut rng = TestRng::deterministic("any-u16", 0);
        let s = any::<u16>();
        assert!((0..100).any(|_| s.generate(&mut rng) > u16::MAX / 2));
    }
}
