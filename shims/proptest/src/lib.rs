//! Std-only shim for the `proptest` API surface used by this workspace.
//!
//! Provides the `proptest!` macro, range / tuple / vec / regex-string
//! strategies, `prop_oneof!`, `Just`, `any::<T>()`, `prop_assert*!` and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-case seed, so failures are reproducible; unlike the real crate there
//! is **no shrinking** and `proptest-regressions` files are ignored — the
//! failing inputs are printed in full instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Mirror of the real crate's `prop` re-export namespace
/// (`prop::collection::vec(...)` call sites).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// item expands to a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let mut inputs = String::new();
                $(
                    let value = ($strat).generate(&mut rng);
                    inputs.push_str(&format!(
                        "  {} = {:?}\n",
                        stringify!($pat),
                        value
                    ));
                    let $pat = value;
                )+
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {}/{} of {} failed: {}\ninputs:\n{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e,
                        inputs
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} of {} panicked; inputs:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            inputs
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property-test case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the enclosing property-test case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Picks uniformly between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
