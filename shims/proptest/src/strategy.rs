//! The [`Strategy`] trait and the combinators used in this workspace:
//! integer ranges, tuples, [`Just`], [`Union`] (`prop_oneof!`) and
//! `prop_map`.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy handle.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between strategies of a common value type
/// (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds the union; `options` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

impl<T> Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union(.. {} options ..)", self.options.len())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                self.start.wrapping_add((wide % width) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (3..9usize).generate(&mut r);
            assert!((3..9).contains(&x));
            let y = (0..24u8).generate(&mut r);
            assert!(y < 24);
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut r = rng();
        let s = (0..10u32, 0..10u32).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut r) < 20);
        }
    }

    #[test]
    fn just_clones_and_union_picks_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }
}
