//! Std-only shim for the `rand` 0.8 API surface used by this workspace:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is xoshiro256** seeded through splitmix64 — deterministic
//! for a given seed, like the real `StdRng`, though the exact streams
//! differ (all in-tree users only rely on *seeded determinism*, not on a
//! specific stream).

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that [`Rng::gen`] can produce uniformly ("Standard" distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let x = u128::sample(rng) % width;
                self.start.wrapping_add(x as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let width = self.end - self.start;
        // Double-width rejection is overkill for test workloads; modulo
        // bias at 2^128 width is negligible here.
        self.start + u128::sample(rng) % width
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..1u128 << 100);
            assert!(y < 1u128 << 100);
            let z = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn standard_covers_inferred_types() {
        let mut rng = StdRng::seed_from_u64(7);
        let _: bool = rng.gen();
        let _: u64 = rng.gen();
        let _: u128 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
