//! Std-backed shim for the `parking_lot` API surface used by this
//! workspace: `Mutex` and `RwLock` whose guards are acquired infallibly
//! (poisoning is transparently ignored, matching parking_lot semantics).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning `read`/`write`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new unlocked rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
