#!/usr/bin/env python3
"""Summarize results/*.json into the EXPERIMENTS.md recorded-results block.

Usage: python3 scripts/summarize_results.py [results_dir]

Prints a markdown summary; use `--write` to splice it between the
`<!-- results-summary:begin -->` / `<!-- results-summary:end -->` markers of
EXPERIMENTS.md.
"""

import json
import math
import sys
from pathlib import Path


def geomean(xs):
    xs = [max(x, 1e-12) for x in xs]
    if not xs:
        return float("nan")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def load(results_dir, name):
    path = results_dir / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def by_engine(runs):
    out = {}
    for r in runs:
        out.setdefault(r["engine"], {})[r["benchmark"]] = r
    return out


def summarize(results_dir: Path) -> str:
    lines = ["## Recorded results (auto-generated)", ""]

    t2 = load(results_dir, "table2")
    if t2:
        eng = by_engine(t2["runs"])
        dac = eng.get("dacpara", {})
        for other_name in ["abc-rewrite", "iccad18"]:
            other = eng.get(other_name, {})
            common = sorted(set(dac) & set(other))
            if not common:
                continue
            tr = geomean([other[b]["time_s"] / max(dac[b]["time_s"], 1e-9) for b in common])
            ar = geomean(
                [
                    max(other[b]["area_reduction"], 1) / max(dac[b]["area_reduction"], 1)
                    for b in common
                ]
            )
            lines.append(
                f"* **Table 2** {other_name} vs DACPara: time ratio {tr:.2f}x, "
                f"area-reduction ratio {ar:.4f} (paper: ABC 34.36x/1.0018, "
                f"ICCAD'18 1.96x/1.0056 — time ratios are core-count-bound, "
                f"see the scaling caveats)"
            )
        checks = [r.get("equivalent") for r in t2["runs"]]
        lines.append(
            f"* **Table 2** equivalence checks: {sum(1 for c in checks if c)} / "
            f"{len(checks)} passed (every run is checked; a failure aborts the harness)"
        )

    t3 = load(results_dir, "table3")
    if t3:
        eng = by_engine(t3["runs"])
        p2 = eng.get("dacpara", {})
        for name in ["dac22-static", "tcad23-static", "iccad18"]:
            other = eng.get(name, {})
            common = sorted(set(p2) & set(other))
            if not common:
                continue
            ar = geomean(
                [
                    max(other[b]["area_reduction"], 1) / max(p2[b]["area_reduction"], 1)
                    for b in common
                ]
            )
            lines.append(
                f"* **Table 3** {name} area-reduction ratio vs DACPara-P2: {ar:.4f} "
                f"(paper: DAC'22 0.9873, TCAD'23 0.9885 — i.e. the static methods "
                f"reduce ~1.1% less)"
            )

    f2 = load(results_dir, "fig2")
    if f2:
        eng = {}
        for r in f2["runs"]:
            eng.setdefault(r["engine"], []).append(r)
        for name, rs in sorted(eng.items()):
            multi = [r for r in rs if r["aborts"] + r["conflicts"] > 0]
            w = max((r["wasted_fraction"] for r in rs), default=0.0)
            lines.append(
                f"* **Fig. 2** {name}: max wasted-work fraction {w * 100:.2f}% "
                f"({len(multi)}/{len(rs)} runs saw conflicts)"
            )

    f3 = load(results_dir, "fig3")
    if f3:
        reval = sum(r["revalidated"] for r in f3["runs"])
        stale = sum(r["stale_skipped"] for r in f3["runs"])
        repl = sum(r["replacements"] for r in f3["runs"])
        lines.append(
            f"* **Fig. 3** across the suite: {repl} replacements committed, "
            f"{reval} stored cuts revalidated by re-enumeration, {stale} stale "
            f"results skipped (missed opportunities)"
        )

    ab = load(results_dir, "ablations")
    if ab:
        lines.append("* **Ablations**: see `results/ablations.md`.")

    sp = load(results_dir, "speedup")
    if sp:
        lines.append("* **Speedup sweep**: see `results/speedup.md`.")

    lines.append("")
    return "\n".join(lines)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    results_dir = Path(args[0]) if args else Path("results")
    text = summarize(results_dir)
    if "--write" in sys.argv:
        exp = Path("EXPERIMENTS.md")
        content = exp.read_text()
        begin = "<!-- results-summary:begin -->"
        end = "<!-- results-summary:end -->"
        pre, rest = content.split(begin, 1)
        _, post = rest.split(end, 1)
        exp.write_text(pre + begin + "\n" + text + end + post)
        print("EXPERIMENTS.md updated")
    else:
        print(text)


if __name__ == "__main__":
    main()
