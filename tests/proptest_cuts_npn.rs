//! Property tests spanning the cut, NPN and validity modules: every
//! enumerated cut must be verifiable against the live graph, and NPN
//! canonicalization must be orbit-invariant.

use dacpara::validity::verify_cut;
use dacpara_cut::{CutConfig, CutStore};
use dacpara_npn::{canon, NpnTransform, Tt4};
use dacpara_suite::{build_from_recipe, Op};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..64usize, any::<bool>(), 0..64usize, any::<bool>())
            .prop_map(|(i, ci, j, cj)| Op::And(i, ci, j, cj)),
        (0..64usize, any::<bool>(), 0..64usize, any::<bool>())
            .prop_map(|(i, ci, j, cj)| Op::Xor(i, ci, j, cj)),
        (0..64usize, 0..64usize, 0..64usize).prop_map(|(s, t, e)| Op::Mux(s, t, e)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every cut the enumerator produces is a real cut (the cover DFS
    /// closes at the leaves), and both the enumerated truth table and the
    /// structurally recomputed one agree with the circuit on every
    /// *reachable* leaf assignment.
    ///
    /// Strict table equality would be too strong: when one child cut's
    /// cover contains a node that is a leaf of the other child, the
    /// composed table and the cover-recomputed table may legitimately
    /// differ on unreachable minterms (satisfiability don't-cares of the
    /// correlated leaves). Rewriting with either table is sound, because
    /// replacements are only ever evaluated at reachable leaf values.
    #[test]
    fn enumerated_cuts_verify(
        ops in prop::collection::vec(op_strategy(), 1..30),
        limit in prop_oneof![Just(0usize), Just(4), Just(8)],
    ) {
        let aig = build_from_recipe(4, &ops, 2);
        let cfg = if limit == 0 { CutConfig::unlimited() } else { CutConfig::limited(limit) };
        let store = CutStore::new(aig.slot_count(), cfg);

        // Exhaustive node values over all 16 input assignments, one bit per
        // assignment, via the elementary tables.
        let mut values: Vec<Tt4> = vec![Tt4::FALSE; aig.slot_count()];
        for (k, &i) in dacpara_aig::AigRead::input_ids(&aig).iter().enumerate() {
            values[i.index()] = Tt4::var(k);
        }
        for n in dacpara_aig::topo_ands(&aig) {
            let [a, b] = dacpara_aig::AigRead::fanins(&aig, n);
            let va = if a.is_complement() { !values[a.node().index()] } else { values[a.node().index()] };
            let vb = if b.is_complement() { !values[b.node().index()] } else { values[b.node().index()] };
            values[n.index()] = va & vb;
        }

        for n in dacpara_aig::topo_ands(&aig) {
            let cuts = store.cuts(&aig, n);
            for cut in cuts.iter() {
                if cut.is_empty() {
                    continue;
                }
                let (_, tt2) = verify_cut(&aig, n, cut.leaves())
                    .expect("enumerated leaf set must be a cut");
                // On every reachable input assignment, both tables must
                // reproduce the node's actual value from the leaf values.
                for m in 0..16usize {
                    let mut leafm = 0usize;
                    for (i, l) in cut.leaves().iter().enumerate() {
                        leafm |= (values[l.index()].bit(m) as usize) << i;
                    }
                    let actual = values[n.index()].bit(m);
                    prop_assert_eq!(
                        cut.tt().bit(leafm), actual,
                        "enumerated tt, cut {:?} of {:?}, input minterm {}",
                        cut.leaves(), n, m
                    );
                    prop_assert_eq!(
                        tt2.bit(leafm), actual,
                        "recomputed tt, cut {:?} of {:?}, input minterm {}",
                        cut.leaves(), n, m
                    );
                }
            }
        }
    }

    /// NPN canonicalization is constant on orbits and the reported
    /// transform actually achieves the canonical form.
    #[test]
    fn npn_canon_orbit_invariant(raw in any::<u16>(), perm in 0..24u8, neg in 0..16u8, out in any::<bool>()) {
        let f = Tt4::from_raw(raw);
        let t = NpnTransform { perm, input_neg: neg, output_neg: out };
        let g = t.apply(f);
        let (cf, tf) = canon(f);
        let (cg, _) = canon(g);
        prop_assert_eq!(cf, cg);
        prop_assert_eq!(tf.apply(f), cf);
    }

    /// The wiring of a transform inverts its application.
    #[test]
    fn npn_wiring_inverts(raw in any::<u16>(), perm in 0..24u8, neg in 0..16u8, out in any::<bool>()) {
        let f = Tt4::from_raw(raw);
        let t = NpnTransform { perm, input_neg: neg, output_neg: out };
        let g = t.apply(f);
        let (wiring, out_neg) = t.wire();
        for m in 0..16usize {
            let xs = [m & 1 != 0, m >> 1 & 1 != 0, m >> 2 & 1 != 0, m >> 3 & 1 != 0];
            let ys: [bool; 4] = std::array::from_fn(|j| {
                let (leaf, n) = wiring[j];
                xs[leaf] ^ n
            });
            prop_assert_eq!(g.eval(ys) ^ out_neg, f.eval(xs));
        }
    }

    /// Structure-library entries compute their representative under any
    /// leaf functions (not just the elementary ones).
    #[test]
    fn structures_compose_on_arbitrary_leaves(
        class_pick in any::<u16>(),
        l0 in any::<u16>(), l1 in any::<u16>(), l2 in any::<u16>(), l3 in any::<u16>(),
    ) {
        let reg = dacpara_npn::ClassRegistry::global();
        let lib = dacpara_nst::NpnLibrary::global();
        let class = reg.class_of(Tt4::from_raw(class_pick));
        let rep = reg.representative(class);
        let leaves = [
            Tt4::from_raw(l0), Tt4::from_raw(l1), Tt4::from_raw(l2), Tt4::from_raw(l3),
        ];
        for s in lib.structures(class).iter().take(3) {
            // Composing rep with the leaf functions must equal simulating
            // the structure over them.
            let direct = s.simulate(leaves);
            let mut composed = 0u16;
            for m in 0..16u16 {
                let assignment = [
                    leaves[0].raw() >> m & 1 != 0,
                    leaves[1].raw() >> m & 1 != 0,
                    leaves[2].raw() >> m & 1 != 0,
                    leaves[3].raw() >> m & 1 != 0,
                ];
                if rep.eval(assignment) {
                    composed |= 1 << m;
                }
            }
            prop_assert_eq!(direct, Tt4::from_raw(composed));
        }
    }
}
