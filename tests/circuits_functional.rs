//! Integration: the benchmark generators compute the arithmetic they claim
//! to, cross-checked against native Rust arithmetic over many random
//! operand pairs (widths beyond what the per-crate unit tests cover).

use dacpara_aig::Aig;
use dacpara_equiv::simulate_bools;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn eval(aig: &Aig, inputs: u128, n_in: usize) -> u128 {
    let bits: Vec<bool> = (0..n_in).map(|k| inputs >> k & 1 != 0).collect();
    let out = simulate_bools(aig, &bits);
    out.iter()
        .enumerate()
        .fold(0u128, |acc, (k, &b)| acc | (b as u128) << k)
}

#[test]
fn multiplier_16_matches_native() {
    let aig = dacpara_circuits::arith::multiplier(16);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..40 {
        let a = rng.gen_range(0..1u128 << 16);
        let b = rng.gen_range(0..1u128 << 16);
        assert_eq!(eval(&aig, a | b << 16, 32), a * b, "{a} * {b}");
    }
}

#[test]
fn divider_10_matches_native() {
    let aig = dacpara_circuits::arith::divider(10);
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..25 {
        let a = rng.gen_range(0..1u128 << 10);
        let b = rng.gen_range(1..1u128 << 10);
        let got = eval(&aig, a | b << 10, 20);
        let expect = (a / b) | (a % b) << 10;
        assert_eq!(got, expect, "{a} / {b}");
    }
}

#[test]
fn sqrt_8_matches_native() {
    let aig = dacpara_circuits::arith::sqrt(8);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..40 {
        let a = rng.gen_range(0..1u128 << 16);
        let got = eval(&aig, a, 16);
        assert_eq!(got, (a as f64).sqrt().floor() as u128, "sqrt({a})");
    }
}

#[test]
fn hypotenuse_8_matches_native() {
    let aig = dacpara_circuits::arith::hypotenuse(8);
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..25 {
        let x = rng.gen_range(0..1u128 << 8);
        let y = rng.gen_range(0..1u128 << 8);
        let got = eval(&aig, x | y << 8, 16);
        let expect = ((x * x + y * y) as f64).sqrt().floor() as u128;
        assert_eq!(got, expect, "hyp({x},{y})");
    }
}

#[test]
fn voter_101_matches_popcount() {
    let aig = dacpara_circuits::control::voter(101);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..10 {
        let bits: Vec<bool> = (0..101).map(|_| rng.gen()).collect();
        let ones = bits.iter().filter(|&&b| b).count();
        let out = simulate_bools(&aig, &bits)[0];
        assert_eq!(out, ones > 50, "popcount {ones}");
    }
}

#[test]
fn doubling_preserves_per_copy_function() {
    let base = dacpara_circuits::arith::adder(6);
    let doubled = dacpara_circuits::double(&base);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..10 {
        let a = rng.gen_range(0..1u128 << 6);
        let b = rng.gen_range(0..1u128 << 6);
        let single = eval(&base, a | b << 6, 12);
        // Feed the same operands to both copies.
        let packed = (a | b << 6) | (a | b << 6) << 12;
        let both = eval(&doubled, packed, 24);
        let w = base.num_outputs();
        assert_eq!(both & ((1 << w) - 1), single);
        assert_eq!(both >> w, single);
    }
}
