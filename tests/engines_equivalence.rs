//! Integration: every rewriting engine preserves functional equivalence on
//! every benchmark family, at test scale, across thread counts.

use dacpara::{run_engine, Engine, RewriteConfig};
use dacpara_circuits::{full_suite, Scale};
use dacpara_equiv::{check_equivalence, random_sim_check, CecConfig, CecResult, SimOutcome};

fn check(golden: &dacpara_aig::Aig, rewritten: &dacpara_aig::Aig, label: &str) {
    use dacpara_aig::AigRead;
    if golden.num_ands() + rewritten.num_ands() < 4_000 {
        assert_eq!(
            check_equivalence(golden, rewritten, &CecConfig::default()),
            CecResult::Equivalent,
            "{label}"
        );
    } else {
        assert_eq!(
            random_sim_check(golden, rewritten, 24, 0xEDA),
            SimOutcome::NoDifferenceFound,
            "{label}"
        );
    }
}

#[test]
fn all_engines_on_the_test_suite() {
    use dacpara_aig::AigRead;
    let suite = full_suite(Scale::Test);
    for bench in &suite {
        for engine in Engine::ALL {
            let cfg = match engine {
                Engine::AbcRewrite => RewriteConfig::rewrite_op(),
                Engine::Dac22 | Engine::Tcad23 => RewriteConfig::drw_op().with_threads(2),
                _ => RewriteConfig::rewrite_op().with_threads(2),
            };
            let mut aig = bench.aig.clone();
            let stats = run_engine(&mut aig, engine, &cfg)
                .unwrap_or_else(|e| panic!("{engine} failed on {}: {e}", bench.name));
            aig.check()
                .unwrap_or_else(|e| panic!("{engine} corrupted {}: {e}", bench.name));
            assert!(
                aig.num_ands() <= bench.aig.num_ands(),
                "{engine} grew {}",
                bench.name
            );
            assert!(
                stats.delay_after <= stats.delay_before,
                "{engine} deepened {} ({} -> {})",
                bench.name,
                stats.delay_before,
                stats.delay_after
            );
            check(&bench.aig, &aig, &format!("{engine} on {}", bench.name));
        }
    }
}

#[test]
fn dacpara_thread_sweep_is_sound() {
    let suite = full_suite(Scale::Test);
    let bench = suite
        .iter()
        .find(|b| b.name == "twentythree")
        .expect("mtm benchmark");
    for threads in [1, 2, 4, 8] {
        let mut aig = bench.aig.clone();
        let cfg = RewriteConfig::rewrite_op().with_threads(threads);
        let stats = run_engine(&mut aig, Engine::DacPara, &cfg).unwrap();
        aig.check().unwrap();
        assert!(stats.area_after <= stats.area_before, "threads = {threads}");
        check(&bench.aig, &aig, &format!("dacpara x{threads}"));
    }
}

#[test]
fn repeated_passes_reach_a_fixpoint_neighborhood() {
    use dacpara_aig::AigRead;
    let suite = full_suite(Scale::Test);
    let bench = &suite[0];
    let mut aig = bench.aig.clone();
    let cfg = RewriteConfig::rewrite_op().with_threads(2);
    let mut areas = Vec::new();
    for _ in 0..3 {
        run_engine(&mut aig, Engine::DacPara, &cfg).unwrap();
        areas.push(aig.num_ands());
    }
    assert!(areas[0] >= areas[1] && areas[1] >= areas[2], "{areas:?}");
    check(&bench.aig, &aig, "three dacpara passes");
}
