//! Property test: the CDCL solver agrees with brute-force enumeration on
//! random small CNF formulas, both on satisfiability and on model validity.

use dacpara_equiv::{CLit, SatResult, Solver};
use proptest::prelude::*;

type Clause = Vec<(u8, bool)>;

fn clause_strategy(num_vars: u8) -> impl Strategy<Value = Clause> {
    prop::collection::vec((0..num_vars, any::<bool>()), 1..4)
}

fn brute_force_sat(num_vars: u8, clauses: &[Clause]) -> bool {
    for assignment in 0u32..1 << num_vars {
        let ok = clauses
            .iter()
            .all(|c| c.iter().any(|&(v, neg)| (assignment >> v & 1 == 1) != neg));
        if ok {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_matches_brute_force(
        num_vars in 1u8..10,
        clauses in prop::collection::vec(clause_strategy(9), 1..40),
    ) {
        // Clamp variables into range.
        let clauses: Vec<Clause> = clauses
            .into_iter()
            .map(|c| c.into_iter().map(|(v, n)| (v % num_vars, n)).collect())
            .collect();
        let expect = brute_force_sat(num_vars, &clauses);

        let mut solver = Solver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        let mut consistent = true;
        for c in &clauses {
            let lits: Vec<CLit> = c.iter().map(|&(v, n)| CLit::new(v as u32, n)).collect();
            if !solver.add_clause(&lits) {
                consistent = false;
                break;
            }
        }
        let got = consistent && solver.solve() == SatResult::Sat;
        prop_assert_eq!(got, expect);

        if got {
            // The model must satisfy every clause.
            for c in &clauses {
                prop_assert!(c.iter().any(|&(v, n)| {
                    solver.value(v as u32).unwrap_or(false) != n
                }), "model violates {:?}", c);
            }
        }
    }
}
