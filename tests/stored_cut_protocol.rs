//! Integration: the §4.4 stored-cut validity protocol, driven end to end
//! through the public API — the executable version of the paper's Fig. 3.

use dacpara::validity::{cut_cover, verify_cut};
use dacpara::{build_replacement, evaluate_node, reevaluate_structure, EvalContext, RewriteConfig};
use dacpara_aig::{Aig, AigRead};
use dacpara_cut::{CutConfig, CutStore};
use dacpara_npn::ClassRegistry;
use dacpara_nst::NpnLibrary;

fn ctx() -> EvalContext {
    EvalContext::new(&RewriteConfig {
        num_classes: 222,
        use_zeros: true,
        preserve_level: false,
        ..RewriteConfig::rewrite_op()
    })
}

/// A consumer above a rewritable cone; returns (aig, consumer node, cone root).
fn scene() -> (Aig, dacpara_aig::NodeId, dacpara_aig::NodeId) {
    let mut aig = Aig::new();
    let a = aig.add_input();
    let b = aig.add_input();
    let c = aig.add_input();
    let d = aig.add_input();
    let or = aig.add_or(b, c);
    let an = aig.add_and(b, c);
    let root = aig.add_mux(a, or, an);
    let n2 = aig.add_and(root, d);
    aig.add_output(n2);
    (aig, n2.node(), root.node())
}

#[test]
fn fresh_leaves_keep_stored_results_valid() {
    let (aig, n2, _) = scene();
    let store = CutStore::new(aig.slot_count() * 2, CutConfig::unlimited());
    let cuts = store.cuts(&aig, n2);
    let stored = evaluate_node(&aig, n2, &cuts, &ctx()).expect("candidate stored");
    // Nothing changed: every leaf generation matches, the cut re-verifies
    // to the same function, and re-evaluation reproduces the gain.
    for (&l, &g) in stored.leaves.iter().zip(&stored.leaf_gens) {
        assert!(aig.is_alive(l));
        assert_eq!(aig.generation(l), g);
    }
    let (_, tt) = verify_cut(&aig, n2, &stored.leaves).expect("still a cut");
    assert_eq!(tt, stored.tt);
    let re = reevaluate_structure(&aig, n2, &stored, &ctx());
    assert_eq!(re.gain, stored.gain);
}

#[test]
fn rewriting_the_cone_invalidates_deep_stored_cuts() {
    let (mut aig, n2, root) = scene();
    let store = CutStore::new(aig.slot_count() * 4, CutConfig::unlimited());

    // Store the deepest candidate for n2 (its cut reaches into the cone).
    let cuts = store.cuts(&aig, n2);
    let deep_cut = cuts
        .iter()
        .filter(|c| c.len() >= 2)
        .max_by_key(|c| c.leaves().iter().map(|l| l.raw()).max().unwrap_or(0))
        .copied()
        .expect("a non-trivial cut");
    let interior: Vec<_> = deep_cut
        .leaves()
        .iter()
        .copied()
        .filter(|l| aig.is_and(*l))
        .collect();
    let stored_gens: Vec<u32> = deep_cut
        .leaves()
        .iter()
        .map(|&l| aig.generation(l))
        .collect();

    // Rewrite the cone below: the 5-gate mux-majority becomes 4 gates.
    let root_cuts = store.cuts(&aig, root);
    let cand = evaluate_node(&aig, root, &root_cuts, &ctx()).expect("cone is improvable");
    assert!(cand.gain > 0);
    let new_root = build_replacement(&mut aig, &cand, NpnLibrary::global()).unwrap();
    aig.replace(root, new_root);
    aig.check().unwrap();

    // If the deep cut had interior (AND-node) leaves, at least one must now
    // be dead or generation-bumped — exactly the staleness the replacement
    // stage must detect.
    if !interior.is_empty() {
        let still_fresh = deep_cut
            .leaves()
            .iter()
            .zip(&stored_gens)
            .all(|(&l, &g)| aig.is_alive(l) && aig.generation(l) == g);
        assert!(
            !still_fresh,
            "rewriting the cone must invalidate cuts into it"
        );
    }

    // The protocol must reach a sound verdict either way: re-verification
    // never silently returns the stale function under a changed class.
    match verify_cut(&aig, n2, deep_cut.leaves()) {
        None => {} // no longer a cut — dropped
        Some((cover, tt)) => {
            // If the leaf set still cuts n2, the recomputed function is the
            // ground truth; comparing its class against the stored class is
            // exactly the paper's acceptance test.
            let reg = ClassRegistry::global();
            let _usable = reg.class_of(tt) == reg.class_of(deep_cut.tt());
            assert!(!cover.is_empty());
        }
    }
}

#[test]
fn cover_stays_inside_the_cone() {
    let (aig, n2, _) = scene();
    let store = CutStore::new(aig.slot_count(), CutConfig::unlimited());
    let cuts = store.cuts(&aig, n2);
    for cut in cuts.iter().filter(|c| c.len() >= 2) {
        let cover = cut_cover(&aig, n2, cut.leaves()).expect("enumerated cuts verify");
        // Every cover node is in the transitive fanin of n2 and is not a leaf.
        let tfi = dacpara_aig::transitive_fanin(&aig, &[n2]);
        for c in &cover {
            assert!(tfi.contains(c));
            assert!(!cut.leaves().contains(c));
        }
        // The root is always in its own cover.
        assert!(cover.contains(&n2));
    }
}
