//! Property tests of the AIG substrate: construction semantics, AIGER
//! round trips, replacement cascades, and structural invariants.

use dacpara_aig::{aiger, AigRead, Lit};
use dacpara_suite::{build_from_recipe, elementary_words, eval_recipe, Op};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..64usize, any::<bool>(), 0..64usize, any::<bool>())
            .prop_map(|(i, ci, j, cj)| Op::And(i, ci, j, cj)),
        (0..64usize, any::<bool>(), 0..64usize, any::<bool>())
            .prop_map(|(i, ci, j, cj)| Op::Xor(i, ci, j, cj)),
        (0..64usize, 0..64usize, 0..64usize).prop_map(|(s, t, e)| Op::Mux(s, t, e)),
    ]
}

fn recipe() -> impl Strategy<Value = (usize, Vec<Op>, usize)> {
    (
        2..6usize,
        prop::collection::vec(op_strategy(), 1..40),
        1..4usize,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Folding + structural hashing never change the computed function.
    #[test]
    fn construction_matches_oracle((n_in, ops, n_out) in recipe()) {
        let aig = build_from_recipe(n_in, &ops, n_out);
        aig.check().unwrap();
        let words = elementary_words(n_in);
        let expect = eval_recipe(n_in, &ops, n_out, &words);
        let got = dacpara_equiv::simulate_words(&aig, &words);
        let mask = if n_in == 6 { !0u64 } else { (1u64 << (1 << n_in)) - 1 };
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!(g & mask, e & mask);
        }
    }

    /// Writing and re-reading AIGER preserves structure and function.
    #[test]
    fn aiger_roundtrip((n_in, ops, n_out) in recipe()) {
        let aig = build_from_recipe(n_in, &ops, n_out);
        let text = aiger::to_string(&aig);
        let back = aiger::parse(&text).unwrap();
        back.check().unwrap();
        prop_assert_eq!(back.num_ands(), aig.num_ands());
        prop_assert!(dacpara_suite::exhaustively_equivalent(&aig, &back));
    }

    /// The binary AIGER encoding round trips to the identical graph.
    #[test]
    fn binary_aiger_roundtrip((n_in, ops, n_out) in recipe()) {
        let aig = build_from_recipe(n_in, &ops, n_out);
        let mut buf = Vec::new();
        aiger::write_binary(&aig, &mut buf).unwrap();
        let back = aiger::read_binary(&buf[..]).unwrap();
        back.check().unwrap();
        prop_assert_eq!(back.num_ands(), aig.num_ands());
        prop_assert!(dacpara_suite::exhaustively_equivalent(&aig, &back));
    }

    /// The BLIF writer/reader round trips structure and function.
    #[test]
    fn blif_roundtrip((n_in, ops, n_out) in recipe()) {
        let aig = build_from_recipe(n_in, &ops, n_out);
        let text = dacpara_aig::blif::to_string(&aig, "prop");
        let back = dacpara_aig::blif::parse(&text).unwrap();
        back.check().unwrap();
        prop_assert_eq!(back.num_ands(), aig.num_ands());
        prop_assert!(dacpara_suite::exhaustively_equivalent(&aig, &back));
    }

    /// Replacing a node by a constant keeps the graph canonical, and a
    /// subsequent cleanup removes all dangling logic.
    #[test]
    fn replace_by_constant_keeps_invariants(
        (n_in, ops, n_out) in recipe(),
        pick in 0..1000usize,
        which in any::<bool>(),
    ) {
        let mut aig = build_from_recipe(n_in, &ops, n_out);
        let ands: Vec<_> = aig.and_ids().collect();
        if ands.is_empty() {
            return Ok(());
        }
        let victim = ands[pick % ands.len()];
        aig.replace(victim, if which { Lit::TRUE } else { Lit::FALSE });
        aig.check().unwrap();
        aig.cleanup();
        aig.check().unwrap();
    }

    /// Replacing a node with one of its fanins cascades correctly.
    #[test]
    fn replace_by_fanin_keeps_invariants(
        (n_in, ops, n_out) in recipe(),
        pick in 0..1000usize,
        side in any::<bool>(),
    ) {
        let mut aig = build_from_recipe(n_in, &ops, n_out);
        let ands: Vec<_> = aig.and_ids().collect();
        if ands.is_empty() {
            return Ok(());
        }
        let victim = ands[pick % ands.len()];
        let [a, b] = aig.fanins(victim);
        aig.replace(victim, if side { a } else { b });
        aig.check().unwrap();
        aig.cleanup();
        aig.check().unwrap();
    }

    /// `ConcurrentAig` round trips preserve structure and function.
    #[test]
    fn concurrent_roundtrip((n_in, ops, n_out) in recipe()) {
        let aig = build_from_recipe(n_in, &ops, n_out);
        let shared = dacpara_aig::concurrent::ConcurrentAig::from_aig(&aig, 1.25).unwrap();
        shared.check().unwrap();
        let back = shared.to_aig();
        prop_assert_eq!(back.num_ands(), aig.num_ands());
        prop_assert!(dacpara_suite::exhaustively_equivalent(&aig, &back));
    }
}
