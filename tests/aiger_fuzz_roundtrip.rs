//! AIGER round trips driven by the fuzz generator, plus the latch-free
//! edge shapes `parser_robustness.rs` never exercises: constant outputs,
//! outputs wired straight to (possibly complemented) inputs, dangling
//! inputs, and duplicate output literals. Every circuit must survive both
//! the ASCII and the binary encoding with identical structure and function.

use dacpara_aig::{aiger, Aig, AigRead, Lit};
use dacpara_equiv::{check_equivalence_budgeted, CecBudget, CecResult};
use dacpara_fuzz::gen::{generate, GenConfig};
use dacpara_fuzz::mutate::mutate;
use dacpara_suite::exhaustively_equivalent;
use proptest::prelude::*;

/// Round-trips `aig` through one encoding and checks structure + function.
fn assert_roundtrip(aig: &Aig, binary: bool) {
    let back = if binary {
        let mut buf = Vec::new();
        aiger::write_binary(aig, &mut buf).unwrap();
        aiger::read_binary(&buf[..]).unwrap()
    } else {
        aiger::parse(&aiger::to_string(aig)).unwrap()
    };
    back.check().unwrap();
    assert_eq!(back.num_inputs(), aig.num_inputs());
    assert_eq!(back.num_outputs(), aig.num_outputs());
    assert_eq!(back.num_ands(), aig.num_ands());
    if aig.num_inputs() <= 6 {
        assert!(exhaustively_equivalent(aig, &back));
    } else {
        assert!(matches!(
            check_equivalence_budgeted(aig, &back, &CecBudget::fuzzing()),
            CecResult::Equivalent | CecResult::Undecided
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generator output round-trips through both encodings.
    #[test]
    fn generated_circuits_roundtrip(seed in any::<u64>()) {
        let aig = generate(&GenConfig::small(), seed);
        assert_roundtrip(&aig, false);
        assert_roundtrip(&aig, true);
    }

    /// Mutants (which reach degenerate shapes the generator avoids —
    /// constant cones, bypassed gates, duplicate outputs) round-trip too.
    #[test]
    fn mutated_circuits_roundtrip(seed in any::<u64>(), ops in 1..5usize) {
        let aig = mutate(&generate(&GenConfig::small(), seed), ops, seed ^ 0xA16E5);
        assert_roundtrip(&aig, false);
        assert_roundtrip(&aig, true);
    }
}

/// Constant outputs (both polarities), in isolation and mixed with logic.
#[test]
fn constant_outputs_roundtrip() {
    let mut aig = Aig::new();
    let a = aig.add_input();
    let b = aig.add_input();
    let ab = aig.add_and(a, b);
    aig.add_output(Lit::FALSE);
    aig.add_output(Lit::TRUE);
    aig.add_output(ab);
    aig.check().unwrap();
    assert_roundtrip(&aig, false);
    assert_roundtrip(&aig, true);
}

/// Outputs wired straight to inputs, complemented and not, plus the same
/// input exported twice — no AND nodes at all.
#[test]
fn passthrough_outputs_roundtrip() {
    let mut aig = Aig::new();
    let a = aig.add_input();
    let b = aig.add_input();
    aig.add_output(a);
    aig.add_output(!b);
    aig.add_output(a);
    aig.check().unwrap();
    assert_eq!(aig.num_ands(), 0);
    assert_roundtrip(&aig, false);
    assert_roundtrip(&aig, true);
}

/// Dangling inputs (declared but never read) must survive the encodings —
/// the interface is part of the function.
#[test]
fn dangling_inputs_roundtrip() {
    let mut aig = Aig::new();
    let a = aig.add_input();
    let _unused = aig.add_input();
    let _unused_too = aig.add_input();
    aig.add_output(!a);
    aig.check().unwrap();
    assert_eq!(aig.num_inputs(), 3);
    assert_roundtrip(&aig, false);
    assert_roundtrip(&aig, true);
}

/// A single constant-false output and nothing else — the smallest legal
/// AIGER file this workspace can produce.
#[test]
fn minimal_constant_circuit_roundtrips() {
    let mut aig = Aig::new();
    aig.add_output(Lit::FALSE);
    aig.check().unwrap();
    assert_roundtrip(&aig, false);
    assert_roundtrip(&aig, true);
}
