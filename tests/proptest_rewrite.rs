//! Property tests of rewriting itself: on random circuits with at most six
//! inputs, every engine's output is *exhaustively* equivalent to its input
//! (all 2^n assignments in one simulation word).

use dacpara::{run_engine, Engine, RewriteConfig, RewriteSession, SchedulerKind};
use dacpara_suite::{build_from_recipe, exhaustively_equivalent, Op};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..64usize, any::<bool>(), 0..64usize, any::<bool>())
            .prop_map(|(i, ci, j, cj)| Op::And(i, ci, j, cj)),
        (0..64usize, any::<bool>(), 0..64usize, any::<bool>())
            .prop_map(|(i, ci, j, cj)| Op::Xor(i, ci, j, cj)),
        (0..64usize, 0..64usize, 0..64usize).prop_map(|(s, t, e)| Op::Mux(s, t, e)),
    ]
}

fn small_circuit() -> impl Strategy<Value = (usize, Vec<Op>, usize)> {
    (
        3..6usize,
        prop::collection::vec(op_strategy(), 4..48),
        1..4usize,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serial_rewrite_is_exhaustively_sound((n_in, ops, n_out) in small_circuit()) {
        let golden = build_from_recipe(n_in, &ops, n_out);
        let mut aig = golden.clone();
        let cfg = RewriteConfig { num_classes: 222, ..RewriteConfig::rewrite_op() };
        run_engine(&mut aig, Engine::AbcRewrite, &cfg).unwrap();
        aig.check().unwrap();
        prop_assert!(exhaustively_equivalent(&golden, &aig));
    }

    #[test]
    fn dacpara_is_exhaustively_sound((n_in, ops, n_out) in small_circuit()) {
        let golden = build_from_recipe(n_in, &ops, n_out);
        let mut aig = golden.clone();
        let cfg = RewriteConfig { num_classes: 222, ..RewriteConfig::rewrite_op() }
            .with_threads(2);
        run_engine(&mut aig, Engine::DacPara, &cfg).unwrap();
        aig.check().unwrap();
        prop_assert!(exhaustively_equivalent(&golden, &aig));
    }

    #[test]
    fn lockstep_is_exhaustively_sound((n_in, ops, n_out) in small_circuit()) {
        let golden = build_from_recipe(n_in, &ops, n_out);
        let mut aig = golden.clone();
        let cfg = RewriteConfig { num_classes: 222, ..RewriteConfig::rewrite_op() }
            .with_threads(2);
        run_engine(&mut aig, Engine::Iccad18, &cfg).unwrap();
        aig.check().unwrap();
        prop_assert!(exhaustively_equivalent(&golden, &aig));
    }

    #[test]
    fn static_engines_are_exhaustively_sound((n_in, ops, n_out) in small_circuit()) {
        let golden = build_from_recipe(n_in, &ops, n_out);
        for engine in [Engine::Dac22, Engine::Tcad23] {
            let mut aig = golden.clone();
            let cfg = RewriteConfig::drw_op().with_threads(2);
            run_engine(&mut aig, engine, &cfg).unwrap();
            aig.check().unwrap();
            prop_assert!(exhaustively_equivalent(&golden, &aig), "{engine}");
        }
    }

    /// Across thread counts, both worklist schedulers and multi-pass
    /// sessions, speculation accounting stays exact: every attempted
    /// activity ends in exactly one commit or abort, the barrier scheduler
    /// never reports stealing activity, and once a pass converges the
    /// dirty set stays empty so later passes skip at least as many clean
    /// nodes.
    #[test]
    fn scheduler_accounting_is_exact_across_passes(
        (n_in, ops, n_out) in small_circuit(),
        t_idx in 0..3usize,
        steal in any::<bool>(),
        passes in 1..4usize,
    ) {
        let threads = [1usize, 2, 4][t_idx];
        let sched = if steal { SchedulerKind::Steal } else { SchedulerKind::Barrier };
        let golden = build_from_recipe(n_in, &ops, n_out);
        for engine in [Engine::DacPara, Engine::Iccad18] {
            let cfg = RewriteConfig { num_classes: 222, ..RewriteConfig::rewrite_op() }
                .with_threads(threads)
                .with_scheduler(sched);
            let mut session = RewriteSession::new(&golden, &cfg).unwrap();
            let mut history = Vec::new();
            for _ in 0..passes {
                let stats = session.run(engine).unwrap();
                prop_assert_eq!(
                    stats.spec.commits + stats.spec.aborts,
                    stats.spec.attempts,
                    "{} x{} {}: attempt accounting", engine, threads, sched
                );
                if sched == SchedulerKind::Barrier {
                    prop_assert_eq!(
                        stats.sched.steals + stats.sched.retries + stats.sched.retry_commits,
                        0,
                        "{}: barrier scheduler reported stealing activity", engine
                    );
                }
                history.push((session.converged(), stats.clean_skipped));
            }
            let aig = session.finish();
            aig.check().unwrap();
            prop_assert!(exhaustively_equivalent(&golden, &aig), "{}", engine);
            for w in history.windows(2) {
                if w[0].0 {
                    prop_assert!(
                        w[1].1 >= w[0].1,
                        "{}: clean_skipped shrank after convergence ({} -> {})",
                        engine, w[0].1, w[1].1
                    );
                }
            }
        }
    }

    /// Rewriting with zero-gain acceptance still never grows the graph and
    /// stays sound.
    #[test]
    fn use_zeros_is_sound((n_in, ops, n_out) in small_circuit()) {
        use dacpara_aig::AigRead;
        let golden = build_from_recipe(n_in, &ops, n_out);
        let mut aig = golden.clone();
        let cfg = RewriteConfig {
            num_classes: 222,
            use_zeros: true,
            ..RewriteConfig::rewrite_op()
        };
        run_engine(&mut aig, Engine::AbcRewrite, &cfg).unwrap();
        prop_assert!(aig.num_ands() <= golden.num_ands());
        prop_assert!(exhaustively_equivalent(&golden, &aig));
    }
}
