//! Property tests of rewriting itself: on random circuits with at most six
//! inputs, every engine's output is *exhaustively* equivalent to its input
//! (all 2^n assignments in one simulation word).

use dacpara::{run_engine, Engine, RewriteConfig};
use dacpara_suite::{build_from_recipe, exhaustively_equivalent, Op};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..64usize, any::<bool>(), 0..64usize, any::<bool>())
            .prop_map(|(i, ci, j, cj)| Op::And(i, ci, j, cj)),
        (0..64usize, any::<bool>(), 0..64usize, any::<bool>())
            .prop_map(|(i, ci, j, cj)| Op::Xor(i, ci, j, cj)),
        (0..64usize, 0..64usize, 0..64usize).prop_map(|(s, t, e)| Op::Mux(s, t, e)),
    ]
}

fn small_circuit() -> impl Strategy<Value = (usize, Vec<Op>, usize)> {
    (
        3..6usize,
        prop::collection::vec(op_strategy(), 4..48),
        1..4usize,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serial_rewrite_is_exhaustively_sound((n_in, ops, n_out) in small_circuit()) {
        let golden = build_from_recipe(n_in, &ops, n_out);
        let mut aig = golden.clone();
        let cfg = RewriteConfig { num_classes: 222, ..RewriteConfig::rewrite_op() };
        run_engine(&mut aig, Engine::AbcRewrite, &cfg).unwrap();
        aig.check().unwrap();
        prop_assert!(exhaustively_equivalent(&golden, &aig));
    }

    #[test]
    fn dacpara_is_exhaustively_sound((n_in, ops, n_out) in small_circuit()) {
        let golden = build_from_recipe(n_in, &ops, n_out);
        let mut aig = golden.clone();
        let cfg = RewriteConfig { num_classes: 222, ..RewriteConfig::rewrite_op() }
            .with_threads(2);
        run_engine(&mut aig, Engine::DacPara, &cfg).unwrap();
        aig.check().unwrap();
        prop_assert!(exhaustively_equivalent(&golden, &aig));
    }

    #[test]
    fn lockstep_is_exhaustively_sound((n_in, ops, n_out) in small_circuit()) {
        let golden = build_from_recipe(n_in, &ops, n_out);
        let mut aig = golden.clone();
        let cfg = RewriteConfig { num_classes: 222, ..RewriteConfig::rewrite_op() }
            .with_threads(2);
        run_engine(&mut aig, Engine::Iccad18, &cfg).unwrap();
        aig.check().unwrap();
        prop_assert!(exhaustively_equivalent(&golden, &aig));
    }

    #[test]
    fn static_engines_are_exhaustively_sound((n_in, ops, n_out) in small_circuit()) {
        let golden = build_from_recipe(n_in, &ops, n_out);
        for engine in [Engine::Dac22, Engine::Tcad23] {
            let mut aig = golden.clone();
            let cfg = RewriteConfig::drw_op().with_threads(2);
            run_engine(&mut aig, engine, &cfg).unwrap();
            aig.check().unwrap();
            prop_assert!(exhaustively_equivalent(&golden, &aig), "{engine}");
        }
    }

    /// Rewriting with zero-gain acceptance still never grows the graph and
    /// stays sound.
    #[test]
    fn use_zeros_is_sound((n_in, ops, n_out) in small_circuit()) {
        use dacpara_aig::AigRead;
        let golden = build_from_recipe(n_in, &ops, n_out);
        let mut aig = golden.clone();
        let cfg = RewriteConfig {
            num_classes: 222,
            use_zeros: true,
            ..RewriteConfig::rewrite_op()
        };
        run_engine(&mut aig, Engine::AbcRewrite, &cfg).unwrap();
        prop_assert!(aig.num_ands() <= golden.num_ands());
        prop_assert!(exhaustively_equivalent(&golden, &aig));
    }
}
