//! Recovery differential suite: the fault-tolerant concurrent engines must
//! absorb arena exhaustion, injected allocator/lock faults, and contained
//! worker panics — completing with a CEC-equivalent graph instead of
//! returning `Err`, and never hanging (every engine run is under a
//! watchdog).
//!
//! Three fault sources are exercised:
//!
//! * **real exhaustion** — `headroom: 1.0` sizes the arena to the live
//!   graph plus fixed slack, so any circuit with enough rewrite activity
//!   exhausts it and must recover by salvage + regrowth;
//! * **injected faults** — `dacpara_fault` plans firing at the arena
//!   allocator, the speculative lock table, and the replacement operators,
//!   swept over ≥16 seeds across thread counts, schedulers, and engines;
//! * **panic budgets** — a persistently panicking operator must surface as
//!   `AigError::WorkerPanicked` once the recovery budget is exhausted,
//!   never as a process abort or a hung scope join.
//!
//! Fault plans are process-global, so every test serializes on one lock:
//! an unsynchronized fault-free run racing an armed plan would see someone
//! else's injected faults.

use std::panic;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use dacpara::{run_engine, Engine, RewriteConfig, RewriteStats, SchedulerKind};
use dacpara_aig::{Aig, AigError, AigRead};
use dacpara_circuits::{full_suite, Benchmark, Scale};
use dacpara_equiv::{check_equivalence, random_sim_check, CecConfig, CecResult, SimOutcome};
use dacpara_fault::{points, FaultPlan};

/// No single engine run on a test-scale circuit takes anywhere near this
/// long; hitting it means a recovery path deadlocked (the class of bug the
/// stage-guard seeding race produced) and the test must fail, not hang CI.
const WATCHDOG_BASE_SECS: u64 = 300;

/// The watchdog deadline, scaled by the `DACPARA_TEST_TIMEOUT_MUL` env
/// multiplier. Sanitizer builds run the same workload an order of
/// magnitude slower (TSan instruments every memory access), so their
/// workflows export a multiplier instead of this file hardcoding the
/// worst case for everyone — a genuine deadlock should still fail fast in
/// normal CI.
fn watchdog() -> Duration {
    let mul = std::env::var("DACPARA_TEST_TIMEOUT_MUL")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&m| m >= 1)
        .unwrap_or(1);
    Duration::from_secs(WATCHDOG_BASE_SECS * mul)
}

/// Serializes the tests in this binary: fault plans and the injection
/// firing counters are process-global state.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Installs (once, process-wide) a panic hook that swallows the panics the
/// `operator.panic` fault point injects — they are contained by the engine
/// and would otherwise spam stderr — while delegating everything else,
/// including real test failures, to the default hook.
fn silence_injected_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with("injected fault:"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Runs `engine` on its own thread and panics if it neither reports nor
/// panics within [`watchdog`] — a hang is a test failure, not a CI timeout.
fn run_with_watchdog(
    label: &str,
    aig: Aig,
    engine: Engine,
    cfg: RewriteConfig,
) -> (Aig, Result<RewriteStats, AigError>) {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let mut aig = aig;
        let result = run_engine(&mut aig, engine, &cfg);
        let _ = tx.send((aig, result));
    });
    let deadline = watchdog();
    match rx.recv_timeout(deadline) {
        Ok(out) => {
            handle.join().expect("engine thread exited after reporting");
            out
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("{label}: engine hung (no result within {deadline:?})")
        }
        Err(RecvTimeoutError::Disconnected) => match handle.join() {
            Ok(()) => unreachable!("engine thread dropped its sender without a result"),
            Err(payload) => panic::resume_unwind(payload),
        },
    }
}

/// CEC via SAT where affordable, exhaustive random simulation otherwise
/// (same policy as `engines_differential.rs`).
fn assert_equiv(golden: &Aig, rewritten: &Aig, label: &str) {
    if golden.num_ands() + rewritten.num_ands() < 4_000 {
        assert_eq!(
            check_equivalence(golden, rewritten, &CecConfig::default()),
            CecResult::Equivalent,
            "{label}"
        );
    } else {
        assert_eq!(
            random_sim_check(golden, rewritten, 24, 0xEDA),
            SimOutcome::NoDifferenceFound,
            "{label}"
        );
    }
}

/// Common post-run checks for a run that must have *recovered*, not failed:
/// structural invariants hold, the result is equivalent to the input, and
/// the recovery counters are internally consistent.
fn assert_recovered_ok(bench: &Benchmark, aig: &Aig, stats: &RewriteStats, label: &str) -> u64 {
    aig.check()
        .unwrap_or_else(|e| panic!("{label}: recovered graph is corrupt: {e}"));
    assert_equiv(&bench.aig, aig, label);
    assert!(
        stats.recoveries >= stats.regrowths,
        "{label}: regrowths without recoveries: {}",
        stats.summary()
    );
    assert!(
        stats.salvaged_commits <= stats.replacements,
        "{label}: salvaged more commits than were made: {}",
        stats.summary()
    );
    stats.recoveries
}

/// Tentpole acceptance: at `headroom: 1.0` (arena sized to the live graph
/// plus fixed slack) with the default regrowth budget, both concurrent
/// engines complete every test-scale circuit under both schedulers at
/// 1/2/4 threads with zero `Err` and stay CEC-equivalent.
///
/// Because the arena reuses freed slots and rewriting only shrinks the
/// graph, a live-sized arena normally never exhausts — the transient
/// allocate-before-delete peak stays inside the fixed slack — so this test
/// pins that minimal capacity is *sufficient*, while any recoveries that
/// do happen must be budgeted regrowths. If the allocator ever loses slot
/// reuse, these runs start exhausting for real and must then complete via
/// recovery (or fail here, loudly). The guaranteed-exhaustion recovery pin
/// is the injected `arena.alloc` sweep below.
#[test]
fn minimal_headroom_completes_every_circuit_via_regrowth() {
    let _serial = exclusive();
    for bench in &full_suite(Scale::Test) {
        for engine in [Engine::DacPara, Engine::Iccad18] {
            for sched in [SchedulerKind::Steal, SchedulerKind::Barrier] {
                for threads in [1, 2, 4] {
                    eprintln!("[recov] {} {engine} {sched} x{threads}", bench.name);
                    let cfg = RewriteConfig {
                        headroom: 1.0,
                        ..RewriteConfig::rewrite_op()
                    }
                    .with_threads(threads)
                    .with_scheduler(sched);
                    let max_regrowths = cfg.max_regrowths as u64;
                    let label = format!("{engine} {sched} x{threads} on {}", bench.name);
                    let (aig, result) = run_with_watchdog(&label, bench.aig.clone(), engine, cfg);
                    let stats = result.unwrap_or_else(|e| {
                        panic!("{label}: recovery did not absorb exhaustion: {e}")
                    });
                    assert_recovered_ok(bench, &aig, &stats, &label);
                    // No panics are injected here, so every recovery is an
                    // exhaustion regrowth, and the budget bounds them.
                    assert_eq!(
                        stats.recoveries,
                        stats.regrowths,
                        "{label}: unexplained non-regrowth recovery: {}",
                        stats.summary()
                    );
                    assert!(
                        stats.regrowths <= max_regrowths,
                        "{label}: regrowth budget overrun: {}",
                        stats.summary()
                    );
                }
            }
        }
    }
}

/// Injected-fault sweep: ≥16 seeds spread across all three fault points,
/// both engines, both schedulers, and 1/2/4 threads, on the largest
/// test-scale circuit at minimal headroom. Every run must complete
/// (recovering as needed), stay equivalent, and never hang; across the
/// sweep every fault point must actually fire.
#[test]
fn injected_faults_never_hang_or_break_equivalence() {
    let _serial = exclusive();
    silence_injected_panics();
    let suite = full_suite(Scale::Test);
    let bench = suite
        .iter()
        .max_by_key(|b| b.aig.num_ands())
        .expect("non-empty suite");
    // Rotated per seed; caps keep each plan inside the regrowth/panic
    // budgets (an uncapped 1/N arena plan would fire on every grown arena
    // too and exhaust the budget by construction).
    const SPECS: [&str; 4] = [
        "arena.alloc=1/40*2",
        "operator.panic=@3*1",
        "lock.acquire=1/20*50",
        "arena.alloc=1/60*2,operator.panic=@5*1,lock.acquire=1/50*20",
    ];
    let mut fired = [0u64; 3];
    for seed in 0..16u64 {
        let spec = SPECS[(seed % 4) as usize];
        let threads = [1, 2, 4][(seed % 3) as usize];
        let sched = if seed % 2 == 0 {
            SchedulerKind::Steal
        } else {
            SchedulerKind::Barrier
        };
        let engine = if (seed / 2) % 2 == 0 {
            Engine::DacPara
        } else {
            Engine::Iccad18
        };
        let cfg = RewriteConfig {
            headroom: 1.0,
            // Injected arena faults stack on top of the real exhaustion the
            // minimal headroom already causes, so give the sweep more
            // regrowth budget than the default.
            max_regrowths: 8,
            ..RewriteConfig::rewrite_op()
        }
        .with_threads(threads)
        .with_scheduler(sched);
        let label = format!(
            "seed {seed} [{spec}] {engine} {sched} x{threads} on {}",
            bench.name
        );
        eprintln!("[recov] {label}");
        let plan = FaultPlan::parse(spec, seed).expect("valid sweep spec");
        let injection = dacpara_fault::inject(&plan);
        let (aig, result) = run_with_watchdog(&label, bench.aig.clone(), engine, cfg);
        let run_fired = [
            injection.fired(points::ARENA_ALLOC),
            injection.fired(points::LOCK_ACQUIRE),
            injection.fired(points::OPERATOR_PANIC),
        ];
        drop(injection);
        let stats =
            result.unwrap_or_else(|e| panic!("{label}: recovery did not absorb the fault: {e}"));
        assert_recovered_ok(bench, &aig, &stats, &label);
        // Lock faults are absorbed as ordinary conflicts; arena and panic
        // faults end the round with an error that a successful run can only
        // have survived through recovery.
        if run_fired[0] + run_fired[2] > 0 {
            assert!(
                stats.recoveries > 0,
                "{label}: injected fault(s) fired but no recovery was recorded: {}",
                stats.summary()
            );
        }
        // With no panic in the mix the surviving error is exhaustion, so
        // recovery must have regrown (a panic can supersede the arena error
        // in combined plans, making the recovery panic-typed instead).
        if run_fired[0] > 0 && run_fired[2] == 0 {
            assert!(
                stats.regrowths > 0,
                "{label}: injected exhaustion without a regrowth: {}",
                stats.summary()
            );
        }
        for (name, n) in [
            (points::ARENA_ALLOC, run_fired[0]),
            (points::LOCK_ACQUIRE, run_fired[1]),
            (points::OPERATOR_PANIC, run_fired[2]),
        ] {
            if n > 0 {
                eprintln!("[recov]   {name} fired {n}x: {}", stats.summary());
            }
        }
        fired[0] += run_fired[0];
        fired[1] += run_fired[1];
        fired[2] += run_fired[2];
    }
    // Aggregate, not per-seed: a rate-mode plan is free to never select a
    // firing index for one particular seed, but across 16 seeds a silent
    // point means the sweep is not testing what it claims to.
    let [alloc, lock, panic] = fired;
    assert!(alloc > 0, "no arena.alloc fault ever fired");
    assert!(lock > 0, "no lock.acquire fault ever fired");
    assert!(panic > 0, "no operator.panic fault ever fired");
}

/// A single injected operator panic must be contained (no abort, no hung
/// scope join), validated (invariants + CEC against the pre-pass graph),
/// and reported through `RewriteStats::recoveries`.
#[test]
fn contained_panic_is_recovered_and_validated() {
    let _serial = exclusive();
    silence_injected_panics();
    let suite = full_suite(Scale::Test);
    let bench = suite
        .iter()
        .max_by_key(|b| b.aig.num_ands())
        .expect("non-empty suite");
    for engine in [Engine::DacPara, Engine::Iccad18] {
        let cfg = RewriteConfig::rewrite_op().with_threads(2);
        let label = format!("one-panic {engine} on {}", bench.name);
        eprintln!("[recov] {label}");
        let plan = FaultPlan::parse("operator.panic=@3*1", 0xFA).expect("valid spec");
        let injection = dacpara_fault::inject(&plan);
        let (aig, result) = run_with_watchdog(&label, bench.aig.clone(), engine, cfg);
        assert_eq!(
            injection.fired(points::OPERATOR_PANIC),
            1,
            "{label}: the panic plan must fire exactly once"
        );
        drop(injection);
        let stats = result.unwrap_or_else(|e| panic!("{label}: panic was not recovered: {e}"));
        assert_recovered_ok(bench, &aig, &stats, &label);
        assert!(
            stats.recoveries > stats.regrowths,
            "{label}: no panic recovery was recorded: {}",
            stats.summary()
        );
    }
}

/// When every operator invocation panics, the per-session panic-recovery
/// budget runs out and the pass must surface the contained panic as
/// `Err(AigError::WorkerPanicked)` — leaving the caller's graph untouched —
/// rather than aborting the process or spinning forever.
#[test]
fn exhausted_panic_budget_surfaces_worker_panicked() {
    let _serial = exclusive();
    silence_injected_panics();
    let suite = full_suite(Scale::Test);
    let bench = suite
        .iter()
        .min_by_key(|b| b.aig.num_ands())
        .expect("non-empty suite");
    for engine in [Engine::DacPara, Engine::Iccad18] {
        // One worker keeps the firing order deterministic: each round's
        // first replacement panics, the team bails, recovery re-runs, and
        // the fifth panic exceeds the budget of four.
        let cfg = RewriteConfig::rewrite_op().with_threads(1);
        let label = format!("panic-budget {engine} on {}", bench.name);
        eprintln!("[recov] {label}");
        let plan = FaultPlan::parse("operator.panic=1/1*64", 0).expect("valid spec");
        let _injection = dacpara_fault::inject(&plan);
        let (aig, result) = run_with_watchdog(&label, bench.aig.clone(), engine, cfg);
        match result {
            Err(AigError::WorkerPanicked { message }) => assert!(
                message.contains("injected fault"),
                "{label}: unexpected panic payload: {message}"
            ),
            other => panic!("{label}: expected WorkerPanicked, got {other:?}"),
        }
        // `run_engine` only writes the session's graph back on success; the
        // error path must leave the input exactly as it was.
        assert_eq!(
            aig.num_ands(),
            bench.aig.num_ands(),
            "{label}: failed run modified the caller's graph"
        );
        aig.check()
            .unwrap_or_else(|e| panic!("{label}: failed run corrupted the graph: {e}"));
    }
}
