//! Stress tests: DACPara under engineered same-level contention.
//!
//! The circuits here are built so that many rewritable cones sit at the
//! *same level* and share structure — the exact situation §4.4's validity
//! protocol exists for: replacements committed earlier in a level worklist
//! change the sharing (and thus the re-evaluated gains) of later ones.

use dacpara::{run_engine, Engine, RewriteConfig};
use dacpara_aig::{Aig, AigRead, Lit};
use dacpara_equiv::{random_sim_check, SimOutcome};

/// A grid of wasteful mux-majorities over overlapping input triples, all at
/// the same level, followed by a combining XOR layer.
fn contention_grid(width: usize) -> Aig {
    let mut aig = Aig::new();
    let inputs: Vec<Lit> = (0..width + 2).map(|_| aig.add_input()).collect();
    let mut tops = Vec::new();
    for k in 0..width {
        let (a, b, c) = (inputs[k], inputs[k + 1], inputs[k + 2]);
        // Wasteful majority: 5 gates where 4 suffice; adjacent cones share
        // the (b, c) pair with the next cone's (a, b).
        let or = aig.add_or(b, c);
        let an = aig.add_and(b, c);
        let m = aig.add_mux(a, or, an);
        tops.push(m);
    }
    let mut acc = tops[0];
    for &t in &tops[1..] {
        acc = aig.add_xor(acc, t);
    }
    aig.add_output(acc);
    for (k, &t) in tops.iter().enumerate() {
        if k % 3 == 0 {
            aig.add_output(t);
        }
    }
    aig
}

#[test]
fn same_level_contention_is_sound_across_thread_counts() {
    let golden = contention_grid(64);
    for threads in [1, 2, 4, 8] {
        let mut aig = golden.clone();
        let cfg = RewriteConfig {
            num_classes: 222,
            ..RewriteConfig::rewrite_op()
        }
        .with_threads(threads);
        let stats = run_engine(&mut aig, Engine::DacPara, &cfg).unwrap();
        aig.check().unwrap();
        assert!(
            stats.area_reduction() > 0,
            "grid must be improvable at {threads} threads: {}",
            stats.summary()
        );
        assert_eq!(
            random_sim_check(&golden, &aig, 16, threads as u64),
            SimOutcome::NoDifferenceFound,
            "{threads} threads"
        );
    }
}

#[test]
fn repeated_contended_passes_converge() {
    let golden = contention_grid(48);
    let mut aig = golden.clone();
    let cfg = RewriteConfig {
        num_classes: 222,
        ..RewriteConfig::rewrite_op()
    }
    .with_threads(4);
    let passes = dacpara::optimize(&mut aig, Engine::DacPara, &cfg, 5).unwrap();
    assert!(passes.len() >= 2);
    assert_eq!(passes.last().unwrap().area_reduction(), 0, "converged");
    assert_eq!(
        random_sim_check(&golden, &aig, 16, 5),
        SimOutcome::NoDifferenceFound
    );
}

#[test]
fn lockstep_and_dacpara_agree_functionally_under_contention() {
    let golden = contention_grid(40);
    let cfg = RewriteConfig {
        num_classes: 222,
        ..RewriteConfig::rewrite_op()
    }
    .with_threads(4);
    let mut a = golden.clone();
    run_engine(&mut a, Engine::DacPara, &cfg).unwrap();
    let mut b = golden.clone();
    run_engine(&mut b, Engine::Iccad18, &cfg).unwrap();
    // Both must still compute the original function (and therefore agree
    // with each other).
    for (name, g) in [("dacpara", &a), ("iccad18", &b)] {
        assert_eq!(
            random_sim_check(&golden, g, 16, 9),
            SimOutcome::NoDifferenceFound,
            "{name}"
        );
    }
}

#[test]
fn counters_are_internally_consistent() {
    let golden = contention_grid(64);
    let mut aig = golden.clone();
    let cfg = RewriteConfig {
        num_classes: 222,
        ..RewriteConfig::rewrite_op()
    }
    .with_threads(8);
    let stats = run_engine(&mut aig, Engine::DacPara, &cfg).unwrap();
    // Every committed replacement shows up as a commit; aborts only ever
    // retry, so commits >= replacements.
    assert!(
        stats.spec.commits >= stats.replacements,
        "{}",
        stats.summary()
    );
    // The realized area reduction can't exceed what the replacements freed
    // (each replacement frees at least one node net).
    assert!(stats.area_reduction() as u64 >= stats.replacements.min(1));
    assert!(aig.num_ands() <= golden.num_ands());
}
