//! Integration: the SAT-based CEC agrees with exhaustive simulation, and
//! the experiment harness produces consistent exhibits at test scale.

use dacpara_circuits::{arith, control};
use dacpara_equiv::{
    check_equivalence, simulate_bools, CecConfig, CecResult, CnfMap, SatResult, Solver,
};
use dacpara_suite::{build_from_recipe, Op};

#[test]
fn sat_agrees_with_simulation_on_pinned_inputs() {
    // For a handful of circuits and input patterns, pinning the inputs in
    // CNF and asking for the output must match direct simulation.
    let circuits = vec![
        arith::adder(3),
        control::voter(5),
        build_from_recipe(
            4,
            &[
                Op::Xor(0, false, 1, true),
                Op::Mux(2, 3, 4),
                Op::And(4, true, 5, false),
            ],
            1,
        ),
    ];
    for aig in circuits {
        let n_in = aig.num_inputs();
        for pattern in 0..(1u32 << n_in.min(5)) {
            let inputs: Vec<bool> = (0..n_in).map(|k| pattern >> k & 1 != 0).collect();
            let expect = simulate_bools(&aig, &inputs)[0];
            let mut solver = Solver::new();
            let map = CnfMap::encode(&aig, &mut solver);
            for (k, &i) in aig.inputs().iter().enumerate() {
                solver.add_clause(&[dacpara_equiv::CLit::new(map.var(i).unwrap(), !inputs[k])]);
            }
            dacpara_equiv::assert_lit(&mut solver, &map, aig.outputs()[0]);
            let want = if expect {
                SatResult::Sat
            } else {
                SatResult::Unsat
            };
            assert_eq!(solver.solve(), want, "pattern {pattern:b}");
        }
    }
}

#[test]
fn cec_proves_generator_identities() {
    // square(x) == mul(x, x): two different generators, same function.
    let sq = arith::square(4);
    let mut aig = dacpara_aig::Aig::new();
    let mut b = dacpara_circuits::Builder::new(&mut aig);
    let x = b.input_word(4);
    let p = b.mul(&x.clone(), &x);
    b.output_word(&p);
    assert_eq!(
        check_equivalence(&sq, &aig, &CecConfig::default()),
        CecResult::Equivalent
    );
}

#[test]
fn cec_detects_off_by_one() {
    // adder vs adder-with-swapped-output-bits must differ.
    let good = arith::adder(3);
    let mut bad = dacpara_aig::Aig::new();
    {
        let mut b = dacpara_circuits::Builder::new(&mut bad);
        let x = b.input_word(3);
        let y = b.input_word(3);
        let s = b.add(&x, &y);
        // Swap two sum bits.
        let mut bits = s.bits().to_vec();
        bits.swap(0, 1);
        b.output_word(&dacpara_circuits::Word(bits));
    }
    match check_equivalence(&good, &bad, &CecConfig::default()) {
        CecResult::Inequivalent(cex) => {
            let og = simulate_bools(&good, &cex);
            let ob = simulate_bools(&bad, &cex);
            assert_ne!(og, ob);
        }
        other => panic!("expected inequivalence, got {other:?}"),
    }
}
