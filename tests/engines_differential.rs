//! Differential suite: every parallel engine, on every benchmark of the
//! Table 1 test-scale suite, must (a) stay CEC-equivalent to its input and
//! (b) land inside an engine-dependent envelope of the serial ABC-rewrite
//! baseline's final area, across thread counts and under both worklist
//! schedulers.
//!
//! This is the quality pin for the work-stealing scheduler: `steal` may
//! reorder commits relative to `barrier` (retried nodes land late instead
//! of serializing their worker), so the suite compares both schedulers'
//! results against the same serial baselines and against each other.

use dacpara::testkit::{base_cfg, baseline_slack, GALOIS_ENGINES, PARALLEL_ENGINES};
use dacpara::{run_engine, Engine, RewriteConfig, SchedulerKind};
use dacpara_aig::{Aig, AigRead};
use dacpara_circuits::{full_suite, Benchmark, Scale};
use dacpara_equiv::{check_equivalence, random_sim_check, CecConfig, CecResult, SimOutcome};

/// CEC via SAT where affordable, exhaustive random simulation otherwise
/// (same policy as `engines_equivalence.rs`).
fn assert_equiv(golden: &Aig, rewritten: &Aig, label: &str) {
    if golden.num_ands() + rewritten.num_ands() < 4_000 {
        assert_eq!(
            check_equivalence(golden, rewritten, &CecConfig::default()),
            CecResult::Equivalent,
            "{label}"
        );
    } else {
        assert_eq!(
            random_sim_check(golden, rewritten, 24, 0xEDA),
            SimOutcome::NoDifferenceFound,
            "{label}"
        );
    }
}

/// Runs the serial baseline for `cfg` and returns its final area.
fn serial_area(bench: &Benchmark, cfg: &RewriteConfig) -> usize {
    let mut aig = bench.aig.clone();
    let stats = run_engine(&mut aig, Engine::AbcRewrite, cfg)
        .unwrap_or_else(|e| panic!("serial baseline failed on {}: {e}", bench.name));
    stats.area_after
}

fn assert_within_baseline(
    bench: &Benchmark,
    engine: Engine,
    area_after: usize,
    serial_after: usize,
    label: &str,
) {
    let bound = serial_after + baseline_slack(engine, bench.aig.num_ands(), serial_after);
    assert!(
        area_after <= bound,
        "{label}: {engine} on {} finished at {} ANDs, serial baseline {} (bound {})",
        bench.name,
        area_after,
        serial_after,
        bound
    );
}

#[test]
fn parallel_engines_track_the_serial_baseline_across_threads() {
    for bench in &full_suite(Scale::Test) {
        let serial_rw = serial_area(bench, &RewriteConfig::rewrite_op());
        let serial_drw = serial_area(bench, &RewriteConfig::drw_op());
        for engine in PARALLEL_ENGINES {
            let serial_after = match engine {
                Engine::Dac22 | Engine::Tcad23 => serial_drw,
                _ => serial_rw,
            };
            for threads in [1, 2, 4] {
                eprintln!("[diff] {} {engine} x{threads}", bench.name);
                let cfg = base_cfg(engine).with_threads(threads);
                let mut aig = bench.aig.clone();
                run_engine(&mut aig, engine, &cfg)
                    .unwrap_or_else(|e| panic!("{engine} failed on {}: {e}", bench.name));
                aig.check()
                    .unwrap_or_else(|e| panic!("{engine} corrupted {}: {e}", bench.name));
                let label = format!("steal x{threads}");
                assert_equiv(
                    &bench.aig,
                    &aig,
                    &format!("{label}: {engine} on {}", bench.name),
                );
                assert_within_baseline(bench, engine, aig.num_ands(), serial_after, &label);
            }
        }
    }
}

#[test]
fn galois_engines_match_the_baseline_under_both_schedulers() {
    for bench in &full_suite(Scale::Test) {
        let serial_after = serial_area(bench, &RewriteConfig::rewrite_op());
        for engine in GALOIS_ENGINES {
            let mut by_scheduler = [0usize; 2];
            for (slot, sched) in [SchedulerKind::Steal, SchedulerKind::Barrier]
                .into_iter()
                .enumerate()
            {
                for threads in [1, 2, 4] {
                    eprintln!("[diff] {} {engine} {sched} x{threads}", bench.name);
                    let cfg = base_cfg(engine).with_threads(threads).with_scheduler(sched);
                    let mut aig = bench.aig.clone();
                    run_engine(&mut aig, engine, &cfg)
                        .unwrap_or_else(|e| panic!("{engine} failed on {}: {e}", bench.name));
                    aig.check().unwrap();
                    let label = format!("{sched} x{threads}");
                    assert_equiv(
                        &bench.aig,
                        &aig,
                        &format!("{label}: {engine} on {}", bench.name),
                    );
                    assert_within_baseline(bench, engine, aig.num_ands(), serial_after, &label);
                    if threads == 4 {
                        by_scheduler[slot] = aig.num_ands();
                    }
                }
            }
            // Head-to-head at 4 threads: in-pass retry must not cost area
            // against the spin-retry scheme (both runs are nondeterministic
            // interleavings, so allow the same baseline-relative slack).
            let [steal, barrier] = by_scheduler;
            assert!(
                steal <= barrier + baseline_slack(engine, bench.aig.num_ands(), serial_after),
                "{engine} on {}: steal {} vs barrier {}",
                bench.name,
                steal,
                barrier
            );
        }
    }
}

#[test]
fn steal_scheduler_salvages_conflicted_commits_on_the_largest_circuit() {
    // Acceptance for the in-pass retry queue: on the largest suite circuit
    // at 4 threads a conflict-aborted activity must be retried and then
    // commit within the same pass (`sched.retry_commits > 0`). Conflicts
    // are probabilistic, so sweep both Galois engines and a few fresh runs
    // before declaring the retry path dead.
    let suite = full_suite(Scale::Test);
    let bench = suite
        .iter()
        .max_by_key(|b| b.aig.num_ands())
        .expect("non-empty suite");
    let cfg = RewriteConfig::rewrite_op()
        .with_threads(4)
        .with_scheduler(SchedulerKind::Steal);
    let mut salvaged = 0u64;
    let mut sweeps = Vec::new();
    'search: for round in 0..5 {
        for engine in [Engine::Iccad18, Engine::DacPara] {
            let mut aig = bench.aig.clone();
            let stats = run_engine(&mut aig, engine, &cfg).unwrap();
            aig.check().unwrap();
            assert_equiv(&bench.aig, &aig, &format!("{engine} on {}", bench.name));
            sweeps.push(format!(
                "round {round} {engine}: {} [{}]",
                stats.spec, stats.sched
            ));
            assert_eq!(
                stats.spec.commits + stats.spec.aborts,
                stats.spec.attempts,
                "attempt accounting broke on {engine}"
            );
            salvaged += stats.sched.retry_commits;
            if salvaged > 0 {
                break 'search;
            }
        }
    }
    assert!(
        salvaged > 0,
        "no conflicted activity was retried to completion on {} at 4 threads:\n{}",
        bench.name,
        sweeps.join("\n")
    );
}
