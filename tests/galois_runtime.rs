//! Integration tests of the Galois-mini runtime under real contention:
//! speculative operators over a shared AIG must neither deadlock nor lose
//! updates.

use std::sync::atomic::{AtomicU64, Ordering};

use dacpara_aig::concurrent::ConcurrentAig;
use dacpara_aig::{Aig, AigRead};
use dacpara_galois::{run_spmd, LockTable, SpecStats, WorkQueue};

fn diamond_chain(n: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_input();
    let b = aig.add_input();
    let mut acc = aig.add_and(a, b);
    for k in 0..n {
        let c = aig.add_input();
        let x = if k % 2 == 0 {
            aig.add_xor(acc, c)
        } else {
            aig.add_mux(acc, c, a)
        };
        acc = x;
    }
    aig.add_output(acc);
    aig
}

#[test]
fn speculative_ref_bumps_are_exclusive() {
    // Many workers "process" nodes by locking {node, fanins} and touching
    // shared per-node counters; the counters must come out exact.
    let aig = diamond_chain(64);
    let shared = ConcurrentAig::from_aig(&aig, 1.2).unwrap();
    let nodes: Vec<_> = dacpara_aig::topo_ands(&shared);
    let touched: Vec<AtomicU64> = (0..shared.capacity()).map(|_| AtomicU64::new(0)).collect();
    let locks = LockTable::new(shared.capacity());
    let queue = WorkQueue::new(nodes.len() * 8);
    let stats = SpecStats::new();

    let (shared, nodes, touched, locks, queue, stats) =
        (&shared, &nodes, &touched, &locks, &queue, &stats);
    run_spmd(4, |w| {
        let owner = w.id as u32 + 1;
        while let Some(range) = queue.next_chunk(4) {
            for i in range {
                let n = nodes[i % nodes.len()];
                let [a, b] = shared.fanins(n);
                let ids = vec![n.raw(), a.node().raw(), b.node().raw()];
                loop {
                    let t = std::time::Instant::now();
                    if let Some(_g) = locks.try_acquire(owner, ids.clone()) {
                        touched[n.index()].fetch_add(1, Ordering::Relaxed);
                        stats.record_commit(t.elapsed());
                        break;
                    }
                    stats.record_abort(t.elapsed());
                    std::hint::spin_loop();
                }
            }
        }
    });
    let total: u64 = touched.iter().map(|t| t.load(Ordering::Relaxed)).sum();
    assert_eq!(total, (nodes.len() * 8) as u64);
    assert_eq!(stats.commits(), total);
}

#[test]
fn concurrent_structural_additions_are_consistent() {
    // Workers add AND gates over disjoint locked fanin pairs; the final
    // graph must pass the checker and contain no duplicate pairs.
    let mut aig = Aig::new();
    let inputs: Vec<_> = (0..32).map(|_| aig.add_input()).collect();
    let keep = aig.add_and(inputs[0], inputs[1]);
    aig.add_output(keep);
    let shared = ConcurrentAig::from_aig(&aig, 8.0).unwrap();
    let locks = LockTable::new(shared.capacity());
    let queue = WorkQueue::new(300);
    let ins = shared.input_ids();

    let (shared, locks, queue, ins) = (&shared, &locks, &queue, &ins);
    run_spmd(4, |w| {
        let owner = w.id as u32 + 1;
        while let Some(range) = queue.next_chunk(4) {
            for i in range {
                let a = ins[i % ins.len()];
                let b = ins[(i * 7 + 3) % ins.len()];
                if a == b {
                    continue;
                }
                loop {
                    if let Some(_g) = locks.try_acquire(owner, vec![a.raw(), b.raw()]) {
                        let la = a.lit().xor(i % 3 == 0);
                        let lb = b.lit().xor(i % 5 == 0);
                        shared.add_and_locked(la, lb).expect("headroom suffices");
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
    });
    shared.check().expect("no duplicate pairs, consistent refs");
}

#[test]
fn concurrent_replacements_on_disjoint_cones() {
    // Two disjoint copies of a cone; workers replace the top of each copy
    // concurrently. Both replacements must land, and the result must be
    // equivalent to replacing them serially.
    let mut aig = Aig::new();
    let mut tops = Vec::new();
    for _ in 0..8 {
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let or = aig.add_or(b, c);
        let an = aig.add_and(b, c);
        let m = aig.add_mux(a, or, an);
        aig.add_output(m);
        tops.push(m.node());
    }
    let shared = ConcurrentAig::from_aig(&aig, 2.0).unwrap();
    let locks = LockTable::new(shared.capacity());
    let outputs = shared.output_lits();
    let queue = WorkQueue::new(outputs.len());

    let (shared, locks, queue, outputs) = (&shared, &locks, &queue, &outputs);
    run_spmd(4, |w| {
        let owner = w.id as u32 + 1;
        while let Some(range) = queue.next_chunk(1) {
            for i in range {
                let top = outputs[i].node();
                // Replace each mux-majority by its own AND(or, an)-ish
                // simplification: rebuild AND over the two fanins' fanins.
                let [f0, f1] = shared.fanins(top);
                let ids = vec![top.raw(), f0.node().raw(), f1.node().raw()];
                loop {
                    if let Some(_g) = locks.try_acquire(owner, ids.clone()) {
                        // A trivial, function-changing-free replacement:
                        // re-point to the same literal is a no-op; instead
                        // just exercise delete/create by replacing with f0's
                        // regular node AND'ed with TRUE (i.e. f0 itself).
                        shared.replace_locked(top, f0);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
    });
    shared.canonicalize();
    shared.cleanup();
    let back = shared.to_aig();
    back.check().unwrap();
    assert_eq!(back.num_outputs(), 8);
}
