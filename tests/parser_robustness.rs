//! Robustness: the netlist parsers must reject malformed input with errors,
//! never panic, on arbitrary byte soup or truncations of valid files.

use dacpara_aig::{aiger, blif};
use dacpara_circuits::arith;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII soup never panics the ASCII AIGER parser.
    #[test]
    fn aiger_parse_never_panics(s in "[ -~\\n]{0,200}") {
        let _ = aiger::parse(&s);
    }

    /// Arbitrary bytes never panic the binary AIGER parser.
    #[test]
    fn binary_aiger_never_panics(prefix in "aig [0-9]{1,3} [0-9]{1,2} 0 [0-9]{1,2} [0-9]{1,3}\\n", tail in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = prefix.into_bytes();
        bytes.extend(tail);
        let _ = aiger::read_binary(&bytes[..]);
    }

    /// Arbitrary ASCII soup never panics the BLIF parser.
    #[test]
    fn blif_parse_never_panics(s in "[ -~\\n]{0,200}") {
        let _ = blif::parse(&s);
    }

    /// Truncating a valid AIGER file at any point yields an error or a
    /// smaller valid graph — never a panic.
    #[test]
    fn truncated_aiger_never_panics(cut_at in 0usize..2000) {
        let aig = arith::adder(4);
        let text = aiger::to_string(&aig);
        let cut = cut_at.min(text.len());
        let _ = aiger::parse(&text[..cut]);
    }

    /// Flipping one byte of a valid binary AIGER never panics.
    #[test]
    fn corrupted_binary_aiger_never_panics(pos in 0usize..500, val in any::<u8>()) {
        let aig = arith::adder(4);
        let mut buf = Vec::new();
        aiger::write_binary(&aig, &mut buf).unwrap();
        if buf.is_empty() {
            return Ok(());
        }
        let p = pos % buf.len();
        buf[p] = val;
        let _ = aiger::read_binary(&buf[..]);
    }
}

#[test]
fn helpful_errors_name_the_problem() {
    let err = aiger::parse("aag 1 0 1 0 0\n").unwrap_err();
    assert!(err.to_string().contains("latch"));
    let err = blif::parse(".model m\n.latch a b\n.end").unwrap_err();
    assert!(err.to_string().contains("latch"));
    let err = aiger::parse("nonsense").unwrap_err();
    assert!(err.to_string().contains("aag"));
}
