//! Integration: AIGER round trips across generated benchmarks, plus
//! Send/Sync guarantees of the shared types.

use dacpara_aig::{aiger, AigRead};
use dacpara_circuits::{full_suite, Scale};

#[test]
fn aiger_roundtrip_on_the_whole_test_suite() {
    for bench in full_suite(Scale::Test) {
        let text = aiger::to_string(&bench.aig);
        let back = aiger::read(text.as_bytes()).expect("self-written aiger parses");
        back.check().unwrap();
        assert_eq!(back.num_inputs(), bench.aig.num_inputs(), "{}", bench.name);
        assert_eq!(
            back.num_outputs(),
            bench.aig.num_outputs(),
            "{}",
            bench.name
        );
        assert_eq!(back.num_ands(), bench.aig.num_ands(), "{}", bench.name);
        // A second round trip is byte-identical (canonical form).
        assert_eq!(aiger::to_string(&back), text, "{}", bench.name);
    }
}

#[test]
fn binary_aiger_roundtrip_on_the_whole_test_suite() {
    for bench in full_suite(Scale::Test) {
        let mut buf = Vec::new();
        aiger::write_binary(&bench.aig, &mut buf).expect("binary write");
        let back = aiger::read_binary(&buf[..]).expect("self-written binary parses");
        back.check().unwrap();
        assert_eq!(back.num_ands(), bench.aig.num_ands(), "{}", bench.name);
        assert_eq!(
            aiger::to_string(&back),
            aiger::to_string(&bench.aig),
            "{}",
            bench.name
        );
        // The binary encoding is substantially smaller.
        assert!(
            buf.len() < aiger::to_string(&bench.aig).len(),
            "{}",
            bench.name
        );
    }
}

#[test]
fn blif_roundtrip_on_arithmetic_benchmarks() {
    use dacpara_aig::blif;
    use dacpara_equiv::{random_sim_check, SimOutcome};
    for bench in full_suite(Scale::Test).into_iter().take(5) {
        let text = blif::to_string(&bench.aig, &bench.name);
        let back = blif::parse(&text).expect("self-written blif parses");
        back.check().unwrap();
        assert_eq!(back.num_ands(), bench.aig.num_ands(), "{}", bench.name);
        assert_eq!(
            random_sim_check(&bench.aig, &back, 8, 7),
            SimOutcome::NoDifferenceFound,
            "{}",
            bench.name
        );
    }
}

#[test]
fn shared_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<dacpara_aig::Aig>();
    assert_send_sync::<dacpara_aig::concurrent::ConcurrentAig>();
    assert_send_sync::<dacpara_cut::CutStore>();
    assert_send_sync::<dacpara_galois::LockTable>();
    assert_send_sync::<dacpara_galois::SpecStats>();
    assert_send_sync::<dacpara_nst::NpnLibrary>();
    assert_send_sync::<dacpara::EvalContext>();
    assert_send_sync::<dacpara::Candidate>();
}

#[test]
fn error_type_is_std_error() {
    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<dacpara_aig::AigError>();
    let e = dacpara_aig::AigError::CapacityExhausted { capacity: 16 };
    assert!(e.to_string().contains("16"));
}

#[test]
fn benchmark_table1_rows_are_consistent() {
    for bench in full_suite(Scale::Test) {
        let (name, pis, pos, area, delay) = bench.table1_row();
        assert_eq!(name, bench.name);
        assert_eq!(pis, bench.aig.num_inputs());
        assert_eq!(pos, bench.aig.num_outputs());
        assert_eq!(area, bench.aig.num_ands());
        assert_eq!(delay, bench.aig.depth());
    }
}
